//! Property: the sharded, pooled execution core is observationally
//! identical to serial single-lock execution. For random workloads with
//! concurrent `ingest_batch` calls across ≥3 streams, every subscription
//! receives a byte-identical window sequence (per-CQ, ordered by close
//! timestamp) to the one produced by applying the same per-stream batch
//! sequences on a single-shard, inline-evaluation database.
//!
//! Shards only ever remove *cross-stream* serialization; each CQ is
//! rooted at one stream, so its output is a function of that stream's
//! tuple order alone — which both runs preserve exactly.

use proptest::prelude::*;
use proptest::test_runner::Config;
use streamrel::net::wire;
use streamrel::types::Value;
use streamrel::{Db, DbOptions, SubscriptionId};

const STREAMS: usize = 3;

/// One stream's workload: ordered batches of (value, clock-gap) pairs.
type StreamBatches = Vec<Vec<(i64, i64)>>;

fn setup(db: &Db) -> Vec<SubscriptionId> {
    let mut subs = Vec::new();
    for i in 0..STREAMS {
        db.execute(&format!(
            "CREATE STREAM s{i} (v integer, ts timestamp CQTIME USER)"
        ))
        .unwrap();
        // Two CQs per stream: a tumbling count and a sliding aggregate
        // (the second pair is shareable, so the shared path is covered).
        subs.push(
            db.execute(&format!(
                "SELECT count(*) c, cq_close(*) w FROM s{i} <TUMBLING '1 minute'>"
            ))
            .unwrap()
            .subscription(),
        );
        subs.push(
            db.execute(&format!(
                "SELECT sum(v) t, min(v) lo FROM s{i} \
                 <VISIBLE '2 minutes' ADVANCE '1 minute'>"
            ))
            .unwrap()
            .subscription(),
        );
    }
    subs
}

/// Turn gap-encoded batches into absolute-timestamp rows.
fn materialize(batches: &StreamBatches) -> Vec<Vec<Vec<Value>>> {
    let mut clock = 0i64;
    batches
        .iter()
        .map(|batch| {
            batch
                .iter()
                .map(|&(v, gap)| {
                    clock += gap;
                    vec![Value::Int(v), Value::Timestamp(clock)]
                })
                .collect()
        })
        .collect()
}

/// Canonical bytes for one subscription's output: every window's close
/// time plus its codec-encoded relation. "Byte-identical" means equal.
fn drain_canonical(db: &Db, subs: &[SubscriptionId]) -> Vec<Vec<(i64, Vec<u8>)>> {
    subs.iter()
        .map(|&sub| {
            db.poll(sub)
                .unwrap()
                .into_iter()
                .map(|o| (o.close, wire::encode_rows(&o.relation)))
                .collect()
        })
        .collect()
}

/// The reference: one shard, no worker pool, batches applied serially.
fn serial_run(workload: &[StreamBatches]) -> Vec<Vec<(i64, Vec<u8>)>> {
    let db = Db::in_memory(DbOptions::default().with_shards(1).with_pool_workers(0));
    let subs = setup(&db);
    for (i, batches) in workload.iter().enumerate() {
        for rows in materialize(batches) {
            db.ingest_batch(&format!("s{i}"), rows).unwrap();
        }
    }
    for i in 0..STREAMS {
        db.heartbeat(&format!("s{i}"), 3_600_000_000).unwrap();
    }
    drain_canonical(&db, &subs)
}

/// The system under test: default sharding (one per stream) and worker
/// pool, with one concurrent ingester thread per stream.
fn concurrent_run(workload: &[StreamBatches]) -> Vec<Vec<(i64, Vec<u8>)>> {
    let db = Db::in_memory(DbOptions::default());
    let subs = setup(&db);
    std::thread::scope(|s| {
        for (i, batches) in workload.iter().enumerate() {
            let db = &db;
            s.spawn(move || {
                for rows in materialize(batches) {
                    db.ingest_batch(&format!("s{i}"), rows).unwrap();
                }
            });
        }
    });
    for i in 0..STREAMS {
        db.heartbeat(&format!("s{i}"), 3_600_000_000).unwrap();
    }
    drain_canonical(&db, &subs)
}

proptest! {
    #![proptest_config(Config::with_cases(16))]
    #[test]
    fn concurrent_sharded_equals_serial(
        workload in prop::collection::vec(
            prop::collection::vec(
                prop::collection::vec((0i64..100, 0i64..40_000_000), 1..8),
                1..6,
            ),
            STREAMS,
        ),
    ) {
        let reference = serial_run(&workload);
        let parallel = concurrent_run(&workload);
        prop_assert_eq!(&parallel, &reference);
        // Within each subscription, closes arrive ordered.
        for sub in &parallel {
            for pair in sub.windows(2) {
                prop_assert!(pair[0].0 <= pair[1].0, "closes out of order");
            }
        }
    }
}
