//! IVM ↔ re-evaluation equivalence suite.
//!
//! The incremental view maintenance path is an *optimization*, not a
//! semantics change: for every plan it accepts, its per-window output
//! must be byte-identical — schema, row order, and values — to what the
//! re-evaluation executor produces from the buffered window. This suite
//! pins that contract three ways:
//!
//! * table-driven cases over the public SQL surface (aggregates with and
//!   without GROUP BY, stream-table joins, DISTINCT, ordered post-plans,
//!   out-of-order arrival under slack, and forced-fallback shapes),
//!   each run twice — `DbOptions::without_sharing()` vs the same with
//!   `without_ivm()` — and compared byte for byte, with `EXPLAIN CHECK`
//!   asserting which path the plan takes;
//! * a property test sweeping randomized workloads through both
//!   configurations;
//! * the crash-recovery torture harness's IVM sweep: a sliding window
//!   crashed at every mutating I/O op (including mid-slice), recovered,
//!   re-driven, and required to match the uncrashed reference.

use proptest::prelude::*;
use proptest::test_runner::Config;
use streamrel::types::time::{MINUTES, SECONDS};
use streamrel::types::Value;
use streamrel::{Db, DbOptions};
use streamrel_bench::torture::ivm_sweep;

const DDL: &[&str] = &[
    "CREATE STREAM hits (url varchar(32), v integer, ts timestamp CQTIME USER)",
    "CREATE TABLE sites (url varchar(32), owner varchar(32))",
    "INSERT INTO sites VALUES ('/u0', 'alice'), ('/u1', 'bob'), ('/u2', 'carol')",
];

/// (case name, CQ, `EXPLAIN CHECK` path the plan must report).
const CASES: &[(&str, &str, &str)] = &[
    (
        "grouped-count",
        "SELECT url, count(*) c FROM hits \
         <VISIBLE '2 minutes' ADVANCE '30 seconds'> GROUP BY url",
        "ivm",
    ),
    (
        "grouped-sum-min-max",
        "SELECT url, sum(v) s, min(v) lo, max(v) hi FROM hits \
         <VISIBLE '3 minutes' ADVANCE '1 minute'> GROUP BY url",
        "ivm",
    ),
    (
        "global-count-avg",
        "SELECT count(*) c, avg(v) a FROM hits <TUMBLING '1 minute'>",
        "ivm",
    ),
    (
        "distinct",
        "SELECT DISTINCT url FROM hits <VISIBLE '2 minutes' ADVANCE '1 minute'>",
        "ivm",
    ),
    (
        "join-agg",
        "SELECT h.url, count(*) c FROM hits \
         <VISIBLE '2 minutes' ADVANCE '1 minute'> h \
         JOIN sites s ON h.url = s.url GROUP BY h.url",
        "ivm",
    ),
    (
        "ordered-post-plan",
        "SELECT url, count(*) c FROM hits \
         <VISIBLE '2 minutes' ADVANCE '1 minute'> GROUP BY url \
         ORDER BY c DESC, url",
        "ivm",
    ),
    (
        "float-agg-falls-back",
        "SELECT sum(v * 0.5) s FROM hits <TUMBLING '1 minute'>",
        "reeval",
    ),
    (
        "rows-window-falls-back",
        "SELECT url, count(*) c FROM hits \
         <VISIBLE 100 ROWS ADVANCE 50 ROWS> GROUP BY url",
        "reeval",
    ),
];

fn ivm_on() -> DbOptions {
    DbOptions::default().without_sharing()
}

fn ivm_off() -> DbOptions {
    DbOptions::default().without_sharing().without_ivm()
}

fn db_with(opts: DbOptions) -> Db {
    let db = Db::in_memory(opts);
    for sql in DDL {
        db.execute(sql).unwrap();
    }
    db
}

fn metric(db: &Db, name: &str) -> i64 {
    let rel = db
        .execute(&format!(
            "SELECT value FROM streamrel_metrics WHERE name = '{name}'"
        ))
        .unwrap()
        .rows();
    rel.rows()
        .first()
        .and_then(|r| r.first())
        .and_then(|v| v.as_int().ok())
        .unwrap_or(0)
}

/// The `path` column `EXPLAIN CHECK` reports for `cq` (constant on every
/// report row).
fn explain_path(db: &Db, cq: &str) -> String {
    let rel = db.execute(&format!("EXPLAIN CHECK {cq}")).unwrap().rows();
    match rel.rows().first().and_then(|r| r.get(4)) {
        Some(Value::Text(s)) => s.to_string(),
        other => panic!("no path column in EXPLAIN CHECK output: {other:?}"),
    }
}

/// Run `cq` over `rows` (plus a closing heartbeat), canonicalize every
/// emitted window, and report how many CQs lowered to the IVM path.
fn windows(opts: DbOptions, cq: &str, rows: &[(String, i64, i64)]) -> (String, i64) {
    let db = db_with(opts);
    let sub = db.execute(cq).unwrap().subscription();
    for (url, v, ts) in rows {
        db.ingest(
            "hits",
            vec![
                Value::text(url.clone()),
                Value::Int(*v),
                Value::Timestamp(*ts),
            ],
        )
        .unwrap();
    }
    let last = rows.last().map(|(_, _, ts)| *ts).unwrap_or(0);
    db.heartbeat("hits", last + 10 * MINUTES).unwrap();
    let mut out = String::new();
    for o in db.poll(sub).unwrap() {
        out.push_str(&format!(
            "close={} schema={:?}\n",
            o.close,
            o.relation.schema()
        ));
        for r in o.relation.rows() {
            out.push_str(&format!("{r:?}\n"));
        }
    }
    (out, metric(&db, "ivm.lowered"))
}

/// Deterministic workload: irregular timestamp steps (1..29 s) so tuples
/// cross slice boundaries unevenly, five URLs (two of which have no
/// `sites` match), signed values.
fn fixed_rows(n: usize) -> Vec<(String, i64, i64)> {
    let mut ts = 0i64;
    (0..n)
        .map(|i| {
            ts += ((i as i64 * 7919) % 29 + 1) * SECONDS;
            (format!("/u{}", i % 5), (i as i64 * 31) % 97 - 48, ts)
        })
        .collect()
}

#[test]
fn every_case_is_byte_identical_and_takes_its_declared_path() {
    let rows = fixed_rows(300);
    for (name, cq, path) in CASES {
        // Static path report, with and without the option.
        assert_eq!(
            explain_path(&db_with(ivm_on()), cq),
            *path,
            "{name}: wrong EXPLAIN CHECK path"
        );
        assert_eq!(
            explain_path(&db_with(ivm_off()), cq),
            "reeval",
            "{name}: disabling IVM must force the reeval path"
        );

        // Dynamic equivalence: both executors, same tuples, same bytes.
        let (incr, lowered_on) = windows(ivm_on(), cq, &rows);
        let (reeval, lowered_off) = windows(ivm_off(), cq, &rows);
        assert!(!incr.is_empty(), "{name}: no windows emitted");
        assert_eq!(incr, reeval, "{name}: IVM output diverges from re-eval");
        assert_eq!(
            lowered_on,
            (*path == "ivm") as i64,
            "{name}: runtime lowering disagrees with the declared path"
        );
        assert_eq!(lowered_off, 0, "{name}: IVM lowered despite without_ivm()");
    }
}

#[test]
fn out_of_order_arrival_under_slack_stays_identical() {
    // Swap adjacent tuples so arrival order differs from CQTIME order,
    // within a 60-second slack.
    let mut rows = fixed_rows(200);
    for i in (1..rows.len()).step_by(7) {
        rows.swap(i - 1, i);
    }
    let cq = CASES[0].1;
    let slack = 60 * SECONDS;
    let (incr, lowered) = windows(ivm_on().with_slack(slack), cq, &rows);
    let (reeval, _) = windows(ivm_off().with_slack(slack), cq, &rows);
    assert_eq!(lowered, 1);
    assert!(!incr.is_empty());
    assert_eq!(incr, reeval, "out-of-order IVM output diverges");
}

proptest! {
    #![proptest_config(Config::with_cases(8))]
    /// Arbitrary workloads (key choice, values, irregular gaps) through
    /// every eligible case shape: both paths byte-identical.
    #[test]
    fn random_workloads_are_byte_identical(
        raw in prop::collection::vec((0usize..5, -50i64..50, 1i64..30), 20..150),
        case in 0usize..6,
    ) {
        let mut ts = 0i64;
        let rows: Vec<(String, i64, i64)> = raw
            .iter()
            .map(|(k, v, gap)| {
                ts += gap * SECONDS;
                (format!("/u{k}"), *v, ts)
            })
            .collect();
        let cq = CASES[case].1;
        let (incr, lowered) = windows(ivm_on(), cq, &rows);
        let (reeval, _) = windows(ivm_off(), cq, &rows);
        prop_assert_eq!(lowered, 1, "case {} must lower", CASES[case].0);
        prop_assert_eq!(incr, reeval, "case {} diverges", CASES[case].0);
    }
}

/// The torture harness's IVM entry: a sliding grouped count crashed at
/// every mutating I/O operation — including mid-slice, with partial
/// aggregate state in memory — recovered from the frozen disk image,
/// re-driven, and required to be byte-identical to the uncrashed
/// reference. (The nightly lane runs the same sweep at higher counts via
/// `recovery_torture`.)
#[test]
fn crash_mid_slice_recovery_is_byte_identical() {
    let out = ivm_sweep(0xC0FFEE, 12).unwrap();
    assert!(
        out.crash_points >= 30,
        "only {} crash points exercised",
        out.crash_points
    );
    let failures: Vec<String> = out
        .failures
        .iter()
        .map(|f| format!("seed={} op={}: {}", f.seed, f.op, f.detail))
        .collect();
    assert!(failures.is_empty(), "divergences:\n{}", failures.join("\n"));
}
