//! Serialize-once fan-out: equivalence, exactly-once, and conservation.
//!
//! One continuous query with N subscribers must behave like N private
//! copies of the query — every member receives the byte-identical window
//! sequence exactly once, remote or embedded — while the server does the
//! work of *one*: each closed window is encoded into a single shared
//! frame body no matter how many outboxes it is broadcast to
//! (`net.fanout.encodes` counts windows, not windows × subscribers).
//! On the loss side, nothing vanishes silently: windows routed to a
//! subscriber are either flushed (`net.windows_sent`), shed by its
//! bounded outbox (`net.outbox_drops`), or counted as casualties of its
//! death (`net.delivery_lost`) — the three must sum to the windows its
//! query closed.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use streamrel::net::{wire, Client, ClientOptions, Frame, FrameType, Server, ServerOptions};
use streamrel::types::Value;
use streamrel::{Db, DbOptions, ExecResult, OverflowPolicy};
use streamrel_faults::chaos;

const DDL: &str = "CREATE STREAM events (v integer, etime timestamp CQTIME USER)";
const CQ: &str = "SELECT sum(v) total, cq_close(*) w FROM events <TUMBLING '1 minute'>";

/// Rows for one window: all share a timestamp inside window `w`, so the
/// aggregate is independent of arrival interleaving.
fn window_rows(w: i64) -> Vec<Vec<Value>> {
    (0..4)
        .map(|c| {
            vec![
                Value::Int(w * 10 + c),
                Value::Timestamp(w * 60_000_000 + 10_000_000),
            ]
        })
        .collect()
}

/// Canonical bytes for one window result; "byte-identical" compares these.
fn canonical(close: i64, relation: &streamrel::types::Relation) -> (i64, Vec<u8>) {
    (close, wire::encode_rows(relation))
}

/// The reference: `windows` one-minute windows of the same workload
/// through the embedded API, drained from a single subscription.
fn embedded_reference(windows: i64) -> Vec<(i64, Vec<u8>)> {
    let db = Db::in_memory(DbOptions::default());
    db.execute(DDL).unwrap();
    let sub = match db.execute(CQ).unwrap() {
        ExecResult::Subscribed(s) => s,
        other => panic!("expected subscription, got {other:?}"),
    };
    for w in 0..windows {
        for row in window_rows(w) {
            db.ingest("events", row).unwrap();
        }
        db.heartbeat("events", (w + 1) * 60_000_000).unwrap();
    }
    db.poll(sub)
        .unwrap()
        .iter()
        .map(|o| canonical(o.close, &o.relation))
        .collect()
}

/// Read a named counter/gauge out of the engine's metrics relation.
fn metric(db: &Db, name: &str) -> Option<i64> {
    db.metrics_relation().rows().iter().find_map(|r| {
        (r[0] == Value::text(name)).then(|| match &r[2] {
            Value::Int(n) => *n,
            other => panic!("metric {name} is not an integer: {other:?}"),
        })
    })
}

/// Poll until `name` reaches `want` (metrics lag delivery by a reactor
/// tick; flat-out equality asserts would race it).
fn await_metric(db: &Db, name: &str, want: i64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let got = metric(db, name).unwrap_or(0);
        if got == want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "{name} stuck at {got}, want {want}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Drain exactly `want` windows from a stream, then prove nothing more
/// arrives: exactly-once means the sequence matches AND has no tail.
fn collect_exactly(
    stream: &streamrel::net::SubscriptionStream,
    want: usize,
) -> Vec<(i64, Vec<u8>)> {
    let mut got = Vec::new();
    while got.len() < want {
        let out = stream
            .next_timeout(Duration::from_secs(10))
            .expect("window result not pushed within 10s");
        got.push(canonical(out.close, &out.relation));
    }
    assert!(
        stream.next_timeout(Duration::from_millis(200)).is_none(),
        "subscriber received more windows than the query closed"
    );
    got
}

#[test]
fn fanout_members_receive_byte_identical_windows_exactly_once() {
    const WINDOWS: i64 = 2;
    let reference = embedded_reference(WINDOWS);
    assert_eq!(reference.len(), WINDOWS as usize);

    let db = Arc::new(Db::in_memory(DbOptions::default()));
    let server = Server::serve(db.clone(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    let admin = Client::connect(addr).unwrap();
    admin.execute(DDL).unwrap();

    // Three connections, multiple logical subscriptions multiplexed over
    // each: one primary plus two attached members per connection — seven
    // streams total sharing ONE running query.
    let conns: Vec<Client> = (0..3).map(|_| Client::connect(addr).unwrap()).collect();
    let primary = conns[0].subscribe(CQ).unwrap();
    let mut streams = Vec::new();
    for conn in &conns {
        for _ in 0..2 {
            streams.push(conn.subscribe_attach(primary.id()).unwrap());
        }
    }
    streams.push(primary);
    assert_eq!(db.stats().live_subs, streams.len() as u64);

    for w in 0..WINDOWS {
        admin.ingest_batch("events", &window_rows(w)).unwrap();
        admin.heartbeat("events", (w + 1) * 60_000_000).unwrap();
    }

    for stream in &streams {
        assert_eq!(collect_exactly(stream, reference.len()), reference);
        assert_eq!(stream.dropped(), 0);
    }

    // The server ran the query once and serialized each window once:
    // encodes == windows closed, NOT windows × subscribers.
    assert_eq!(metric(&db, "net.fanout.encodes"), Some(WINDOWS));
    await_metric(&db, "net.windows_sent", WINDOWS * streams.len() as i64);
    assert_eq!(metric(&db, "net.outbox_drops"), Some(0));
    assert_eq!(metric(&db, "net.delivery_lost"), Some(0));

    drop(streams);
    for c in conns {
        c.close().unwrap();
    }
    admin.close().unwrap();
    server.shutdown();
}

#[test]
fn attached_members_survive_primary_death_mid_delivery() {
    const WINDOWS: i64 = 2;
    let reference = embedded_reference(WINDOWS);

    let db = Arc::new(Db::in_memory(DbOptions::default()));
    let server = Server::serve(db.clone(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    let admin = Client::connect(addr).unwrap();
    admin.execute(DDL).unwrap();

    // The primary subscribes over a raw socket so it can die without a
    // Goodbye; two members attach from their own connections.
    let mut raw = TcpStream::connect(addr).unwrap();
    Frame::new(FrameType::Query, wire::encode_query(CQ))
        .write_to(&mut raw)
        .unwrap();
    raw.flush().unwrap();
    let ack = Frame::read_from(&mut raw).unwrap().unwrap();
    assert_eq!(ack.ty, FrameType::Subscribed);
    let primary_id = wire::decode_subscribed(&ack.payload).unwrap();

    let members: Vec<Client> = (0..2).map(|_| Client::connect(addr).unwrap()).collect();
    let streams: Vec<_> = members
        .iter()
        .map(|c| c.subscribe_attach(primary_id).unwrap())
        .collect();
    assert_eq!(db.stats().live_subs, 3);

    // Window 1 flows to everyone, including the doomed primary.
    admin.ingest_batch("events", &window_rows(0)).unwrap();
    admin.heartbeat("events", 60_000_000).unwrap();
    let first = Frame::read_from(&mut raw).unwrap().expect("primary window");
    assert_eq!(first.ty, FrameType::WindowResult);
    let (id, out) = wire::decode_window_result(&first.payload).unwrap();
    assert_eq!(id, primary_id);
    assert_eq!(canonical(out.close, &out.relation), reference[0]);

    // Primary dies abruptly mid-stream. The query must keep running for
    // the attached members — only the dead subscription is reaped.
    drop(raw);
    let deadline = Instant::now() + Duration::from_secs(5);
    while db.stats().live_subs != 2 {
        assert!(Instant::now() < deadline, "dead primary never reaped");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Window 2 closes after the death; survivors still get the full,
    // byte-identical sequence.
    admin.ingest_batch("events", &window_rows(1)).unwrap();
    admin.heartbeat("events", 120_000_000).unwrap();
    for stream in &streams {
        assert_eq!(collect_exactly(stream, reference.len()), reference);
    }
    // Each window was still encoded once, members or not.
    assert_eq!(metric(&db, "net.fanout.encodes"), Some(WINDOWS));

    drop(streams);
    for c in members {
        c.close().unwrap();
    }
    admin.close().unwrap();
    server.shutdown();
}

#[test]
fn fanout_is_byte_identical_under_chaos_schedules() {
    // race_torture's contract, applied to the fan-out path: for every
    // chaos seed the remote members' observable results must equal the
    // unperturbed embedded reference exactly — any divergence is a real
    // ordering bug in reactor/engine handoff, never schedule noise.
    const WINDOWS: i64 = 2;
    let reference = embedded_reference(WINDOWS);

    parking_lot::witness::enable();
    let mut points = 0;
    for seed in [0xC1D2_2009, 0xFA10_0075] {
        chaos::arm(seed);
        let run = std::panic::catch_unwind(|| {
            let db = Arc::new(Db::in_memory(DbOptions::default()));
            let server = Server::serve(db.clone(), "127.0.0.1:0").unwrap();
            let addr = server.local_addr();
            let admin = Client::connect(addr).unwrap();
            admin.execute(DDL).unwrap();

            let conns: Vec<Client> = (0..2).map(|_| Client::connect(addr).unwrap()).collect();
            let primary = conns[0].subscribe(CQ).unwrap();
            let mut streams = vec![conns[1].subscribe_attach(primary.id()).unwrap()];
            streams.push(conns[0].subscribe_attach(primary.id()).unwrap());
            streams.push(primary);

            for w in 0..WINDOWS {
                admin.ingest_batch("events", &window_rows(w)).unwrap();
                admin.heartbeat("events", (w + 1) * 60_000_000).unwrap();
            }
            let got: Vec<_> = streams
                .iter()
                .map(|s| collect_exactly(s, WINDOWS as usize))
                .collect();
            drop(streams);
            for c in conns {
                c.close().unwrap();
            }
            admin.close().unwrap();
            server.shutdown();
            got
        });
        chaos::disarm();
        points += chaos::ops();
        let got = match run {
            Ok(got) => got,
            Err(_) => panic!("seed {seed:#x}: fan-out run panicked under chaos"),
        };
        for (i, member) in got.iter().enumerate() {
            assert_eq!(
                member, &reference,
                "seed {seed:#x}: member {i} diverged from embedded reference"
            );
        }
    }
    parking_lot::witness::disable();
    assert!(points > 0, "chaos injector never fired");
}

#[test]
fn delivery_loss_is_conserved_across_socket_death() {
    // A subscriber that stops reading, then dies: every window its query
    // closed must be accounted for — flushed to the socket, shed by the
    // bounded outbox, or counted lost at teardown. Large payloads defeat
    // kernel socket buffering so real backpressure (and real residue)
    // builds up server-side.
    const WINDOWS: i64 = 16;
    const ROWS_PER_WINDOW: i64 = 768;

    let db = Arc::new(Db::in_memory(DbOptions::default()));
    let opts = ServerOptions {
        outbox_capacity: 2,
        outbox_overflow: OverflowPolicy::DropOldest,
        write_timeout: Duration::from_secs(30), // let the drop, not the stall, kill it
        ..ServerOptions::default()
    };
    let server = Server::serve_with(db.clone(), "127.0.0.1:0", opts).unwrap();
    let addr = server.local_addr();

    let admin = Client::connect(addr).unwrap();
    admin
        .execute(
            "CREATE STREAM events (v integer, payload varchar(2048), etime timestamp CQTIME USER)",
        )
        .unwrap();

    // Subscribe over a raw socket, consume the ack, then go silent.
    let mut raw = TcpStream::connect(addr).unwrap();
    Frame::new(
        FrameType::Query,
        wire::encode_query("SELECT v, payload FROM events <TUMBLING '1 minute'>"),
    )
    .write_to(&mut raw)
    .unwrap();
    raw.flush().unwrap();
    let ack = Frame::read_from(&mut raw).unwrap().unwrap();
    assert_eq!(ack.ty, FrameType::Subscribed);

    let filler = "x".repeat(1024);
    for w in 0..WINDOWS {
        let rows: Vec<Vec<Value>> = (0..ROWS_PER_WINDOW)
            .map(|i| {
                vec![
                    Value::Int(w * ROWS_PER_WINDOW + i),
                    Value::text(&filler),
                    Value::Timestamp(w * 60_000_000 + 10_000_000),
                ]
            })
            .collect();
        admin.ingest_batch("events", &rows).unwrap();
        admin.heartbeat("events", (w + 1) * 60_000_000).unwrap();
    }

    // Die abruptly with megabytes still in flight.
    drop(raw);
    let deadline = Instant::now() + Duration::from_secs(10);
    while db.stats().live_subs != 0 {
        assert!(Instant::now() < deadline, "dead subscriber never reaped");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Conservation: sent + shed + lost == closed. And the death was
    // genuinely mid-delivery — something was lost or shed, not just
    // buffered away by the kernel.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let sent = metric(&db, "net.windows_sent").unwrap_or(0);
        let shed = metric(&db, "net.outbox_drops").unwrap_or(0);
        let lost = metric(&db, "net.delivery_lost").unwrap_or(0);
        if sent + shed + lost == WINDOWS {
            assert!(
                shed + lost > 0,
                "workload too small to exercise loss accounting"
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "conservation violated: sent={sent} shed={shed} lost={lost}, want sum {WINDOWS}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    admin.close().unwrap();
    server.shutdown();
}

#[test]
fn client_queue_is_bounded_with_visible_drops() {
    // Satellite of the same discipline on the other end of the wire: a
    // consumer that falls behind sheds by policy client-side instead of
    // growing without limit, and the shed count is visible.
    const WINDOWS: i64 = 8;
    const KEEP: usize = 3;
    let reference = embedded_reference(WINDOWS);

    let db = Arc::new(Db::in_memory(DbOptions::default()));
    let server = Server::serve(db.clone(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    let admin = Client::connect(addr).unwrap();
    admin.execute(DDL).unwrap();

    let lagger = Client::connect_with(
        addr,
        ClientOptions {
            sub_queue_capacity: KEEP,
            sub_overflow: OverflowPolicy::DropOldest,
        },
    )
    .unwrap();
    let stream = lagger.subscribe(CQ).unwrap();

    for w in 0..WINDOWS {
        admin.ingest_batch("events", &window_rows(w)).unwrap();
        admin.heartbeat("events", (w + 1) * 60_000_000).unwrap();
    }

    // The reader thread keeps draining the wire into the bounded queue;
    // once everything arrived, exactly capacity windows remain and the
    // overflow is counted.
    let deadline = Instant::now() + Duration::from_secs(10);
    while stream.dropped() != WINDOWS as u64 - KEEP as u64 {
        assert!(
            Instant::now() < deadline,
            "client-side drops stuck at {}",
            stream.dropped()
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // DropOldest keeps the newest windows: the tail of the reference.
    let mut kept = Vec::new();
    while let Some(out) = stream.try_next() {
        kept.push(canonical(out.close, &out.relation));
    }
    assert_eq!(kept, reference[reference.len() - KEEP..]);

    drop(stream);
    lagger.close().unwrap();
    admin.close().unwrap();
    server.shutdown();
}
