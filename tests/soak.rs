//! Soak test: a full pipeline under sustained mixed load — ingest,
//! cascaded derived streams, both channel modes, dimension updates,
//! ad-hoc snapshot queries, vacuum, and (durable variant) checkpointing —
//! with global invariants checked at every phase boundary.

use streamrel::types::time::MINUTES;
use streamrel::types::Value;
use streamrel::{Db, DbOptions};

fn build_pipeline(db: &Db) {
    db.execute("CREATE STREAM clicks (url varchar(64), ts timestamp CQTIME USER)")
        .unwrap();
    db.execute("CREATE TABLE categories (url varchar(64), cat varchar(16))")
        .unwrap();
    for i in 0..8 {
        db.execute(&format!(
            "INSERT INTO categories VALUES ('/p{i}', 'cat{}')",
            i % 3
        ))
        .unwrap();
    }
    // Level 1: per-minute per-URL counts, enriched with category.
    db.execute(
        "CREATE STREAM by_url AS \
         SELECT c.url, min(d.cat) cat, count(*) hits, cq_close(*) w \
         FROM clicks <TUMBLING '1 minute'> c \
         JOIN categories d ON c.url = d.url GROUP BY c.url",
    )
    .unwrap();
    // Level 2: rolling 3-minute totals per category over level 1.
    db.execute(
        "CREATE STREAM by_cat AS \
         SELECT cat, sum(hits) hits, cq_close(*) w3 \
         FROM by_url <VISIBLE '3 minutes' ADVANCE '1 minute'> GROUP BY cat",
    )
    .unwrap();
    db.execute(
        "CREATE TABLE url_hist (url varchar(64), cat varchar(16), hits bigint, w timestamp)",
    )
    .unwrap();
    db.execute("CREATE CHANNEL c1 FROM by_url INTO url_hist APPEND")
        .unwrap();
    db.execute("CREATE TABLE cat_latest (cat varchar(16), hits bigint, w3 timestamp)")
        .unwrap();
    db.execute("CREATE CHANNEL c2 FROM by_cat INTO cat_latest REPLACE")
        .unwrap();
}

fn drive(db: &Db, minutes_start: i64, minutes_end: i64) {
    for m in minutes_start..minutes_end {
        let rows: Vec<Vec<Value>> = (0..120)
            .map(|i| {
                vec![
                    Value::text(format!("/p{}", (m + i) % 8)),
                    Value::Timestamp(m * MINUTES + i * 400_000 + 1),
                ]
            })
            .collect();
        db.ingest_batch("clicks", rows).unwrap();
        // Mid-stream dimension churn.
        if m % 3 == 2 {
            db.execute(&format!("DELETE FROM categories WHERE url = '/p{}'", m % 8))
                .unwrap();
            db.execute(&format!(
                "INSERT INTO categories VALUES ('/p{}', 'cat{}')",
                m % 8,
                m % 3
            ))
            .unwrap();
        }
        // Ad-hoc snapshot query interleaved.
        db.execute("SELECT count(*) FROM url_hist").unwrap();
    }
    db.heartbeat("clicks", minutes_end * MINUTES).unwrap();
}

fn check_invariants(db: &Db, minutes: i64) {
    // Every ingested click that matched a category landed in exactly one
    // url_hist window row-sum.
    let total = db
        .execute("SELECT coalesce(sum(hits), 0) FROM url_hist")
        .unwrap()
        .rows();
    assert_eq!(
        total.rows()[0][0],
        Value::Int(minutes * 120),
        "all clicks accounted once"
    );
    // No window/url pair archived twice.
    let dup = db
        .execute("SELECT w, url, count(*) FROM url_hist GROUP BY w, url HAVING count(*) > 1")
        .unwrap()
        .rows();
    assert!(dup.is_empty());
    // The REPLACE table holds exactly the distinct categories of one close.
    let latest = db
        .execute("SELECT count(distinct w3), count(*) FROM cat_latest")
        .unwrap()
        .rows();
    assert_eq!(latest.rows()[0][0], Value::Int(1), "one window only");
    // Level-2 totals cover the last 3 minutes of level-1 data.
    let lvl2 = db
        .execute("SELECT sum(hits) FROM cat_latest")
        .unwrap()
        .rows();
    let expect = 120 * minutes.min(3);
    assert_eq!(lvl2.rows()[0][0], Value::Int(expect));
}

#[test]
fn soak_in_memory() {
    let db = Db::in_memory(DbOptions::default());
    build_pipeline(&db);
    drive(&db, 0, 10);
    check_invariants(&db, 10);
    let reclaimed = db.engine().vacuum();
    // REPLACE channel deletes + dimension churn leave dead versions.
    assert!(reclaimed > 0, "vacuum reclaimed {reclaimed}");
    check_invariants(&db, 10);
    // Keep going after vacuum.
    drive(&db, 10, 15);
    check_invariants(&db, 15);
}

#[test]
fn soak_durable_with_restarts_and_checkpoints() {
    let dir = std::env::temp_dir().join(format!("streamrel-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let db = Db::open(&dir, DbOptions::default()).unwrap();
        build_pipeline(&db);
        drive(&db, 0, 5);
        check_invariants(&db, 5);
        db.execute("CHECKPOINT").unwrap();
    }
    {
        let db = Db::open(&dir, DbOptions::default()).unwrap();
        check_invariants(&db, 5);
        drive(&db, 5, 9);
        check_invariants(&db, 9);
        // Crash without checkpoint.
    }
    {
        let db = Db::open(&dir, DbOptions::default()).unwrap();
        check_invariants(&db, 9);
        drive(&db, 9, 12);
        check_invariants(&db, 12);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Federation soak: a bridge under sustained load stays healthy — the
/// link never drops (`fed.reconnects == 0`), every window is applied,
/// and the lag gauge settles back to zero once the producer quiesces.
#[test]
fn soak_federated_bridge() {
    use std::sync::Arc;
    use std::time::Duration;

    use streamrel::net::{Bridge, BridgeOptions, Server};

    const MINUTES_DRIVEN: i64 = 30;

    let producer = Arc::new(Db::in_memory(DbOptions::default()));
    producer
        .execute("CREATE STREAM clicks (url varchar(64), ts timestamp CQTIME USER)")
        .unwrap();
    producer
        .execute(
            "CREATE STREAM by_url AS SELECT url, count(*) hits, cq_close(*) w \
             FROM clicks <TUMBLING '1 minute'> GROUP BY url ORDER BY url",
        )
        .unwrap();
    let server = Server::serve(producer.clone(), "127.0.0.1:0").unwrap();

    let consumer = Arc::new(Db::in_memory(DbOptions::default()));
    consumer
        .execute("CREATE STREAM partials (url varchar(64), hits integer, w timestamp CQTIME USER)")
        .unwrap();
    consumer
        .execute("CREATE TABLE url_total (url varchar(64), hits bigint, w2 timestamp)")
        .unwrap();
    consumer
        .execute(
            "CREATE STREAM rollup AS SELECT url, sum(hits) hits, cq_close(*) w2 \
             FROM partials <TUMBLING '2 minutes'> GROUP BY url ORDER BY url",
        )
        .unwrap();
    consumer
        .execute("CREATE CHANNEL cagg FROM rollup INTO url_total APPEND")
        .unwrap();

    let bridge = Bridge::start(
        consumer.clone(),
        server.local_addr().to_string(),
        "by_url",
        "partials",
        BridgeOptions::default(),
    )
    .unwrap();
    assert!(bridge.wait_until_up(Duration::from_secs(10)));

    // Sustained minute-by-minute load, heartbeat advancing each round so
    // windows stream out continuously instead of in one terminal burst.
    for m in 0..MINUTES_DRIVEN {
        let rows: Vec<Vec<Value>> = (0..60)
            .map(|i| {
                vec![
                    Value::text(format!("/p{}", (m + i) % 8)),
                    Value::Timestamp(m * MINUTES + i * 900_000 + 1),
                ]
            })
            .collect();
        producer.ingest_batch("clicks", rows).unwrap();
        producer.heartbeat("clicks", (m + 1) * MINUTES).unwrap();
    }
    // Flush: two empty producer windows carry the watermark past the
    // consumer's last (2-minute) rollup boundary so it closes too.
    producer
        .heartbeat("clicks", (MINUTES_DRIVEN + 2) * MINUTES)
        .unwrap();

    // Every producer window crosses the bridge: one per minute driven
    // plus the two empty flush windows.
    assert!(
        bridge.wait_for_windows(MINUTES_DRIVEN as u64 + 2, Duration::from_secs(30)),
        "only {} of {} windows applied",
        bridge.windows_applied(),
        MINUTES_DRIVEN + 2
    );

    // Healthy-link invariants: no drops, no failed applies, lag settled.
    assert!(bridge.is_up());
    assert_eq!(bridge.reconnects(), 0, "link dropped under soak load");
    assert_eq!(bridge.apply_errors(), 0);
    let lag_settled = |db: &Db| {
        db.metrics_relation()
            .rows()
            .iter()
            .find(|r| r[0] == Value::text("fed.lag"))
            .map(|r| r[2] == Value::Int(0))
            .unwrap_or(true)
    };
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !lag_settled(&consumer) {
        assert!(
            std::time::Instant::now() < deadline,
            "fed.lag never settled"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // End-to-end conservation: every click is in exactly one rollup row.
    // Rollup windows close every 2 minutes; the last one closed covers
    // through the final heartbeat, so all clicks are archived.
    let total = consumer
        .execute("SELECT coalesce(sum(hits), 0) FROM url_total")
        .unwrap()
        .rows();
    assert_eq!(
        total.rows()[0][0],
        Value::Int(MINUTES_DRIVEN * 60),
        "clicks lost or duplicated across the bridge"
    );

    bridge.shutdown();
    server.shutdown();
}
