//! Property: the shared-slice execution path is observationally identical
//! to the unshared path — for random workloads, every subscribed CQ
//! receives byte-identical window sequences under both modes. This is the
//! end-to-end guarantee behind the paper's "Jellybean processing": sharing
//! is purely an execution strategy, never a semantic change.

use proptest::prelude::*;
use proptest::test_runner::Config;
use streamrel::types::Value;
use streamrel::{Db, DbOptions};

fn run_workload(
    sharing: bool,
    queries: &[(u64, u64)],
    tuples: &[(u8, i64)],
) -> Vec<Vec<(i64, Vec<Vec<String>>)>> {
    let opts = if sharing {
        DbOptions::default()
    } else {
        DbOptions::default().without_sharing()
    };
    let db = Db::in_memory(opts);
    db.execute("CREATE STREAM s (k varchar(4), ts timestamp CQTIME USER)")
        .unwrap();
    let subs: Vec<_> = queries
        .iter()
        .map(|(vis, adv)| {
            db.execute(&format!(
                "SELECT k, count(*) c FROM s \
                 <VISIBLE '{vis} seconds' ADVANCE '{adv} seconds'> \
                 GROUP BY k ORDER BY c DESC, k"
            ))
            .unwrap()
            .subscription()
        })
        .collect();
    let mut clock = 0i64;
    for (key, gap) in tuples {
        clock += gap;
        db.ingest(
            "s",
            vec![
                Value::text(format!("k{}", key % 4)),
                Value::Timestamp(clock),
            ],
        )
        .unwrap();
    }
    db.heartbeat("s", clock + 600_000_000).unwrap();
    subs.into_iter()
        .map(|sub| {
            db.poll(sub)
                .unwrap()
                .into_iter()
                .map(|o| {
                    (
                        o.close,
                        o.relation
                            .rows()
                            .iter()
                            .map(|r| r.iter().map(|v| v.to_string()).collect())
                            .collect(),
                    )
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(Config::with_cases(24))]
    #[test]
    fn shared_equals_unshared(
        // 1-4 queries with windows in whole seconds: visible = k*advance.
        queries in prop::collection::vec((1u64..5, 1u64..4), 1..4),
        tuples in prop::collection::vec((any::<u8>(), 0i64..3_000_000), 1..120),
    ) {
        let queries: Vec<(u64, u64)> = queries
            .into_iter()
            .map(|(k, adv)| (k * adv, adv))
            .collect();
        let shared = run_workload(true, &queries, &tuples);
        let unshared = run_workload(false, &queries, &tuples);
        prop_assert_eq!(shared, unshared);
    }
}
