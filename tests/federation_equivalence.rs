//! Cross-node federation equivalence.
//!
//! Three claims, each proven byte-for-byte against a same-shape embedded
//! reference (the pipeline shape matters: base-vs-derived streams differ
//! in window boundary inclusivity, so the reference runs the *identical*
//! producer → partials → merged-CQ chain, just without sockets):
//!
//! 1. A bridged derived stream is a transparent source: node B's merged
//!    windows are byte-identical to the embedded run, and B's windows
//!    close with **zero local ingest** (watermarks ride the bridge).
//! 2. Hash-partitioning a stream over two serving nodes and merging the
//!    per-partition partials through [`UnionIngest`] yields output
//!    byte-identical to the unpartitioned single-node reference.
//! 3. Killing the serving node's listener mid-stream loses nothing: the
//!    bridge reconnects with backoff, resumes via `SubscribeFrom` from
//!    the last applied close, and the server replays the gap from its
//!    Active-Table archive.

use std::sync::Arc;
use std::time::{Duration, Instant};

use streamrel::cq::Partitioner;
use streamrel::net::{wire, Bridge, BridgeOptions, Server, UnionIngest};
use streamrel::types::{Relation, Row, Value};
use streamrel::{Db, DbOptions, ExecResult, SubscriptionId};

const MIN_US: i64 = 60_000_000; // one minute, in µs

/// The serving (producer) node: a raw hit stream, a per-minute per-url
/// count CQ, and an Active-Table archive of its windows (the replay
/// source for `SubscribeFrom`).
const PRODUCER_DDL: &[&str] = &[
    "CREATE STREAM hits (url varchar(100), htime timestamp CQTIME USER)",
    "CREATE TABLE hit_archive (url varchar(100), scnt integer, stime timestamp)",
    "CREATE STREAM hit_partials AS SELECT url, count(*) scnt, cq_close(*) stime \
     FROM hits <TUMBLING '1 minute'> GROUP BY url ORDER BY url",
    "CREATE CHANNEL hit_chan FROM hit_partials INTO hit_archive APPEND",
];

/// The consuming node: remote partials land in a local base stream; a
/// local CQ merges them. ORDER BY makes the merged output order a pure
/// function of the window contents (not of partial arrival order).
const CONSUMER_STREAM: &str =
    "CREATE STREAM partials (url varchar(100), scnt integer, stime timestamp CQTIME USER)";
const MERGED_CQ: &str = "SELECT url, sum(scnt) total, cq_close(*) w \
     FROM partials <TUMBLING '1 minute'> GROUP BY url ORDER BY url";

/// Rows for one producer window: 10 hits covering 5 urls, timestamps
/// inside `[w min, w+1 min)`. Every url appears in every window, so
/// every partition of a url-partitioned split has data in every window.
fn feed(w: i64) -> Vec<Row> {
    (0..10)
        .map(|i| {
            vec![
                Value::text(format!("/p{}", i % 5)),
                Value::Timestamp(w * MIN_US + i * 1_000_000),
            ]
        })
        .collect()
}

/// Canonical bytes for one window result (close + codec-encoded rows);
/// "byte-identical" means these compare equal.
fn canonical(close: i64, relation: &Relation) -> (i64, Vec<u8>) {
    (close, wire::encode_rows(relation))
}

fn apply_ddl(db: &Db, stmts: &[&str]) {
    for stmt in stmts {
        db.execute(stmt).unwrap();
    }
}

fn subscribe(db: &Db, sql: &str) -> SubscriptionId {
    match db.execute(sql).unwrap() {
        ExecResult::Subscribed(s) => s,
        other => panic!("expected subscription from {sql}, got {other:?}"),
    }
}

fn metric(db: &Db, name: &str) -> i64 {
    db.metrics_relation()
        .rows()
        .iter()
        .find(|r| r[0] == Value::text(name))
        .map(|r| match &r[2] {
            Value::Int(v) => *v,
            other => panic!("metric {name} has non-int value {other:?}"),
        })
        .unwrap_or(0)
}

/// Drain the embedded merged subscription until `n` windows arrived or
/// the deadline passed (the bridge applies asynchronously).
fn drain_merged(db: &Db, sub: SubscriptionId, n: usize, timeout: Duration) -> Vec<(i64, Vec<u8>)> {
    let deadline = Instant::now() + timeout;
    let mut got = Vec::new();
    loop {
        for out in db.poll(sub).unwrap() {
            got.push(canonical(out.close, &out.relation));
        }
        if got.len() >= n || Instant::now() >= deadline {
            return got;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The embedded reference: the same producer → partials → merged-CQ
/// pipeline in one process, windows applied in producer order exactly
/// like the bridge does (ingest rows, heartbeat the close).
fn embedded_reference(windows: &[i64], flush_hb: i64) -> Vec<(i64, Vec<u8>)> {
    let producer = Db::in_memory(DbOptions::default());
    apply_ddl(&producer, PRODUCER_DDL);
    let partials = producer.subscribe_stream("hit_partials").unwrap();

    let consumer = Db::in_memory(DbOptions::default());
    apply_ddl(&consumer, &[CONSUMER_STREAM]);
    let merged = subscribe(&consumer, MERGED_CQ);

    for &w in windows {
        producer.ingest_batch("hits", feed(w)).unwrap();
    }
    producer.heartbeat("hits", flush_hb).unwrap();
    for out in producer.poll(partials).unwrap() {
        if !out.relation.rows().is_empty() {
            consumer
                .ingest_batch("partials", out.relation.rows().to_vec())
                .unwrap();
        }
        consumer.heartbeat("partials", out.close).unwrap();
    }
    let outs = consumer.poll(merged).unwrap();
    outs.iter()
        .map(|o| canonical(o.close, &o.relation))
        .collect()
}

/// Fast-retry bridge options so reconnect tests stay quick.
fn test_bridge_opts() -> BridgeOptions {
    BridgeOptions {
        backoff_initial: Duration::from_millis(20),
        backoff_max: Duration::from_millis(200),
        poll: Duration::from_millis(20),
        ..BridgeOptions::default()
    }
}

#[test]
fn bridged_stream_is_byte_identical_to_embedded() {
    // Four data windows plus one heartbeat-only (empty) window: the
    // flush heartbeat at 5min closes [4min,5min) with nothing in it,
    // which is exactly what carries the watermark that lets the
    // consumer's last merged window close.
    let reference = embedded_reference(&[0, 1, 2, 3], 5 * MIN_US);
    assert_eq!(
        reference.len(),
        4,
        "expected merged windows at closes 2..=5 min, got {:?}",
        reference.iter().map(|(c, _)| c).collect::<Vec<_>>()
    );

    let producer = Arc::new(Db::in_memory(DbOptions::default()));
    apply_ddl(&producer, PRODUCER_DDL);
    let server = Server::serve(producer.clone(), "127.0.0.1:0").unwrap();

    let consumer = Arc::new(Db::in_memory(DbOptions::default()));
    apply_ddl(&consumer, &[CONSUMER_STREAM]);
    let merged = subscribe(&consumer, MERGED_CQ);

    let bridge = Bridge::start(
        consumer.clone(),
        server.local_addr().to_string(),
        "hit_partials",
        "partials",
        test_bridge_opts(),
    )
    .unwrap();
    assert!(bridge.wait_until_up(Duration::from_secs(10)));

    for w in 0..4 {
        producer.ingest_batch("hits", feed(w)).unwrap();
    }
    producer.heartbeat("hits", 5 * MIN_US).unwrap();

    // 4 data windows + the trailing empty one all cross the bridge.
    assert!(
        bridge.wait_for_windows(5, Duration::from_secs(10)),
        "bridge applied only {} windows",
        bridge.windows_applied()
    );
    let got = drain_merged(&consumer, merged, reference.len(), Duration::from_secs(10));
    assert_eq!(got, reference);

    // Healthy link: never dropped, never failed to apply, still up.
    assert_eq!(bridge.reconnects(), 0);
    assert_eq!(bridge.apply_errors(), 0);
    assert!(bridge.is_up());
    assert_eq!(metric(&consumer, "fed.links"), 1);
    assert_eq!(metric(&consumer, "fed.link_up"), 1);
    assert_eq!(metric(&consumer, "fed.reconnects"), 0);
    assert_eq!(metric(&consumer, "fed.windows_in"), 5);
    // Live-only first subscription: nothing was replayed server-side.
    assert_eq!(metric(&producer, "fed.resubscribes"), 0);

    bridge.shutdown();
    assert_eq!(metric(&consumer, "fed.links"), 0);
    assert_eq!(metric(&consumer, "fed.link_up"), 0);
    server.shutdown();
}

#[test]
fn partitioned_two_nodes_merge_byte_identical_to_single_node() {
    let reference = embedded_reference(&[0, 1, 2, 3], 5 * MIN_US);

    // Two serving nodes, each running the same CQ over its partition.
    let nodes: Vec<Arc<Db>> = (0..2)
        .map(|_| {
            let db = Arc::new(Db::in_memory(DbOptions::default()));
            apply_ddl(&db, PRODUCER_DDL);
            db
        })
        .collect();
    let servers: Vec<Server> = nodes
        .iter()
        .map(|db| Server::serve(db.clone(), "127.0.0.1:0").unwrap())
        .collect();

    let consumer = Arc::new(Db::in_memory(DbOptions::default()));
    apply_ddl(&consumer, &[CONSUMER_STREAM]);
    let merged = subscribe(&consumer, MERGED_CQ);

    // One shared union merges the two partition bridges.
    let union = UnionIngest::new(2);
    let bridges: Vec<Bridge> = servers
        .iter()
        .enumerate()
        .map(|(p, server)| {
            Bridge::start_partition(
                consumer.clone(),
                server.local_addr().to_string(),
                "hit_partials",
                "partials",
                union.clone(),
                p,
                test_bridge_opts(),
            )
            .unwrap()
        })
        .collect();
    for bridge in &bridges {
        assert!(bridge.wait_until_up(Duration::from_secs(10)));
    }

    // Partition the identical feed by url across the two nodes.
    let partitioner = Partitioner::new(0, 2).unwrap();
    for w in 0..4 {
        let splits = partitioner.split(feed(w)).unwrap();
        for (node, rows) in nodes.iter().zip(splits) {
            assert!(!rows.is_empty(), "feed leaves a partition empty");
            node.ingest_batch("hits", rows).unwrap();
        }
    }
    // Every partition must see the flush watermark, or the union frontier
    // (min over partitions) never reaches the final close.
    for node in &nodes {
        node.heartbeat("hits", 5 * MIN_US).unwrap();
    }

    for bridge in &bridges {
        assert!(
            bridge.wait_for_windows(5, Duration::from_secs(10)),
            "partition bridge applied only {} windows",
            bridge.windows_applied()
        );
    }
    let got = drain_merged(&consumer, merged, reference.len(), Duration::from_secs(10));
    assert_eq!(
        got, reference,
        "partitioned merge diverged from single-node reference"
    );

    for bridge in bridges {
        assert_eq!(bridge.reconnects(), 0);
        assert_eq!(bridge.apply_errors(), 0);
        bridge.shutdown();
    }
    for server in servers {
        server.shutdown();
    }
}

#[test]
fn bridge_resumes_from_archive_after_server_restart() {
    let reference = embedded_reference(&[0, 1, 2, 3], 5 * MIN_US);

    let producer = Arc::new(Db::in_memory(DbOptions::default()));
    apply_ddl(&producer, PRODUCER_DDL);
    let server = Server::serve(producer.clone(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    let consumer = Arc::new(Db::in_memory(DbOptions::default()));
    apply_ddl(&consumer, &[CONSUMER_STREAM]);
    let merged = subscribe(&consumer, MERGED_CQ);
    let bridge = Bridge::start(
        consumer.clone(),
        addr.to_string(),
        "hit_partials",
        "partials",
        test_bridge_opts(),
    )
    .unwrap();
    assert!(bridge.wait_until_up(Duration::from_secs(10)));

    // Phase 1: two windows flow live.
    for w in 0..2 {
        producer.ingest_batch("hits", feed(w)).unwrap();
    }
    producer.heartbeat("hits", 2 * MIN_US).unwrap();
    assert!(bridge.wait_for_windows(2, Duration::from_secs(10)));
    assert_eq!(bridge.last_applied(), Some(2 * MIN_US));

    // Phase 2: the listener dies. The producer keeps ingesting and
    // archiving while the link is down — these windows reach no
    // subscriber and exist only in the Active Table.
    server.shutdown();
    let deadline = Instant::now() + Duration::from_secs(10);
    while bridge.is_up() {
        assert!(Instant::now() < deadline, "bridge never noticed the drop");
        std::thread::sleep(Duration::from_millis(10));
    }
    for w in 2..4 {
        producer.ingest_batch("hits", feed(w)).unwrap();
    }
    producer.heartbeat("hits", 4 * MIN_US).unwrap();

    // Phase 3: restart the listener on the same port and same Db. The
    // bridge reconnects, resumes from close=2min, and the server replays
    // the two archived gap windows.
    let server = {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match Server::serve(producer.clone(), addr) {
                Ok(s) => break s,
                Err(e) => {
                    assert!(Instant::now() < deadline, "rebind {addr} failed: {e}");
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    };
    assert!(
        bridge.wait_for_windows(4, Duration::from_secs(10)),
        "gap windows not replayed: {} applied",
        bridge.windows_applied()
    );
    assert_eq!(bridge.last_applied(), Some(4 * MIN_US));
    assert_eq!(bridge.reconnects(), 1);
    assert_eq!(metric(&producer, "fed.resubscribes"), 1);
    assert_eq!(metric(&producer, "fed.replayed_windows"), 2);
    assert!(metric(&producer, "fed.replayed_rows") > 0);

    // Phase 4: the link is live again; the flush heartbeat's empty
    // window crosses it and the merged output converges byte-for-byte
    // with the uncrashed reference.
    producer.heartbeat("hits", 5 * MIN_US).unwrap();
    assert!(bridge.wait_for_windows(5, Duration::from_secs(10)));
    let got = drain_merged(&consumer, merged, reference.len(), Duration::from_secs(10));
    assert_eq!(
        got, reference,
        "post-recovery output diverged from uncrashed reference"
    );
    assert_eq!(bridge.apply_errors(), 0);

    bridge.shutdown();
    server.shutdown();
}
