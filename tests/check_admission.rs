//! End-to-end Level-1 admission checks (`streamrel-check` wired into the
//! engine).
//!
//! Table-driven: every rejection rule is exercised through the public SQL
//! surface, each paired with an accepted *near-miss* — a query differing
//! only in the property the rule checks — so the tests pin down rule
//! boundaries, not just rule existence.

use streamrel::types::Value;
use streamrel::{Db, DbOptions, ExecResult};

const DDL_STREAM: &str = "CREATE STREAM hits (url text, atime timestamp CQTIME USER)";
const DDL_TABLE: &str = "CREATE TABLE sites (url text, owner text)";

fn db() -> Db {
    let db = Db::in_memory(DbOptions::default());
    db.execute(DDL_STREAM).unwrap();
    db.execute(DDL_TABLE).unwrap();
    db
}

/// (rule id, rejected query, accepted near-miss).
const CASES: &[(&str, &str, &str)] = &[
    (
        "unbounded-stream",
        "SELECT * FROM hits",
        "SELECT * FROM hits <VISIBLE 100 ROWS ADVANCE 100 ROWS>",
    ),
    (
        "unbounded-join",
        "SELECT h.url FROM hits h JOIN sites s ON h.url = s.url",
        "SELECT h.url FROM hits <VISIBLE '5 minutes' ADVANCE '1 minute'> h \
         JOIN sites s ON h.url = s.url",
    ),
    (
        "unbounded-aggregate",
        "SELECT url, count(*) c FROM hits GROUP BY url",
        "SELECT url, count(*) c FROM hits <TUMBLING '1 minute'> GROUP BY url",
    ),
    (
        "advance-exceeds-visible",
        "SELECT count(*) c FROM hits <VISIBLE '1 minute' ADVANCE '5 minutes'>",
        "SELECT count(*) c FROM hits <VISIBLE '5 minutes' ADVANCE '1 minute'>",
    ),
    (
        "advance-exceeds-visible",
        "SELECT count(*) c FROM hits <VISIBLE 10 ROWS ADVANCE 20 ROWS>",
        "SELECT count(*) c FROM hits <VISIBLE 20 ROWS ADVANCE 10 ROWS>",
    ),
];

#[test]
fn every_rejection_rule_fires_and_its_near_miss_is_admitted() {
    for (rule, bad, good) in CASES {
        let db = db();
        let err = db
            .execute(bad)
            .expect_err(&format!("{bad:?} should be rejected"))
            .to_string();
        assert!(
            err.contains(&format!("check error [{rule}]")),
            "{bad:?}: expected rule {rule}, got: {err}"
        );
        assert!(err.contains("hint:"), "{bad:?}: no fix hint in: {err}");
        // A rejected plan leaves no standing state behind.
        assert_eq!(db.stats().live_subs, 0, "{bad:?} leaked a subscription");
        match db.execute(good) {
            Ok(ExecResult::Subscribed(_)) => {}
            other => panic!("{good:?}: expected subscription, got {other:?}"),
        }
    }
}

#[test]
fn create_derived_stream_is_gated_too() {
    let db = db();
    let err = db
        .execute("CREATE STREAM hot AS SELECT url, count(*) c FROM hits GROUP BY url")
        .unwrap_err()
        .to_string();
    assert!(err.contains("check error [unbounded-aggregate]"), "{err}");
    // The near-miss registers a derived stream.
    db.execute(
        "CREATE STREAM hot AS SELECT url, count(*) c, cq_close(*) w \
         FROM hits <TUMBLING '1 minute'> GROUP BY url",
    )
    .unwrap();
}

#[test]
fn rejections_and_warnings_are_counted() {
    let db = db();
    db.execute("SELECT * FROM hits").unwrap_err();
    db.execute("SELECT * FROM hits").unwrap_err();
    let rel = db
        .execute("SELECT value FROM streamrel_metrics WHERE name = 'check.rejected'")
        .unwrap()
        .rows();
    assert_eq!(rel.rows()[0][0].as_int().unwrap(), 2);
    // An unaligned window admits with a warning.
    db.execute("SELECT count(*) c FROM hits <VISIBLE '5 minutes' ADVANCE '2 minutes'>")
        .unwrap();
    let rel = db
        .execute("SELECT value FROM streamrel_metrics WHERE name = 'check.warned'")
        .unwrap()
        .rows();
    assert!(rel.rows()[0][0].as_int().unwrap() >= 1);
}

#[test]
fn shared_grid_mismatch_warns_but_admits() {
    let db = db();
    // First CQ establishes a 4-minute slice grid and folds real data.
    db.execute("SELECT url, count(*) c FROM hits <TUMBLING '4 minutes'> GROUP BY url")
        .unwrap();
    db.ingest("hits", vec![Value::text("/a"), Value::Timestamp(1)])
        .unwrap();
    // Same shape, 6-minute grid: gcd 6 min does not divide 4 min.
    let rel = db
        .execute(
            "EXPLAIN CHECK SELECT url, count(*) c FROM hits \
             <TUMBLING '6 minutes'> GROUP BY url",
        )
        .unwrap()
        .rows();
    let report: Vec<String> = rel.rows().iter().map(|r| format!("{:?}", r)).collect();
    assert!(
        report.iter().any(|r| r.contains("shared-grid-mismatch")),
        "no shared-grid-mismatch in {report:#?}"
    );
    // It is a warning, not a rejection: registration succeeds.
    db.execute("SELECT url, count(*) c FROM hits <TUMBLING '6 minutes'> GROUP BY url")
        .unwrap();
}

#[test]
fn explain_check_reports_without_registering() {
    let db = db();
    let rel = db
        .execute("EXPLAIN CHECK SELECT * FROM hits")
        .unwrap()
        .rows();
    let cols: Vec<&str> = rel
        .schema()
        .columns()
        .iter()
        .map(|c| c.name.as_str())
        .collect();
    assert_eq!(cols, ["kind", "rule", "detail", "hint", "path"]);
    let dump = format!("{:?}", rel.rows());
    assert!(dump.contains("continuous query"), "{dump}");
    assert!(dump.contains("reject"), "{dump}");
    assert!(dump.contains("unbounded-stream"), "{dump}");
    assert!(dump.contains("state-bound"), "{dump}");
    // EXPLAIN CHECK never registers anything.
    assert_eq!(db.stats().live_subs, 0);

    // Snapshot queries get a clean bill.
    let rel = db
        .execute("EXPLAIN CHECK SELECT * FROM sites")
        .unwrap()
        .rows();
    let dump = format!("{:?}", rel.rows());
    assert!(dump.contains("snapshot query"), "{dump}");
    assert!(dump.contains("\"admit\""), "{dump}");
    assert!(dump.contains("no standing state"), "{dump}");
}

#[test]
fn non_monotonic_warning_surfaces_in_explain_check() {
    let db = db();
    let rel = db
        .execute(
            "EXPLAIN CHECK SELECT url FROM hits \
             <VISIBLE 100 ROWS ADVANCE 100 ROWS> ORDER BY url",
        )
        .unwrap()
        .rows();
    let dump = format!("{:?}", rel.rows());
    assert!(dump.contains("non-monotonic-op"), "{dump}");
    assert!(dump.contains("admit with 1 warning"), "{dump}");
}

// ---- cross-CQ state budget -------------------------------------------------

/// hits: url text (64) + atime timestamp (8) = 72 bytes/row.
fn budget_db(limit: u64) -> Db {
    let db = Db::in_memory(DbOptions::default().with_state_budget(limit));
    db.execute(DDL_STREAM).unwrap();
    db.execute(DDL_TABLE).unwrap();
    db
}

#[test]
fn state_budget_admits_until_exhausted_and_releases_on_teardown() {
    // Each CQ buffers 100 rows x 72 bytes = 7200 bytes; cap at two.
    let db = budget_db(15_000);
    let q = "SELECT count(*) c FROM hits <VISIBLE 100 ROWS ADVANCE 100 ROWS>";
    let first = match db.execute(q).unwrap() {
        ExecResult::Subscribed(s) => s,
        other => panic!("expected subscription, got {other:?}"),
    };
    db.execute(q).unwrap();
    // Third would need 21600 > 15000: rejected, with the budget counter bumped.
    let err = db.execute(q).unwrap_err().to_string();
    assert!(err.contains("check error [state-budget]"), "{err}");
    assert!(err.contains("15000"), "{err}");
    let rel = db
        .execute("SELECT value FROM streamrel_metrics WHERE name = 'check.budget_rejected'")
        .unwrap()
        .rows();
    assert_eq!(rel.rows()[0][0].as_int().unwrap(), 1);
    // Tearing one CQ down releases its share; the next admission fits.
    db.unsubscribe(first).unwrap();
    db.execute(q).unwrap();
}

#[test]
fn state_budget_rejects_arrival_rate_dependent_plans() {
    let capped = budget_db(1 << 30);
    // A time window cannot be byte-bounded: rejected under any budget.
    let err = capped
        .execute("SELECT count(*) c FROM hits <TUMBLING '1 minute'>")
        .unwrap_err()
        .to_string();
    assert!(err.contains("check error [state-budget]"), "{err}");
    assert!(err.contains("arrival rate"), "{err}");
    // Without a budget the same plan is admitted (pre-existing behavior).
    let free = db();
    free.execute("SELECT count(*) c FROM hits <TUMBLING '1 minute'>")
        .unwrap();
}

#[test]
fn dropped_derived_stream_releases_its_budget_share() {
    let db = budget_db(8_000);
    db.execute(
        "CREATE STREAM hot AS SELECT url, count(*) c, cq_close(*) w \
         FROM hits <VISIBLE 100 ROWS ADVANCE 100 ROWS> GROUP BY url",
    )
    .unwrap();
    // 7200 of 8000 charged: a second row-window CQ does not fit.
    let err = db
        .execute("SELECT count(*) c FROM hits <VISIBLE 100 ROWS ADVANCE 100 ROWS>")
        .unwrap_err()
        .to_string();
    assert!(err.contains("state-budget"), "{err}");
    db.execute("DROP STREAM hot").unwrap();
    db.execute("SELECT count(*) c FROM hits <VISIBLE 100 ROWS ADVANCE 100 ROWS>")
        .unwrap();
}

#[test]
fn explain_check_surfaces_budget_verdict_without_charging() {
    let db = budget_db(1_000);
    let rel = db
        .execute("EXPLAIN CHECK SELECT count(*) c FROM hits <VISIBLE 100 ROWS ADVANCE 100 ROWS>")
        .unwrap()
        .rows();
    let dump = format!("{:?}", rel.rows());
    assert!(dump.contains("state-budget"), "{dump}");
    assert!(dump.contains("7200"), "{dump}");
    // EXPLAIN CHECK never charges the ledger: a fitting CQ still admits.
    let db = budget_db(8_000);
    db.execute("EXPLAIN CHECK SELECT count(*) c FROM hits <VISIBLE 100 ROWS ADVANCE 100 ROWS>")
        .unwrap();
    db.execute("SELECT count(*) c FROM hits <VISIBLE 100 ROWS ADVANCE 100 ROWS>")
        .unwrap();
}
