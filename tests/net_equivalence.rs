//! Wire-layer equivalence and robustness.
//!
//! The protocol must be a transparent transport: results delivered to a
//! remote subscriber are byte-identical to what the same workload yields
//! from the embedded API. On top of that, the server has to survive
//! hostile input (malformed frames) and abrupt client death, reaping the
//! dead connection's subscriptions.

use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use streamrel::net::{wire, Client, Frame, FrameType, Server, ServerOptions};
use streamrel::types::Value;
use streamrel::{Db, DbOptions, ExecResult};

const DDL: &str = "CREATE STREAM events (v integer, etime timestamp CQTIME USER)";
const CQ: &str = "SELECT sum(v) total, cq_close(*) w FROM events <TUMBLING '1 minute'>";

const INGESTERS: usize = 4;
const SUBSCRIBERS: usize = 4;
const ROUNDS: i64 = 12; // 10s apart -> two one-minute windows

fn row(round: i64, client: i64) -> Vec<Value> {
    // All rows of one round share a timestamp, so any cross-client
    // interleaving within a round is a valid arrival order under zero
    // slack; a barrier keeps rounds themselves ordered.
    vec![
        Value::Int(round * 10 + client),
        Value::Timestamp(round * 10_000_000),
    ]
}

/// Canonical bytes for one window result: close time + codec-encoded
/// relation. "Byte-matching" means these are equal.
fn canonical(close: i64, relation: &streamrel::types::Relation) -> (i64, Vec<u8>) {
    (close, wire::encode_rows(relation))
}

/// The reference: same workload through the embedded API.
fn in_process_reference() -> Vec<(i64, Vec<u8>)> {
    let db = Db::in_memory(DbOptions::default());
    db.execute(DDL).unwrap();
    let sub = match db.execute(CQ).unwrap() {
        ExecResult::Subscribed(s) => s,
        other => panic!("expected subscription, got {other:?}"),
    };
    for r in 0..ROUNDS {
        for c in 0..INGESTERS as i64 {
            db.ingest("events", row(r, c)).unwrap();
        }
    }
    db.heartbeat("events", 120_000_000).unwrap();
    db.poll(sub)
        .unwrap()
        .iter()
        .map(|o| canonical(o.close, &o.relation))
        .collect()
}

#[test]
fn remote_subscribers_see_byte_identical_results() {
    let reference = in_process_reference();
    assert_eq!(reference.len(), 2, "workload closes two windows");

    let db = Arc::new(Db::in_memory(DbOptions::default()));
    let server = Server::serve(db.clone(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    let admin = Client::connect(addr).unwrap();
    admin.execute(DDL).unwrap();

    // M subscribers, registered before any data flows.
    let subscribers: Vec<Client> = (0..SUBSCRIBERS)
        .map(|_| Client::connect(addr).unwrap())
        .collect();
    let streams: Vec<_> = subscribers
        .iter()
        .map(|c| c.subscribe(CQ).unwrap())
        .collect();
    assert_eq!(db.stats().live_subs, SUBSCRIBERS as u64);

    // N concurrent ingest clients, one barrier'd round at a time.
    let barrier = Barrier::new(INGESTERS);
    std::thread::scope(|s| {
        for c in 0..INGESTERS as i64 {
            let barrier = &barrier;
            s.spawn(move || {
                let client = Client::connect(addr).unwrap();
                for r in 0..ROUNDS {
                    barrier.wait();
                    assert_eq!(client.ingest_batch("events", &[row(r, c)]).unwrap(), 1);
                    barrier.wait();
                }
                client.close().unwrap();
            });
        }
    });
    admin.heartbeat("events", 120_000_000).unwrap();

    // Every subscriber gets the pushed windows, byte-identical to the
    // embedded run — no polling anywhere on the client side.
    for stream in &streams {
        let mut got = Vec::new();
        while got.len() < reference.len() {
            let out = stream
                .next_timeout(Duration::from_secs(10))
                .expect("window result not pushed within 10s");
            got.push(canonical(out.close, &out.relation));
        }
        assert_eq!(got, reference);
    }

    let stats = db.stats();
    assert_eq!(stats.tuples_in, (ROUNDS as u64) * INGESTERS as u64);
    assert_eq!(stats.sub_drops, 0);
    drop(streams);
    drop(subscribers);
    drop(admin);
    server.shutdown();
}

#[test]
fn stats_frame_matches_embedded_metrics_schema() {
    let db = Arc::new(Db::in_memory(DbOptions::default()));
    let server = Server::serve(db.clone(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    let client = Client::connect(addr).unwrap();
    client.execute(DDL).unwrap();
    client.ingest_batch("events", &[row(0, 0)]).unwrap();

    let over_wire = client.stats().unwrap();
    let embedded = match db.execute("SELECT * FROM streamrel_metrics").unwrap() {
        ExecResult::Rows(rel) => rel,
        other => panic!("expected rows, got {other:?}"),
    };

    // Byte-identical schema: both sides run through the one relation
    // codec, so encoding schema-only relations must agree exactly.
    let schema_bytes = |rel: &streamrel::types::Relation| {
        wire::encode_rows(&streamrel::types::Relation::empty(rel.schema().clone()))
    };
    assert_eq!(
        schema_bytes(&over_wire),
        schema_bytes(&embedded),
        "wire Stats schema differs from embedded SELECT"
    );

    // The wire snapshot is live engine state: the ingest above is
    // visible, and the serving connection counts itself.
    let value_of = |rel: &streamrel::types::Relation, name: &str| -> Option<Value> {
        rel.rows()
            .iter()
            .find(|r| r[0] == Value::text(name))
            .map(|r| r[2].clone())
    };
    assert_eq!(value_of(&over_wire, "db.tuples_in"), Some(Value::Int(1)));
    match value_of(&over_wire, "net.connections") {
        Some(Value::Int(n)) if n >= 1 => {}
        other => panic!("net.connections should count this client, got {other:?}"),
    }

    client.close().unwrap();
    server.shutdown();

    // Per-connection instruments are reaped with their connections.
    assert!(
        !db.metrics_relation()
            .rows()
            .iter()
            .any(|r| matches!(&r[0], Value::Text(t) if t.starts_with("net.conn."))),
        "per-connection counters must not outlive the connection"
    );
}

#[test]
fn malformed_frame_gets_error_and_server_survives() {
    let db = Arc::new(Db::in_memory(DbOptions::default()));
    let server = Server::serve(db.clone(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    // Hand-roll a frame with a bogus protocol version byte.
    use std::io::Write;
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(&[2, 0, 0, 0, 99, 1]).unwrap();
    let reply = Frame::read_from(&mut raw).unwrap().expect("error frame");
    assert_eq!(reply.ty, FrameType::Error);
    let msg = wire::decode_error(&reply.payload).unwrap();
    assert!(
        msg.contains("version"),
        "diagnostic names the problem: {msg}"
    );
    // The server hangs up on protocol corruption…
    assert!(Frame::read_from(&mut raw).unwrap().is_none());
    drop(raw);

    // …but keeps serving well-formed clients.
    let client = Client::connect(addr).unwrap();
    let rel = client.execute("SELECT 1 one").unwrap();
    assert_eq!(rel.rows(), [vec![Value::Int(1)]]);

    // SQL errors, by contrast, are replies — the connection stays up.
    assert!(client.execute("SELEKT nope").is_err());
    let rel = client.execute("SELECT 2 two").unwrap();
    assert_eq!(rel.rows(), [vec![Value::Int(2)]]);
    client.close().unwrap();
    server.shutdown();
}

#[test]
fn abrupt_disconnect_reaps_subscriptions() {
    let db = Arc::new(Db::in_memory(DbOptions::default()));
    let server = Server::serve(db.clone(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    let admin = Client::connect(addr).unwrap();
    admin.execute(DDL).unwrap();

    // Subscribe over a raw socket, then vanish without a Goodbye.
    let mut raw = TcpStream::connect(addr).unwrap();
    {
        use std::io::Write;
        Frame::new(FrameType::Query, wire::encode_query(CQ))
            .write_to(&mut raw)
            .unwrap();
        raw.flush().unwrap();
    }
    let reply = Frame::read_from(&mut raw).unwrap().unwrap();
    assert_eq!(reply.ty, FrameType::Subscribed);
    assert_eq!(db.stats().live_subs, 1);

    drop(raw); // abrupt: TCP RST/FIN with no protocol goodbye

    // The server notices EOF and unsubscribes the dead client.
    let deadline = Instant::now() + Duration::from_secs(5);
    while db.stats().live_subs != 0 {
        assert!(Instant::now() < deadline, "dead subscription never reaped");
        std::thread::sleep(Duration::from_millis(10));
    }

    // The engine no longer retains windows for it either: ingest and
    // close a window, and nothing queues anywhere.
    admin.ingest_batch("events", &[row(0, 0)]).unwrap();
    admin.heartbeat("events", 120_000_000).unwrap();
    assert_eq!(db.stats().live_subs, 0);
    admin.close().unwrap();
    server.shutdown();
}

#[test]
fn half_open_connection_is_reaped_on_read_timeout() {
    let db = Arc::new(Db::in_memory(DbOptions::default()));
    let opts = ServerOptions {
        read_timeout: Some(Duration::from_millis(100)),
        ..ServerOptions::default()
    };
    let server = Server::serve_with(db.clone(), "127.0.0.1:0", opts).unwrap();
    let addr = server.local_addr();

    // Connect, then go silent: no frames, no FIN — a half-open client.
    // Without a read deadline this would pin its connection thread in
    // request_loop forever.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    use std::io::Read;
    let mut buf = [0u8; 16];
    // The server must hang up (EOF) once the idle deadline expires.
    let n = raw.read(&mut buf).unwrap();
    assert_eq!(n, 0, "server should close the half-open connection");

    // The reap is observable in the metrics relation.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let reaped = db
            .metrics_relation()
            .rows()
            .iter()
            .find(|r| r[0] == Value::text("net.idle_reaped"))
            .map(|r| r[2].clone());
        if reaped == Some(Value::Int(1)) {
            break;
        }
        assert!(Instant::now() < deadline, "idle reap never counted");
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
}

#[test]
fn idle_subscriber_survives_read_timeout() {
    let db = Arc::new(Db::in_memory(DbOptions::default()));
    let opts = ServerOptions {
        read_timeout: Some(Duration::from_millis(100)),
        ..ServerOptions::default()
    };
    let server = Server::serve_with(db.clone(), "127.0.0.1:0", opts).unwrap();
    let addr = server.local_addr();

    let admin = Client::connect(addr).unwrap();
    admin.execute(DDL).unwrap();

    // A subscriber sends one frame, then sits silent far longer than the
    // idle deadline — exactly the shape of a push consumer mid-stream.
    let subscriber = Client::connect(addr).unwrap();
    let stream = subscriber.subscribe(CQ).unwrap();
    std::thread::sleep(Duration::from_millis(400));
    assert_eq!(
        db.stats().live_subs,
        1,
        "idle subscriber must not be reaped"
    );

    // The idle admin (no subscriptions) was half-open and got reaped;
    // drive the data from a fresh connection. The subscriber, by
    // contrast, still receives pushed windows after the silence.
    let feeder = Client::connect(addr).unwrap();
    feeder.ingest_batch("events", &[row(0, 0)]).unwrap();
    feeder.heartbeat("events", 120_000_000).unwrap();
    let out = stream
        .next_timeout(Duration::from_secs(10))
        .expect("window result pushed to idle subscriber");
    assert_eq!(out.close, 60_000_000);

    drop(stream);
    subscriber.close().unwrap();
    feeder.close().unwrap();
    drop(admin); // already hung up server-side
    server.shutdown();
}

#[test]
fn check_rejection_is_byte_identical_embedded_and_remote() {
    // A plan the Level-1 admission check refuses must come back as a
    // structured error frame carrying the same message the embedded API
    // produces — never a dropped connection. One case per rule family.
    let bad = [
        "SELECT v FROM events",        // unbounded-stream
        "SELECT sum(v) s FROM events", // unbounded-aggregate
        "SELECT count(*) c FROM events <VISIBLE '1 minute' ADVANCE '5 minutes'>",
    ];

    let embedded = Db::in_memory(DbOptions::default());
    embedded.execute(DDL).unwrap();

    let db = Arc::new(Db::in_memory(DbOptions::default()));
    let server = Server::serve(db.clone(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let client = Client::connect(addr).unwrap();
    client.execute(DDL).unwrap();

    for sql in bad {
        let local = embedded.execute(sql).unwrap_err().to_string();
        assert!(local.starts_with("check error ["), "{sql}: {local}");
        let remote = match client.execute(sql) {
            Err(streamrel::net::NetError::Remote(msg)) => msg,
            other => panic!("{sql}: expected remote error frame, got {other:?}"),
        };
        assert_eq!(local, remote, "{sql}: embedded and remote messages differ");
    }

    // The connection survived all three rejections.
    client.execute("SELECT 1").unwrap();
    client.close().unwrap();
    server.shutdown();
}

#[test]
fn explain_check_report_is_byte_identical_embedded_and_remote() {
    // `EXPLAIN CHECK` output is an ordinary relation (kind, rule,
    // detail, hint, path): a remote client must receive exactly the
    // bytes the embedded API produces, including the `path` column's
    // IVM-vs-reeval verdict.
    let cases = [
        // Eligible grouped aggregate: lowered to delta processing.
        (
            "SELECT v, count(*) c FROM events \
             <VISIBLE '2 minutes' ADVANCE '1 minute'> GROUP BY v",
            "ivm",
        ),
        // ROWS window: re-evaluation, with an ivm-fallback info row.
        (
            "SELECT v FROM events <VISIBLE 10 ROWS ADVANCE 10 ROWS>",
            "reeval",
        ),
        // Snapshot query: no standing state, no path.
        ("SELECT 1 one", "-"),
    ];

    let embedded = Db::in_memory(DbOptions::default());
    embedded.execute(DDL).unwrap();

    let db = Arc::new(Db::in_memory(DbOptions::default()));
    let server = Server::serve(db.clone(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let client = Client::connect(addr).unwrap();
    client.execute(DDL).unwrap();

    for (sql, want_path) in cases {
        let explain = format!("EXPLAIN CHECK {sql}");
        let local = match embedded.execute(&explain).unwrap() {
            ExecResult::Rows(rel) => rel,
            other => panic!("{explain}: expected rows, got {other:?}"),
        };
        let remote = client.execute(&explain).unwrap();
        assert_eq!(
            wire::encode_rows(&local),
            wire::encode_rows(&remote),
            "{explain}: embedded and remote reports differ"
        );
        match remote.rows().first().and_then(|r| r.get(4)) {
            Some(Value::Text(p)) if p.as_ref() == want_path => {}
            other => panic!("{explain}: expected path {want_path}, got {other:?}"),
        }
        // EXPLAIN CHECK registers nothing on either side.
        assert_eq!(db.stats().live_subs, 0);
    }
    client.close().unwrap();
    server.shutdown();
}

/// A bridge pointed at a dead address keeps retrying with backoff and
/// attaches as soon as a listener appears — the serving node can come up
/// *after* its consumers, in any order.
#[test]
fn bridge_backs_off_until_server_appears() {
    use streamrel::net::{Bridge, BridgeOptions};

    // Reserve a port, then free it: nothing is listening there yet.
    let port = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().port()
    };
    let addr = format!("127.0.0.1:{port}");

    let consumer = Arc::new(Db::in_memory(DbOptions::default()));
    consumer
        .execute("CREATE STREAM partials (v integer, ptime timestamp CQTIME USER)")
        .unwrap();
    let merged = match consumer
        .execute("SELECT sum(v) total, cq_close(*) w FROM partials <TUMBLING '1 minute'>")
        .unwrap()
    {
        ExecResult::Subscribed(s) => s,
        other => panic!("expected subscription, got {other:?}"),
    };
    let opts = BridgeOptions {
        backoff_initial: Duration::from_millis(10),
        backoff_max: Duration::from_millis(100),
        poll: Duration::from_millis(20),
        ..BridgeOptions::default()
    };
    let bridge =
        Bridge::start(consumer.clone(), addr.clone(), "derived", "partials", opts).unwrap();

    // Long enough that backoff has hit its cap several times over.
    std::thread::sleep(Duration::from_millis(300));
    assert!(!bridge.is_up());
    assert_eq!(bridge.reconnects(), 0, "no link existed to re-establish");

    // The serving node appears late; the next retry attaches.
    let producer = Arc::new(Db::in_memory(DbOptions::default()));
    producer
        .execute("CREATE STREAM events (v integer, etime timestamp CQTIME USER)")
        .unwrap();
    producer
        .execute(
            "CREATE STREAM derived AS SELECT sum(v) v, cq_close(*) dtime \
             FROM events <TUMBLING '1 minute'>",
        )
        .unwrap();
    let server = Server::serve(producer.clone(), addr.as_str()).unwrap();
    assert!(
        bridge.wait_until_up(Duration::from_secs(10)),
        "bridge never attached"
    );
    // First successful attach is not a *re*connect.
    assert_eq!(bridge.reconnects(), 0);

    // And the link actually carries data end to end.
    producer
        .ingest("events", vec![Value::Int(7), Value::Timestamp(1_000_000)])
        .unwrap();
    producer.heartbeat("events", 120_000_000).unwrap();
    assert!(bridge.wait_for_windows(1, Duration::from_secs(10)));
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut outs = Vec::new();
    while outs.is_empty() {
        assert!(Instant::now() < deadline, "merged window never closed");
        outs = consumer.poll(merged).unwrap();
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(outs[0].relation.rows()[0][0], Value::Int(7));
    bridge.shutdown();
    server.shutdown();
}
