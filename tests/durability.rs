//! Crash/recovery integration tests: durable state via WAL, runtime state
//! via Active-Table watermarks (§4), exactly-once window archiving across
//! restarts, and checkpointing.

use std::path::PathBuf;

use streamrel::types::time::MINUTES;
use streamrel::types::Value;
use streamrel::{Db, DbOptions};

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "streamrel-it-durability-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn setup(db: &Db) {
    db.execute("CREATE STREAM s (k varchar(16), ts timestamp CQTIME USER)")
        .unwrap();
    db.execute("CREATE TABLE agg (k varchar(16), c bigint, w timestamp)")
        .unwrap();
    db.execute(
        "CREATE STREAM per_minute AS SELECT k, count(*) c, cq_close(*) w \
         FROM s <TUMBLING '1 minute'> GROUP BY k",
    )
    .unwrap();
    db.execute("CREATE CHANNEL ch FROM per_minute INTO agg APPEND")
        .unwrap();
    // Raw archive for in-flight window rebuild.
    db.execute("CREATE TABLE raw (k varchar(16), ts timestamp)")
        .unwrap();
    db.execute("CREATE CHANNEL raw_ch FROM s INTO raw APPEND")
        .unwrap();
}

fn tup(k: &str, ts: i64) -> Vec<Value> {
    vec![Value::text(k), Value::Timestamp(ts)]
}

#[test]
fn windows_archive_exactly_once_across_crashes() {
    let dir = tmpdir("exactly-once");
    {
        let db = Db::open(&dir, DbOptions::default()).unwrap();
        setup(&db);
        // Two complete windows plus a partial third.
        for m in 0..2i64 {
            db.ingest("s", tup("a", m * MINUTES + 1)).unwrap();
            db.ingest("s", tup("a", m * MINUTES + 2)).unwrap();
        }
        db.ingest("s", tup("a", 2 * MINUTES + 1)).unwrap(); // in-flight
        db.heartbeat("s", 2 * MINUTES).unwrap();
        // Crash without shutdown.
    }
    {
        let db = Db::open(&dir, DbOptions::default()).unwrap();
        // The two closed windows are archived exactly once.
        let rel = db
            .execute("SELECT count(*), sum(c) FROM agg")
            .unwrap()
            .rows();
        assert_eq!(rel.rows()[0], vec![Value::Int(2), Value::Int(4)]);
        // Continue: the in-flight tuple was lost from the window buffer
        // (runtime state), but its window has not closed; new traffic for
        // minute 3 closes window 3.
        db.ingest("s", tup("a", 2 * MINUTES + 30_000_000)).unwrap();
        db.heartbeat("s", 3 * MINUTES).unwrap();
        let rel = db.execute("SELECT count(*) FROM agg").unwrap().rows();
        assert_eq!(rel.rows()[0][0], Value::Int(3), "window 3 archived once");
        // No duplicates for windows 1-2:
        let rel = db
            .execute("SELECT w, count(*) n FROM agg GROUP BY w HAVING count(*) > 1")
            .unwrap()
            .rows();
        assert!(rel.is_empty(), "no window archived twice: {rel}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn in_flight_window_rebuilds_from_raw_archive() {
    // The paper's full §4 story: runtime state (the partial window) is
    // rebuilt from disk — here from the raw Active Table — instead of
    // operator checkpoints.
    let dir = tmpdir("inflight");
    {
        let db = Db::open(&dir, DbOptions::default()).unwrap();
        setup(&db);
        db.ingest("s", tup("a", 1)).unwrap();
        db.ingest("s", tup("a", 2)).unwrap();
        db.heartbeat("s", MINUTES).unwrap(); // window 1 archived
        db.ingest("s", tup("a", MINUTES + 1)).unwrap(); // in-flight
        db.ingest("s", tup("a", MINUTES + 2)).unwrap(); // in-flight
    }
    {
        let db = Db::open(&dir, DbOptions::default()).unwrap();
        // Rebuild runtime state: replay raw rows past the archive
        // watermark through the stream.
        let wm = streamrel::cq::recovery::archive_watermark(db.engine(), "agg", "w")
            .unwrap()
            .unwrap_or(i64::MIN);
        assert_eq!(wm, MINUTES);
        let replay =
            streamrel::cq::recovery::replay_rows_after(db.engine(), "raw", "ts", wm).unwrap();
        assert_eq!(replay.len(), 2, "the two in-flight tuples");
        // Feeding them back rebuilds the partial window... but they are
        // already in `raw`, so bypass the raw channel by re-ingesting and
        // then de-duplicating is wrong; instead drop + recreate the raw
        // channel around the replay. Simpler: the replay count itself is
        // the E7 metric; complete the window with fresh traffic.
        db.execute("DROP CHANNEL raw_ch").unwrap();
        for r in replay {
            db.ingest("s", r).unwrap();
        }
        db.execute("CREATE CHANNEL raw_ch FROM s INTO raw APPEND")
            .unwrap();
        db.heartbeat("s", 2 * MINUTES).unwrap();
        let rel = db
            .execute("SELECT c FROM agg WHERE w = 120000000")
            .unwrap()
            .rows();
        assert_eq!(
            rel.rows()[0][0],
            Value::Int(2),
            "window 2 includes the rebuilt in-flight tuples"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_shrinks_recovery_and_preserves_state() {
    let dir = tmpdir("checkpoint");
    {
        let db = Db::open(&dir, DbOptions::default()).unwrap();
        setup(&db);
        for m in 0..5i64 {
            for i in 0..20 {
                db.ingest("s", tup("a", m * MINUTES + i + 1)).unwrap();
            }
        }
        db.heartbeat("s", 5 * MINUTES).unwrap();
        db.engine().checkpoint().unwrap();
        // Post-checkpoint traffic.
        db.ingest("s", tup("a", 5 * MINUTES + 1)).unwrap();
        db.heartbeat("s", 6 * MINUTES).unwrap();
    }
    {
        let db = Db::open(&dir, DbOptions::default()).unwrap();
        let replayed = db.engine().stats().replayed;
        // Only post-checkpoint records replay (6th window: 1 raw insert +
        // watermark puts + agg insert + txn records — well under the 100+
        // from before the checkpoint).
        assert!(replayed < 60, "replayed {replayed} records");
        let rel = db
            .execute("SELECT count(*), sum(c) FROM agg")
            .unwrap()
            .rows();
        assert_eq!(rel.rows()[0], vec![Value::Int(6), Value::Int(101)]);
        let rel = db.execute("SELECT count(*) FROM raw").unwrap().rows();
        assert_eq!(rel.rows()[0][0], Value::Int(101));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ddl_objects_survive_restart() {
    let dir = tmpdir("ddl");
    {
        let db = Db::open(&dir, DbOptions::default()).unwrap();
        setup(&db);
        db.execute(
            "CREATE VIEW busy AS SELECT k, c FROM per_minute <SLICES 1 WINDOWS> WHERE c > 1",
        )
        .unwrap();
        db.execute("CREATE INDEX agg_by_k ON agg (k)").unwrap();
    }
    {
        let db = Db::open(&dir, DbOptions::default()).unwrap();
        // All objects usable after restart.
        db.ingest("s", tup("z", 1)).unwrap();
        db.ingest("s", tup("z", 2)).unwrap();
        let sub = db.execute("SELECT * FROM busy").unwrap().subscription();
        db.heartbeat("s", MINUTES).unwrap();
        let outs = db.poll(sub).unwrap();
        assert_eq!(outs.len(), 1);
        assert_eq!(
            outs[0].relation.rows()[0],
            vec![Value::text("z"), Value::Int(2)]
        );
        // Index survived (lookup path).
        let idx = db.engine().index_on("agg", "k");
        assert!(idx.is_some(), "index rebuilt on restart");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dropped_objects_stay_dropped_after_restart() {
    let dir = tmpdir("dropped");
    {
        let db = Db::open(&dir, DbOptions::default()).unwrap();
        setup(&db);
        db.execute("DROP CHANNEL ch").unwrap();
        db.execute("DROP STREAM per_minute").unwrap();
    }
    {
        let db = Db::open(&dir, DbOptions::default()).unwrap();
        let e = db.execute("DROP STREAM per_minute").unwrap_err();
        assert!(e.to_string().contains("does not exist"), "{e}");
        // Base stream is still there and usable.
        db.ingest("s", tup("a", 1)).unwrap();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replace_channel_resumes_via_kv_watermark() {
    // A REPLACE-mode Active Table holds only the latest window, so the
    // archive itself cannot give a resume point; the per-CQ watermark in
    // the engine catalog (WAL-logged) does.
    let dir = tmpdir("replace-wm");
    {
        let db = Db::open(&dir, DbOptions::default()).unwrap();
        db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
            .unwrap();
        db.execute("CREATE TABLE latest (total bigint, w timestamp)")
            .unwrap();
        db.execute(
            "CREATE STREAM agg AS SELECT sum(v) total, cq_close(*) w \
             FROM s <TUMBLING '1 minute'>",
        )
        .unwrap();
        db.execute("CREATE CHANNEL ch FROM agg INTO latest REPLACE")
            .unwrap();
        for m in 0..3i64 {
            db.ingest(
                "s",
                vec![Value::Int(m + 1), Value::Timestamp(m * MINUTES + 1)],
            )
            .unwrap();
        }
        db.heartbeat("s", 3 * MINUTES).unwrap();
        let rel = db.execute("SELECT total, w FROM latest").unwrap().rows();
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.rows()[0][0], Value::Int(3));
    }
    {
        let db = Db::open(&dir, DbOptions::default()).unwrap();
        // Latest window survived.
        let rel = db.execute("SELECT total FROM latest").unwrap().rows();
        assert_eq!(rel.rows()[0][0], Value::Int(3));
        // The CQ resumed past window 3: new data for window 4 replaces it
        // exactly once, with no re-emission of windows 1-3.
        let before = db.stats().windows_out;
        db.ingest("s", vec![Value::Int(9), Value::Timestamp(3 * MINUTES + 1)])
            .unwrap();
        db.heartbeat("s", 4 * MINUTES).unwrap();
        assert_eq!(db.stats().windows_out - before, 1, "exactly one new window");
        let rel = db.execute("SELECT total, w FROM latest").unwrap().rows();
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.rows()[0][0], Value::Int(9));
        assert_eq!(rel.rows()[0][1], Value::Timestamp(4 * MINUTES));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wal_sync_modes_all_recover() {
    use streamrel::storage::SyncMode;
    for sync in [SyncMode::NoSync, SyncMode::Flush, SyncMode::Fsync] {
        let dir = tmpdir(&format!("sync-{sync:?}"));
        {
            let db = Db::open(&dir, DbOptions::default().with_sync(sync)).unwrap();
            db.execute("CREATE TABLE t (a integer)").unwrap();
            db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
            // Clean-ish shutdown: checkpoint makes even NoSync durable.
            db.engine().checkpoint().unwrap();
        }
        let db = Db::open(&dir, DbOptions::default()).unwrap();
        let rel = db.execute("SELECT sum(a) FROM t").unwrap().rows();
        assert_eq!(rel.rows()[0][0], Value::Int(3), "{sync:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
