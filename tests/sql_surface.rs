//! SQL surface conformance through the public API: the statement forms,
//! expression machinery, and error behaviour a user of the system touches.

use streamrel::types::{Relation, Value};
use streamrel::{Db, DbOptions, ExecResult};

fn db() -> Db {
    Db::in_memory(DbOptions::default())
}

fn rows(db: &Db, sql: &str) -> Relation {
    db.execute(sql).unwrap().rows()
}

fn seeded() -> Db {
    let db = db();
    db.execute(
        "CREATE TABLE emp (id integer, name varchar(32), dept varchar(16), \
         salary float, hired timestamp)",
    )
    .unwrap();
    db.execute(
        "INSERT INTO emp VALUES \
         (1, 'ada', 'eng', 120.0, '2020-01-15'), \
         (2, 'bob', 'eng', 95.5, '2021-06-01'), \
         (3, 'cyd', 'ops', 80.0, '2019-03-20'), \
         (4, 'dee', 'ops', 85.0, '2022-11-05'), \
         (5, 'eli', 'mkt', 70.0, '2023-02-14')",
    )
    .unwrap();
    db
}

#[test]
fn scalar_expressions() {
    let db = db();
    let r = rows(
        &db,
        "SELECT 1 + 2 * 3, 10 / 4, 10 % 3, -5, 2.5 * 2, 'a' || 'b' || 'c', \
         upper('x'), lower('Y'), length('héllo'), abs(-7), \
         coalesce(null, null, 42), nullif(1, 1), greatest(3, 9, 5), \
         least(3, 9, 5), substr('continuous', 1, 4), round(2.7), \
         floor(2.7), ceil(2.1)",
    );
    assert_eq!(
        r.rows()[0],
        vec![
            Value::Int(7),
            Value::Int(2),
            Value::Int(1),
            Value::Int(-5),
            Value::Float(5.0),
            Value::text("abc"),
            Value::text("X"),
            Value::text("y"),
            Value::Int(5),
            Value::Int(7),
            Value::Int(42),
            Value::Null,
            Value::Int(9),
            Value::Int(3),
            Value::text("cont"),
            Value::Float(3.0),
            Value::Float(2.0),
            Value::Float(3.0),
        ]
    );
}

#[test]
fn predicates_and_case() {
    let db = seeded();
    let r = rows(
        &db,
        "SELECT name FROM emp WHERE salary BETWEEN 80 AND 100 \
         AND dept IN ('eng', 'ops') AND name NOT LIKE 'c%' ORDER BY name",
    );
    assert_eq!(r.len(), 2); // bob, dee
    let r = rows(
        &db,
        "SELECT name, CASE WHEN salary >= 100 THEN 'high' \
         WHEN salary >= 80 THEN 'mid' ELSE 'low' END band \
         FROM emp ORDER BY id",
    );
    assert_eq!(r.rows()[0][1], Value::text("high"));
    assert_eq!(r.rows()[2][1], Value::text("mid"));
    assert_eq!(r.rows()[4][1], Value::text("low"));
}

#[test]
fn aggregates_and_grouping() {
    let db = seeded();
    let r = rows(
        &db,
        "SELECT dept, count(*) n, sum(salary) total, avg(salary) mean, \
         min(salary) lo, max(salary) hi FROM emp GROUP BY dept \
         HAVING count(*) >= 2 ORDER BY dept",
    );
    assert_eq!(r.len(), 2);
    assert_eq!(r.rows()[0][0], Value::text("eng"));
    assert_eq!(r.rows()[0][1], Value::Int(2));
    assert_eq!(r.rows()[0][2], Value::Float(215.5));
    assert_eq!(r.rows()[1][4], Value::Float(80.0));
    // count(distinct).
    let r = rows(&db, "SELECT count(distinct dept) FROM emp");
    assert_eq!(r.rows()[0][0], Value::Int(3));
}

#[test]
fn order_by_forms() {
    let db = seeded();
    // Alias, ordinal, hidden input column, expression over output.
    let by_alias = rows(
        &db,
        "SELECT name, salary s FROM emp ORDER BY s DESC LIMIT 1",
    );
    assert_eq!(by_alias.rows()[0][0], Value::text("ada"));
    let by_ordinal = rows(&db, "SELECT name, salary FROM emp ORDER BY 2 DESC LIMIT 1");
    assert_eq!(by_ordinal.rows()[0][0], Value::text("ada"));
    let hidden = rows(&db, "SELECT name FROM emp ORDER BY salary LIMIT 1");
    assert_eq!(hidden.rows()[0][0], Value::text("eli"));
    assert_eq!(hidden.schema().len(), 1, "hidden sort column stripped");
    let by_agg = rows(
        &db,
        "SELECT dept FROM emp GROUP BY dept ORDER BY sum(salary) DESC LIMIT 1",
    );
    assert_eq!(by_agg.rows()[0][0], Value::text("eng"));
}

#[test]
fn null_semantics() {
    let db = db();
    db.execute("CREATE TABLE t (a integer, b integer)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 10), (2, NULL), (NULL, 30)")
        .unwrap();
    // NULL never equals anything in WHERE.
    assert_eq!(rows(&db, "SELECT * FROM t WHERE a = NULL").len(), 0);
    assert_eq!(rows(&db, "SELECT * FROM t WHERE a IS NULL").len(), 1);
    assert_eq!(rows(&db, "SELECT * FROM t WHERE a IS NOT NULL").len(), 2);
    // Aggregates skip NULLs; count(*) does not.
    let r = rows(&db, "SELECT count(*), count(a), count(b), sum(b) FROM t");
    assert_eq!(
        r.rows()[0],
        vec![Value::Int(3), Value::Int(2), Value::Int(2), Value::Int(40)]
    );
    // GROUP BY puts NULLs in one group; NULL sorts last.
    let r = rows(&db, "SELECT a, count(*) FROM t GROUP BY a ORDER BY a");
    assert_eq!(r.len(), 3);
    assert!(r.rows()[2][0].is_null());
}

#[test]
fn joins_inner_left_self() {
    let db = seeded();
    db.execute("CREATE TABLE dept_info (dept varchar(16), floor integer)")
        .unwrap();
    db.execute("INSERT INTO dept_info VALUES ('eng', 3), ('ops', 1)")
        .unwrap();
    let inner = rows(
        &db,
        "SELECT e.name, d.floor FROM emp e JOIN dept_info d ON e.dept = d.dept \
         ORDER BY e.id",
    );
    assert_eq!(inner.len(), 4, "mkt has no dept_info row");
    let left = rows(
        &db,
        "SELECT e.name, d.floor FROM emp e LEFT JOIN dept_info d \
         ON e.dept = d.dept WHERE e.id = 5",
    );
    assert_eq!(left.rows()[0], vec![Value::text("eli"), Value::Null]);
    // Self join: colleagues in the same department.
    let pairs = rows(
        &db,
        "SELECT a.name, b.name FROM emp a JOIN emp b \
         ON a.dept = b.dept AND a.id < b.id ORDER BY a.id",
    );
    assert_eq!(pairs.len(), 2); // (ada,bob), (cyd,dee)
}

#[test]
fn comma_join_with_where_is_inner_join() {
    let db = seeded();
    db.execute("CREATE TABLE dept_info (dept varchar(16), floor integer)")
        .unwrap();
    db.execute("INSERT INTO dept_info VALUES ('eng', 3)")
        .unwrap();
    let r = rows(
        &db,
        "SELECT e.name FROM emp e, dept_info d \
         WHERE e.dept = d.dept AND d.floor = 3 ORDER BY e.name",
    );
    assert_eq!(r.len(), 2);
}

#[test]
fn subqueries_and_views() {
    let db = seeded();
    let r = rows(
        &db,
        "SELECT t.dept, t.total FROM \
         (SELECT dept, sum(salary) total FROM emp GROUP BY dept) t \
         WHERE t.total > 100 ORDER BY t.total DESC",
    );
    assert_eq!(r.len(), 2);
    db.execute("CREATE VIEW wealthy AS SELECT name, salary FROM emp WHERE salary > 90")
        .unwrap();
    let r = rows(&db, "SELECT count(*) FROM wealthy");
    assert_eq!(r.rows()[0][0], Value::Int(2));
    // Views compose.
    db.execute("CREATE VIEW wealthy_names AS SELECT name FROM wealthy")
        .unwrap();
    assert_eq!(rows(&db, "SELECT * FROM wealthy_names").len(), 2);
}

#[test]
fn distinct_forms() {
    let db = seeded();
    assert_eq!(rows(&db, "SELECT DISTINCT dept FROM emp").len(), 3);
    assert_eq!(
        rows(&db, "SELECT DISTINCT dept, dept FROM emp").len(),
        3,
        "duplicate output names allowed"
    );
}

#[test]
fn temporal_expressions() {
    let db = seeded();
    let r = rows(
        &db,
        "SELECT name FROM emp WHERE hired > '2021-01-01'::timestamp ORDER BY hired",
    );
    assert_eq!(r.len(), 3);
    let r = rows(&db, "SELECT max(hired) - min(hired) FROM emp");
    assert_eq!(
        r.rows()[0][0].data_type(),
        Some(streamrel::types::DataType::Interval)
    );
    let r = rows(&db, "SELECT timestamp '2020-01-15' + interval '1 week'");
    assert_eq!(
        r.rows()[0][0],
        Value::Timestamp(streamrel::types::parse_timestamp("2020-01-22").unwrap())
    );
}

#[test]
fn dml_roundtrip() {
    let db = seeded();
    assert!(matches!(
        db.execute("DELETE FROM emp WHERE dept = 'ops'").unwrap(),
        ExecResult::Deleted(2)
    ));
    assert_eq!(
        rows(&db, "SELECT count(*) FROM emp").rows()[0][0],
        Value::Int(3)
    );
    db.execute("TRUNCATE emp").unwrap();
    assert_eq!(
        rows(&db, "SELECT count(*) FROM emp").rows()[0][0],
        Value::Int(0)
    );
}

#[test]
fn error_quality() {
    let db = seeded();
    let cases: &[(&str, &str)] = &[
        ("SELECT nope FROM emp", "unknown column"),
        ("SELECT * FROM nope", "does not exist"),
        ("SELECT name + 1 FROM emp", "cannot be applied"),
        ("SELECT name, count(*) FROM emp", "GROUP BY"),
        ("SELECT sum(name) FROM emp", "non-numeric"),
        ("SELECT * FROM emp WHERE salary", "must be boolean"),
        ("SELECT cq_close(*) FROM emp", "cq_close"),
        (
            "SELECT * FROM emp <TUMBLING '1 minute'>",
            "not allowed on table",
        ),
        ("CREATE TABLE emp (a integer)", "already"),
    ];
    for (sql, needle) in cases {
        let err = db.execute(sql).unwrap_err().to_string();
        assert!(err.contains(needle), "{sql}: got `{err}`, want `{needle}`");
    }
}

#[test]
fn runtime_errors_surface() {
    let db = db();
    db.execute("CREATE TABLE t (a integer)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (0)").unwrap();
    let err = db.execute("SELECT 10 / a FROM t").unwrap_err();
    assert!(err.to_string().contains("division by zero"), "{err}");
}

#[test]
fn quoted_identifiers_and_case() {
    let db = db();
    db.execute(r#"CREATE TABLE "MixedCase" ("Col A" integer)"#)
        .unwrap();
    db.execute(r#"INSERT INTO "MixedCase" VALUES (1)"#).unwrap();
    // The catalog is case-insensitive throughout (a documented
    // simplification vs PostgreSQL's quoted-exact rule); quoting is for
    // names that are not lexable as identifiers (spaces, keywords).
    assert_eq!(rows(&db, "SELECT * FROM mixedcase").len(), 1);
    let r = rows(&db, r#"SELECT "Col A" FROM "MixedCase""#);
    assert_eq!(r.rows()[0][0], Value::Int(1));
    assert_eq!(r.schema().column(0).name, "Col A");
}

#[test]
fn row_count_windows_via_sql() {
    let db = db();
    db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
        .unwrap();
    let sub = db
        .execute("SELECT sum(v) s FROM s <VISIBLE 3 ROWS ADVANCE 3 ROWS>")
        .unwrap()
        .subscription();
    for i in 0..9i64 {
        db.ingest("s", vec![Value::Int(i), Value::Timestamp(i)])
            .unwrap();
    }
    let outs = db.poll(sub).unwrap();
    assert_eq!(outs.len(), 3);
    assert_eq!(outs[0].relation.rows()[0][0], Value::Int(3)); // 0+1+2
    assert_eq!(outs[2].relation.rows()[0][0], Value::Int(21)); // 6+7+8
}

#[test]
fn multi_statement_script() {
    let db = db();
    let results = db
        .execute_script(
            "-- a comment
             create table a (x integer);
             insert into a values (1);
             create table b (y integer);
             insert into b values (2);
             select a.x + b.y from a, b where true;",
        )
        .unwrap();
    match results.last().unwrap() {
        ExecResult::Rows(r) => assert_eq!(r.rows()[0][0], Value::Int(3)),
        other => panic!("{other:?}"),
    }
}

#[test]
fn explain_shows_plan_and_classification() {
    let db = seeded();
    let r = rows(&db, "EXPLAIN SELECT dept, count(*) FROM emp GROUP BY dept");
    let text: Vec<String> = r.rows().iter().map(|row| row[0].to_string()).collect();
    assert!(text[0].contains("Snapshot Query"), "{text:?}");
    assert!(text.iter().any(|l| l.contains("Aggregate")), "{text:?}");
    assert!(
        text.iter().any(|l| l.contains("TableScan(emp)")),
        "{text:?}"
    );

    db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
        .unwrap();
    let r = rows(&db, "EXPLAIN SELECT count(*) FROM s <TUMBLING '1 minute'>");
    assert!(r.rows()[0][0].to_string().contains("Continuous Query"));
}

#[test]
fn show_commands() {
    let db = seeded();
    db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
        .unwrap();
    db.execute("CREATE STREAM d AS SELECT count(*) c, cq_close(*) w FROM s <TUMBLING '1 minute'>")
        .unwrap();
    db.execute("CREATE TABLE sink (c bigint, w timestamp)")
        .unwrap();
    db.execute("CREATE CHANNEL ch FROM d INTO sink APPEND")
        .unwrap();
    db.execute("CREATE VIEW v AS SELECT name FROM emp").unwrap();

    let tables = rows(&db, "SHOW TABLES");
    assert!(tables.rows().iter().any(|r| r[0] == Value::text("emp")));
    assert!(tables.rows().iter().any(|r| r[0] == Value::text("sink")));

    let streams = rows(&db, "SHOW STREAMS");
    assert_eq!(streams.len(), 2);
    assert_eq!(
        streams.rows()[0],
        vec![
            Value::text("s"),
            Value::text("base"),
            Value::text("(v integer, ts timestamp not null)"),
        ]
    );
    assert_eq!(streams.rows()[1][1], Value::text("derived"));

    let views = rows(&db, "SHOW VIEWS");
    assert_eq!(views.len(), 1);

    let channels = rows(&db, "SHOW CHANNELS");
    assert_eq!(channels.rows()[0][2], Value::text("APPEND"));
}

#[test]
fn create_table_as() {
    let db = seeded();
    db.execute(
        "CREATE TABLE dept_summary AS \
         SELECT dept, count(*) n, sum(salary) total FROM emp GROUP BY dept",
    )
    .unwrap();
    let r = rows(&db, "SELECT * FROM dept_summary ORDER BY dept");
    assert_eq!(r.len(), 3);
    assert_eq!(r.schema().column(1).name, "n");
    // Continuous CTAS rejected with a pointer to the right tool.
    db.execute("CREATE STREAM s2 (v integer, ts timestamp CQTIME USER)")
        .unwrap();
    let e = db
        .execute("CREATE TABLE x AS SELECT count(*) FROM s2 <TUMBLING '1 minute'>")
        .unwrap_err();
    assert!(e.to_string().contains("CREATE STREAM"), "{e}");
}

#[test]
fn vacuum_and_checkpoint_statements() {
    let db = seeded();
    db.execute("DELETE FROM emp WHERE id <= 2").unwrap();
    match db.execute("VACUUM").unwrap() {
        ExecResult::Deleted(n) => assert_eq!(n, 2),
        other => panic!("{other:?}"),
    }
    // CHECKPOINT on an in-memory db errors cleanly.
    assert!(db.execute("CHECKPOINT").is_err());
}

#[test]
fn variance_and_stddev() {
    let db = db();
    db.execute("CREATE TABLE t (x float)").unwrap();
    db.execute("INSERT INTO t VALUES (2.0), (4.0), (4.0), (4.0), (5.0), (5.0), (7.0), (9.0)")
        .unwrap();
    let r = rows(&db, "SELECT variance(x), stddev(x) FROM t");
    let var = r.rows()[0][0].as_float().unwrap();
    let sd = r.rows()[0][1].as_float().unwrap();
    assert!((var - 32.0 / 7.0).abs() < 1e-9, "var {var}");
    assert!((sd - (32.0f64 / 7.0).sqrt()).abs() < 1e-9, "sd {sd}");
    // Fewer than 2 rows → NULL.
    let r = rows(&db, "SELECT stddev(x) FROM t WHERE x > 8");
    assert!(r.rows()[0][0].is_null());
}

#[test]
fn stddev_works_in_shared_cqs() {
    let db = db();
    db.execute("CREATE STREAM s (v float, ts timestamp CQTIME USER)")
        .unwrap();
    let sub = db
        .execute("SELECT stddev(v) sd FROM s <TUMBLING '1 minute'>")
        .unwrap()
        .subscription();
    for (i, v) in [1.0f64, 2.0, 3.0, 4.0].iter().enumerate() {
        db.ingest("s", vec![Value::Float(*v), Value::Timestamp(i as i64)])
            .unwrap();
    }
    db.heartbeat("s", 60_000_000).unwrap();
    let outs = db.poll(sub).unwrap();
    let sd = outs[0].relation.rows()[0][0].as_float().unwrap();
    let expect = (5.0f64 / 3.0).sqrt(); // sample stddev of 1..4
    assert!((sd - expect).abs() < 1e-9, "{sd} vs {expect}");
}

#[test]
fn create_and_drop_index() {
    let db = seeded();
    db.execute("CREATE INDEX emp_by_dept ON emp (dept)")
        .unwrap();
    assert!(db.engine().index_on("emp", "dept").is_some());
    db.execute("DROP INDEX emp_by_dept").unwrap();
    assert!(db.engine().index_on("emp", "dept").is_none());
    assert!(db.execute("DROP INDEX emp_by_dept").is_err());
    db.execute("DROP INDEX IF EXISTS emp_by_dept").unwrap();
}

#[test]
fn example_5_plan_shape_is_optimized() {
    // Regression guard for the E6 performance fix: the comma join with an
    // equi-condition in WHERE must plan as an inner Join (keys available
    // to hash/index join), not as a Filter over a cross product.
    let db = db();
    db.execute("CREATE STREAM url_stream (url varchar(100), atime timestamp CQTIME USER)")
        .unwrap();
    db.execute(
        "CREATE STREAM urls_now AS SELECT url, count(*) scnt, cq_close(*) stime \
         FROM url_stream <TUMBLING '1 minute'> GROUP BY url",
    )
    .unwrap();
    db.execute("CREATE TABLE urls_archive (url varchar(100), scnt integer, stime timestamp)")
        .unwrap();
    let plan = rows(
        &db,
        "EXPLAIN select c.scnt, h.scnt from \
         (select sum(scnt) as scnt, cq_close(*) as stime \
          from urls_now <slices 1 windows>) c, urls_archive h \
         where c.stime - '1 week'::interval = h.stime",
    );
    let text: Vec<String> = plan.rows().iter().map(|r| r[0].to_string()).collect();
    let joined = text.join("\n");
    assert!(joined.contains("Join(Inner)"), "{joined}");
    assert!(
        !joined.contains("Join(Cross)"),
        "WHERE must merge into the join: {joined}"
    );
    // The filter above the join is gone (merged), so the Join node sits
    // directly under the Project.
    let join_idx = text.iter().position(|l| l.contains("Join")).unwrap();
    assert!(
        !text[..join_idx].iter().any(|l| l.trim() == "Filter"),
        "no residual filter above the join: {joined}"
    );
}
