//! Whole-workspace lock-graph analysis and runtime lock witness.
//!
//! The static side is table-driven over in-memory fixtures fed to
//! `streamrel_check::lock_graph::analyze_files`: each rejected fixture
//! is paired with an accepted near-miss differing only in acquisition
//! order, so the tests pin rule boundaries. The runtime side is a
//! regression test deliberately inverting a pair from the generated
//! `LOCK_MUST_PRECEDE` table and asserting the witness panic names
//! *both* acquisition sites.

use std::panic::{catch_unwind, AssertUnwindSafe};

use streamrel_check::lock_graph::analyze_files;

fn fixture(files: &[(&str, &str)]) -> streamrel_check::lock_graph::LockGraphReport {
    let owned: Vec<(String, String)> = files
        .iter()
        .map(|(p, c)| (p.to_string(), c.to_string()))
        .collect();
    analyze_files(&owned)
}

/// (case, fixture files, expected rule — `None` means clean).
type Case = (
    &'static str,
    &'static [(&'static str, &'static str)],
    Option<&'static str>,
);

const CASES: &[Case] = &[
    (
        // Two files of one crate declare contradictory orders: the
        // declarations themselves conflict, before any code runs.
        "declared-cycle",
        &[
            ("crates/gamma/src/a.rs", "// lock-order: one < two\n"),
            ("crates/gamma/src/b.rs", "// lock-order: two < one\n"),
        ],
        Some("lock-cycle"),
    ),
    (
        // File B holds `blue` across a call into file A's helper,
        // which acquires `red` — against A's declared `red < blue`.
        // The cycle goes through an observed edge, so it is an
        // inversion (the code, not the declarations, is wrong).
        "cross-file-inversion",
        &[
            (
                "crates/alpha/src/a.rs",
                "// lock-order: red < blue\n\
                 pub fn grab_red_unique(red: &Lock) {\n\
                 \x20   red.lock().touch();\n\
                 }\n",
            ),
            (
                "crates/alpha/src/b.rs",
                "// lock-order: blue\n\
                 pub fn outer(blue: &Lock) {\n\
                 \x20   let g = blue.lock();\n\
                 \x20   grab_red_unique();\n\
                 \x20   drop(g);\n\
                 }\n",
            ),
        ],
        Some("lock-graph-inversion"),
    ),
    (
        // Near-miss of the inversion: the same two-file shape with the
        // acquisition order flipped to agree with the declaration.
        "cross-file-consistent",
        &[
            (
                "crates/alpha/src/a.rs",
                "// lock-order: red < blue\n\
                 pub fn grab_blue_unique(blue: &Lock) {\n\
                 \x20   blue.lock().touch();\n\
                 }\n",
            ),
            (
                "crates/alpha/src/b.rs",
                "// lock-order: red\n\
                 pub fn outer(red: &Lock) {\n\
                 \x20   let g = red.lock();\n\
                 \x20   grab_blue_unique();\n\
                 \x20   drop(g);\n\
                 }\n",
            ),
        ],
        None,
    ),
];

#[test]
fn every_graph_rule_fires_and_its_near_miss_is_clean() {
    for (case, files, expected) in CASES {
        let report = fixture(files);
        match expected {
            Some(rule) => {
                assert_eq!(
                    report.violations.len(),
                    1,
                    "{case}: expected one violation, got {:#?}",
                    report.violations
                );
                assert_eq!(report.violations[0].rule, *rule, "{case}");
                // A cyclic graph has no usable order to generate.
                assert!(report.order.is_empty(), "{case}: order on cyclic graph");
                assert!(report.must_precede.is_empty(), "{case}");
            }
            None => {
                assert!(
                    report.violations.is_empty(),
                    "{case}: unexpected {:#?}",
                    report.violations
                );
            }
        }
    }
}

#[test]
fn violation_messages_carry_qualified_names_and_provenance() {
    // The declared cycle names both qualified locks and the declaring file.
    let report = fixture(CASES[0].1);
    let msg = &report.violations[0].message;
    assert!(msg.contains("gamma.one"), "{msg}");
    assert!(msg.contains("gamma.two"), "{msg}");
    assert!(msg.contains("crates/gamma/src/"), "{msg}");

    // The inversion message distinguishes declared from observed hops
    // and points at the function that acquired against the order.
    let report = fixture(CASES[1].1);
    let msg = &report.violations[0].message;
    assert!(msg.contains("declared"), "{msg}");
    assert!(msg.contains("observed"), "{msg}");
    assert!(msg.contains("fn outer"), "{msg}");
}

#[test]
fn clean_graph_yields_topological_order_and_closure() {
    let report = fixture(CASES[2].1);
    assert_eq!(report.order, ["alpha.red", "alpha.blue"]);
    assert!(report
        .must_precede
        .contains(&("alpha.red".to_string(), "alpha.blue".to_string())));
    // Both renderers agree with the graph: the DOT output draws the
    // declared edge solid, and the generated table round-trips both
    // names through GLOBAL_LOCK_ORDER.
    let dot = report.to_dot();
    assert!(
        dot.contains("\"alpha.red\" -> \"alpha.blue\" [style=solid"),
        "{dot}"
    );
    let gen = report.to_gen_source();
    assert!(gen.contains("GLOBAL_LOCK_ORDER"), "{gen}");
    assert!(gen.contains("(\"alpha.red\", \"alpha.blue\")"), "{gen}");
}

/// Inverting a `LOCK_MUST_PRECEDE` pair at runtime panics with a message
/// naming both acquisition sites — the regression the witness exists to
/// catch. Uses the real generated table, so this also pins the contract
/// that `core.state < core.g` stays in the merged order.
#[test]
fn witness_panics_on_inverted_acquisition_naming_both_sites() {
    let table = streamrel_check::lock_graph_gen::LOCK_MUST_PRECEDE;
    assert!(
        table.contains(&("core.state", "core.g")),
        "generated order lost the state < g edge; pick another pair"
    );
    parking_lot::witness::install_order(table);
    parking_lot::witness::enable();

    let g = parking_lot::Mutex::named("core.g", ());
    let state = parking_lot::Mutex::named("core.state", ());

    // Correct order first: state then g is silent.
    {
        let _s = state.lock();
        let _g = g.lock();
    }

    // Inverted order: acquiring `state` while holding `g` must panic.
    let err = catch_unwind(AssertUnwindSafe(|| {
        let _held = g.lock();
        let _bad = state.lock();
    }))
    .expect_err("inverted acquisition must trip the witness");
    parking_lot::witness::disable();

    let msg = err
        .downcast_ref::<String>()
        .expect("witness panics with a formatted String")
        .clone();
    assert!(msg.contains("lock-order violation"), "{msg}");
    // Both sites are named: the acquiring site and the held site, each
    // as a file:line inside this test.
    assert!(
        msg.contains("acquiring `core.state` at tests/lock_graph.rs:"),
        "{msg}"
    );
    assert!(
        msg.contains("holding `core.g` acquired at tests/lock_graph.rs:"),
        "{msg}"
    );
    assert!(msg.contains("`core.state` < `core.g`"), "{msg}");
    // The panic tells the reader where the order comes from.
    assert!(msg.contains("lock_graph.gen.rs"), "{msg}");
}
