//! Fault-injection and crash-recovery integration tests (DESIGN.md §10).
//!
//! The heavy lifting lives in `streamrel_bench::torture`: seeded
//! workloads crashed at **every mutating I/O operation**, recovered from
//! the frozen disk image, and required to be byte-identical to an
//! uncrashed reference after re-driving. These tests pin the protocol
//! into the tier-1 suite at a size that stays fast in debug builds; the
//! `recovery_torture` binary (and the nightly CI lane) runs the same
//! sweeps at much higher iteration counts.

use std::collections::HashSet;
use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use proptest::test_runner::Config;
use streamrel::storage::wal::{replay_bytes, WalRecord};
use streamrel::storage::{Io, StorageEngine, SyncMode};
use streamrel::types::{Column, DataType, Error, Schema, Value};
use streamrel::{Db, DbOptions};
use streamrel_bench::torture::{
    checkpoint_reset_sweep, cq_sweep, engine_sweep, engine_sweep_with_logs,
};
use streamrel_faults::{FaultIo, FaultPlan};

// ---- crash-at-every-op sweeps ---------------------------------------------

/// The acceptance bar: one fixed seed, >= 200 crash points across the
/// storage and CQ sweeps, zero divergence.
#[test]
fn torture_sweep_proves_recovery_at_scale() {
    let e = engine_sweep(42, 80).unwrap();
    let c = cq_sweep(42, 25).unwrap();
    let points = e.crash_points + c.crash_points;
    assert!(points >= 200, "only {points} crash points exercised");
    let failures: Vec<String> = e
        .failures
        .iter()
        .chain(&c.failures)
        .map(|f| format!("seed={} op={}: {}", f.seed, f.op, f.detail))
        .collect();
    assert!(failures.is_empty(), "divergences:\n{}", failures.join("\n"));
}

/// The same proof over *multiple* WAL logs (DESIGN.md §13): inserts and
/// deletes are deliberately routed to different commit domains, so every
/// crash point also exercises the cross-log LSN-merge recovery cut, the
/// per-shard checkpoint epochs, and the stale-log discard.
#[test]
fn multilog_torture_sweep_proves_recovery_at_scale() {
    let m = engine_sweep_with_logs(42, 40, 3).unwrap();
    let ck = checkpoint_reset_sweep(42, 3).unwrap();
    let points = m.crash_points + ck.crash_points;
    assert!(points >= 100, "only {points} crash points exercised");
    let failures: Vec<String> = m
        .failures
        .iter()
        .chain(&ck.failures)
        .map(|f| format!("seed={} op={}: {}", f.seed, f.op, f.detail))
        .collect();
    assert!(failures.is_empty(), "divergences:\n{}", failures.join("\n"));
}

proptest! {
    #![proptest_config(Config::with_cases(5))]
    /// The same proof must hold for arbitrary seeds, i.e. arbitrary
    /// workload shapes, crash offsets and tear points — with one log and
    /// with several.
    #[test]
    fn torture_sweep_holds_for_random_seeds(seed in 0u64..u64::MAX / 2) {
        let e = engine_sweep(seed, 24).unwrap();
        prop_assert!(
            e.failures.is_empty(),
            "storage divergence: seed={} op={}: {}",
            e.failures[0].seed, e.failures[0].op, e.failures[0].detail
        );
        let m = engine_sweep_with_logs(seed, 16, 2 + (seed % 3) as usize).unwrap();
        prop_assert!(
            m.failures.is_empty(),
            "multilog divergence: seed={} op={}: {}",
            m.failures[0].seed, m.failures[0].op, m.failures[0].detail
        );
        let c = cq_sweep(seed, 8).unwrap();
        prop_assert!(
            c.failures.is_empty(),
            "cq divergence: seed={} op={}: {}",
            c.failures[0].seed, c.failures[0].op, c.failures[0].detail
        );
    }
}

// ---- fsyncgate: a failed fsync poisons the WAL ----------------------------

/// A failed `sync_commit` leaves durability indeterminate (the kernel
/// may have written any subset of the dirty pages and marked them
/// clean), so the WAL must refuse every subsequent write until the
/// engine is reopened and recovery re-establishes a known-good state.
#[test]
fn failed_fsync_poisons_the_wal_until_reopen() {
    // Sync #0 is the epoch stamp at open; sync #1 is the first
    // catalog_put's commit fsync.
    let io = FaultIo::new(FaultPlan::sync_error_at(7, 1));
    let dynio: Arc<dyn Io> = io.clone();
    let e = StorageEngine::open_with_io("/sim/db", SyncMode::Fsync, dynio).unwrap();
    assert!(!e.wal_poisoned());

    let err = e.catalog_put("k0", "v0").unwrap_err();
    assert!(
        matches!(&err, Error::Io(m) if m.contains("EIO")),
        "expected the injected EIO, got {err}"
    );
    assert!(e.wal_poisoned(), "failed fsync must poison the WAL");

    // Every later write is refused with the typed error...
    for op in 0..3 {
        let err = e.catalog_put(&format!("later{op}"), "v").unwrap_err();
        assert!(
            matches!(err, Error::WalPoisoned(_)),
            "op {op} after poisoning must fail WalPoisoned"
        );
    }
    // ...and the poisoning is visible in streamrel_metrics.
    let rel = e.metrics().to_relation();
    let poisoned = rel
        .rows()
        .iter()
        .find(|r| r.first() == Some(&Value::text("wal.poisoned")))
        .and_then(|r| r.get(2).cloned());
    assert_eq!(poisoned, Some(Value::Int(1)));
    let injected = rel
        .rows()
        .iter()
        .find(|r| r.first() == Some(&Value::text("fault.injected.sync_errors")))
        .and_then(|r| r.get(2).cloned());
    assert_eq!(injected, Some(Value::Int(1)));

    // Reopening over the surviving bytes recovers: the WAL is reset to a
    // consistent prefix and accepts writes again.
    let image = io.image();
    drop(e);
    let rio = FaultIo::from_image(&image, FaultPlan::none(0));
    let dynio: Arc<dyn Io> = rio.clone();
    let e = StorageEngine::open_with_io("/sim/db", SyncMode::Fsync, dynio).unwrap();
    assert!(!e.wal_poisoned());
    e.catalog_put("after", "recovery").unwrap();
    assert_eq!(e.catalog_get("after").as_deref(), Some("recovery"));
}

// ---- fsyncgate, per shard: poisoning is scoped to one commit domain -------

fn two_col_schema() -> Schema {
    Schema::new(vec![
        Column::not_null("k", DataType::Text),
        Column::new("v", DataType::Int),
    ])
    .unwrap()
}

/// A failed fsync on one commit domain's log poisons *that domain only*
/// (DESIGN.md §13): the healthy domain keeps committing, the poisoned
/// one rejects with a shard-scoped error until reopen, and the per-shard
/// gauges tell them apart. Reopen re-establishes every domain.
#[test]
fn poisoned_shard_rejects_while_healthy_shard_commits() {
    // Syncs #0/#1 are the two epoch stamps at open; #2 is the CREATE
    // TABLE DDL fsync (domain 0). The error is scheduled a little past
    // that and the domain-1 commit loop below walks into it.
    let io = FaultIo::new(FaultPlan::sync_error_at(7, 4));
    let dynio: Arc<dyn Io> = io.clone();
    let e = StorageEngine::open_with_opts("/sim/db", SyncMode::Fsync, dynio, 2).unwrap();
    let t = e.create_table("t", two_col_schema()).unwrap();

    let insert_on = |e: &StorageEngine, domain: usize, v: i64| {
        e.with_txn_on(domain, |x| {
            e.insert(x, t, vec![Value::text(format!("k{v}")), Value::Int(v)])
        })
    };

    // Commit on domain 1 until the injected EIO lands on wal-1.log.
    let mut acked_d1 = 0i64;
    let mut hit = None;
    for v in 0..8 {
        match insert_on(&e, 1, v) {
            Ok(_) => acked_d1 += 1,
            Err(err) => {
                hit = Some(err);
                break;
            }
        }
    }
    let err = hit.expect("the scheduled EIO never fired");
    assert!(
        matches!(&err, Error::Io(m) if m.contains("EIO")),
        "first failure surfaces the causal error, got {err}"
    );
    assert_eq!(e.wal_poisoned_shards(), vec![1], "only domain 1 poisoned");

    // The poisoned domain rejects with a shard-scoped typed error...
    let err = insert_on(&e, 1, 100).unwrap_err();
    assert!(
        matches!(&err, Error::WalPoisoned(m) if m.contains("shard 1")),
        "expected a shard-scoped WalPoisoned, got {err}"
    );
    // ...while the healthy domain keeps committing.
    for v in 200..203 {
        insert_on(&e, 0, v).unwrap();
    }

    // Gauges: global = count of poisoned domains; per-shard tells which.
    let rel = e.metrics().to_relation();
    let gauge = |name: &str| {
        rel.rows()
            .iter()
            .find(|r| r.first() == Some(&Value::text(name)))
            .and_then(|r| r.get(2).cloned())
    };
    assert_eq!(gauge("wal.poisoned"), Some(Value::Int(1)));
    assert_eq!(gauge("wal.poisoned.shard1"), Some(Value::Int(1)));
    assert_eq!(gauge("wal.poisoned.shard0"), Some(Value::Int(0)));

    // Reopen over the surviving bytes: both domains accept writes, the
    // gauges settle back to 0 per shard, and every acked commit (on
    // either domain) survived.
    let image = io.image();
    assert_eq!(
        image.files_matching("wal-").len(),
        2,
        "each commit domain owns its own wal-<k>.log"
    );
    drop(e);
    let rio = FaultIo::from_image(&image, FaultPlan::none(0));
    let dynio: Arc<dyn Io> = rio.clone();
    let e = StorageEngine::open_with_opts("/sim/db", SyncMode::Fsync, dynio, 2).unwrap();
    assert!(!e.wal_poisoned());
    assert!(e.wal_poisoned_shards().is_empty());
    let rel = e.metrics().to_relation();
    let settled = |name: &str| {
        rel.rows()
            .iter()
            .find(|r| r.first() == Some(&Value::text(name)))
            .and_then(|r| r.get(2).cloned())
    };
    assert_eq!(settled("wal.poisoned"), Some(Value::Int(0)));
    assert_eq!(settled("wal.poisoned.shard0"), Some(Value::Int(0)));
    assert_eq!(settled("wal.poisoned.shard1"), Some(Value::Int(0)));

    let t = e.table_id("t").unwrap();
    let survivors = e.scan(t, &e.snapshot()).unwrap().len() as i64;
    assert!(
        survivors >= acked_d1 + 3,
        "acked commits lost: {survivors} < {}",
        acked_d1 + 3
    );
    e.with_txn_on(1, |x| {
        e.insert(x, t, vec![Value::text("post"), Value::Int(-1)])
    })
    .unwrap();
    e.with_txn_on(0, |x| {
        e.insert(x, t, vec![Value::text("post0"), Value::Int(-2)])
    })
    .unwrap();
}

// ---- group commit: conservation across a crash ----------------------------

/// Conservation across a crash with concurrent group-committed writers
/// on two domains: every transaction whose commit was *acknowledged*
/// (its `with_txn_on` returned Ok) survives recovery, and nothing
/// recovers that was never attempted. Swept over several crash points so
/// the crash lands before, between and after the two logs' fsyncs.
#[test]
fn group_commit_conservation_across_crash() {
    for crash_op in [6u64, 12, 20, 35, 60] {
        let io = FaultIo::new(FaultPlan::crash_at(0xACED, crash_op));
        let dynio: Arc<dyn Io> = io.clone();
        let acked: Arc<Mutex<HashSet<i64>>> = Arc::new(Mutex::new(HashSet::new()));
        if let Ok(e) = StorageEngine::open_with_opts("/sim/db", SyncMode::Fsync, dynio, 2) {
            let e = Arc::new(e);
            if let Ok(t) = e.create_table("t", two_col_schema()) {
                let threads: Vec<_> = (0..2i64)
                    .map(|d| {
                        let e = Arc::clone(&e);
                        let acked = Arc::clone(&acked);
                        std::thread::spawn(move || {
                            for j in 0..30i64 {
                                let v = d * 1000 + j;
                                let ok = e
                                    .with_txn_on(d as usize, |x| {
                                        e.insert(
                                            x,
                                            t,
                                            vec![Value::text(format!("k{v}")), Value::Int(v)],
                                        )
                                    })
                                    .is_ok();
                                if !ok {
                                    break;
                                }
                                acked.lock().unwrap().insert(v);
                            }
                        })
                    })
                    .collect();
                for th in threads {
                    th.join().unwrap();
                }
            }
        }
        let acked = Arc::try_unwrap(acked).unwrap().into_inner().unwrap();

        let image = io.frozen_image().unwrap();
        let rio = FaultIo::from_image(&image, FaultPlan::none(0));
        let dynio: Arc<dyn Io> = rio.clone();
        let e = StorageEngine::open_with_opts("/sim/db", SyncMode::Fsync, dynio, 2).unwrap();
        let recovered: Vec<i64> = match e.table_id("t") {
            Ok(t) => e
                .scan(t, &e.snapshot())
                .unwrap()
                .into_iter()
                .filter_map(|(_, r)| match r.get(1) {
                    Some(Value::Int(v)) => Some(*v),
                    _ => None,
                })
                .collect(),
            Err(_) => Vec::new(),
        };
        let recovered_set: HashSet<i64> = recovered.iter().copied().collect();
        assert_eq!(
            recovered.len(),
            recovered_set.len(),
            "crash op {crash_op}: replay duplicated a committed row"
        );
        for v in &acked {
            assert!(
                recovered_set.contains(v),
                "crash op {crash_op}: acked commit {v} lost"
            );
        }
        for v in &recovered_set {
            let attempted = (0..30).contains(v) || (1000..1030).contains(v);
            assert!(
                attempted,
                "crash op {crash_op}: recovered a row never written: {v}"
            );
        }
    }
}

// ---- disk full: a rejected append poisons the WAL -------------------------

/// `ENOSPC` on a WAL append means the log's in-memory offset no longer
/// matches the file: the WAL must poison itself with a typed error (not
/// panic, not silently retry) and a reopen over the surviving bytes must
/// recover every acknowledged commit.
#[test]
fn disk_full_append_poisons_the_wal_until_reopen() {
    let io = FaultIo::new(FaultPlan::disk_full_at(13, 2));
    let dynio: Arc<dyn Io> = io.clone();
    let e = StorageEngine::open_with_io("/sim/db", SyncMode::Fsync, dynio).unwrap();

    // Put keys until the injected ENOSPC hits one of them.
    let mut acked = Vec::new();
    let mut enospc = None;
    for i in 0..8 {
        let k = format!("k{i}");
        match e.catalog_put(&k, "v") {
            Ok(()) => acked.push(k),
            Err(err) => {
                enospc = Some(err);
                break;
            }
        }
    }
    let err = enospc.expect("the scheduled ENOSPC never fired");
    assert!(
        matches!(&err, Error::Io(m) if m.contains("ENOSPC")),
        "expected the injected ENOSPC, got {err}"
    );
    assert!(e.wal_poisoned(), "failed append must poison the WAL");
    let err = e.catalog_put("later", "v").unwrap_err();
    assert!(matches!(err, Error::WalPoisoned(_)), "got {err}");
    let rel = e.metrics().to_relation();
    let injected = rel
        .rows()
        .iter()
        .find(|r| r.first() == Some(&Value::text("fault.injected.disk_full")))
        .and_then(|r| r.get(2).cloned());
    assert_eq!(injected, Some(Value::Int(1)));

    // Reopen over the surviving bytes: every acknowledged put is durable
    // (Fsync mode) and the log accepts writes again.
    let image = io.image();
    drop(e);
    let rio = FaultIo::from_image(&image, FaultPlan::none(0));
    let dynio: Arc<dyn Io> = rio.clone();
    let e = StorageEngine::open_with_io("/sim/db", SyncMode::Fsync, dynio).unwrap();
    assert!(!e.wal_poisoned());
    for k in &acked {
        assert_eq!(e.catalog_get(k).as_deref(), Some("v"), "lost {k}");
    }
    e.catalog_put("after", "recovery").unwrap();
}

// ---- bad sector: corrupt reads at open surface typed errors ---------------

/// A latent bad sector under the WAL or checkpoint surfaces at the *next
/// open*, when recovery reads the file back. Whatever single bit flips,
/// open must either succeed (the CRC scan truncates at the break) or
/// return a typed error — never panic — and a successful open must leave
/// a working engine.
#[test]
fn corrupt_read_at_open_never_panics() {
    // Build a durable image with real content to corrupt.
    let io = FaultIo::new(FaultPlan::none(23));
    let dynio: Arc<dyn Io> = io.clone();
    let e = StorageEngine::open_with_io("/sim/db", SyncMode::Fsync, dynio).unwrap();
    for i in 0..6 {
        e.catalog_put(&format!("k{i}"), "v").unwrap();
    }
    e.checkpoint().unwrap();
    for i in 6..10 {
        e.catalog_put(&format!("k{i}"), "v").unwrap();
    }
    let image = io.image();
    drop(e);

    // Open reads the checkpoint then the WAL; sweep the bad sector over
    // the first few reads across many seeds (= many flip offsets).
    let mut opened = 0u32;
    let mut rejected = 0u32;
    for read_idx in 0..3u64 {
        for seed in 0..32u64 {
            let rio = FaultIo::from_image(&image, FaultPlan::corrupt_read_at(seed, read_idx));
            let dynio: Arc<dyn Io> = rio.clone();
            match StorageEngine::open_with_io("/sim/db", SyncMode::Fsync, dynio) {
                Ok(e) => {
                    // Recovery truncated at the break; the engine works.
                    e.catalog_put("post", "open").unwrap();
                    assert_eq!(e.catalog_get("post").as_deref(), Some("open"));
                    opened += 1;
                }
                Err(err) => {
                    // Typed rejection is acceptable; a panic is not.
                    assert!(
                        matches!(err, Error::Io(_) | Error::Storage(_)),
                        "untyped error from corrupt open: {err}"
                    );
                    rejected += 1;
                }
            }
        }
    }
    // The sweep must actually exercise both outcomes somewhere.
    assert!(opened > 0, "no corrupt open ever recovered");
    assert!(rejected > 0, "no corrupt open was ever detected");
}

// ---- torn tail: replay truncates at the first invalid frame ---------------

#[test]
fn wal_replay_truncates_at_torn_tail() {
    // On-disk framing, as `Wal::append` writes it: the CRC covers the
    // LSN *and* the payload, so a flipped LSN is rejected too.
    fn frame(lsn: u64, rec: &WalRecord) -> Vec<u8> {
        let payload = rec.encode();
        let mut body = Vec::with_capacity(8 + payload.len());
        body.extend(lsn.to_le_bytes());
        body.extend(payload);
        let mut out = Vec::with_capacity(body.len() + 8);
        out.extend(((body.len() - 8) as u32).to_le_bytes());
        out.extend(streamrel::storage::crc::crc32(&body).to_le_bytes());
        out.extend(body);
        out
    }

    let mut valid = Vec::new();
    valid.extend(frame(1, &WalRecord::Epoch { epoch: 1, shard: 0 }));
    valid.extend(frame(2, &WalRecord::Commit { xid: 9 }));
    let valid_len = valid.len() as u64;

    // A torn tail: the final record only partially reached the platter.
    let tail = frame(3, &WalRecord::Commit { xid: 10 });
    for cut in 1..tail.len() {
        let mut torn = valid.clone();
        torn.extend(&tail[..cut]);
        let (records, len) = replay_bytes(&torn);
        assert_eq!(records.len(), 2, "torn frame (cut {cut}) must not replay");
        assert_eq!(len, valid_len, "valid prefix ends before the tear");
        assert_eq!(records[1].0, 2, "intact records keep their LSNs");
    }

    // A bit flip inside the tail frame (in the LSN and in the payload):
    // CRC rejects it, replay keeps the intact prefix.
    for at in [valid.len() + 8, valid.len() + 16] {
        let mut flipped = valid.clone();
        flipped.extend(&tail);
        flipped[at] ^= 0x40;
        let (records, len) = replay_bytes(&flipped);
        assert_eq!(records.len(), 2, "CRC-invalid frame must not replay");
        assert_eq!(len, valid_len);
    }
}

/// End-to-end torn tail: crash mid-append with a bit flip in the torn
/// region, reopen, and the engine must come up on the intact prefix and
/// keep working.
#[test]
fn engine_reopens_over_a_torn_bit_flipped_tail() {
    for seed in 0..8u64 {
        let io = FaultIo::new(FaultPlan::crash_at(seed, 6).with_bit_flip());
        let dynio: Arc<dyn Io> = io.clone();
        let mut survived = Vec::new();
        if let Ok(e) = StorageEngine::open_with_io("/sim/db", SyncMode::Fsync, dynio) {
            for i in 0.. {
                if e.catalog_put(&format!("k{i}"), "v").is_err() {
                    break;
                }
                survived.push(format!("k{i}"));
            }
        }
        let image = io.frozen_image().unwrap();
        let rio = FaultIo::from_image(&image, FaultPlan::none(0));
        let dynio: Arc<dyn Io> = rio.clone();
        let e = StorageEngine::open_with_io("/sim/db", SyncMode::Fsync, dynio).unwrap();
        // Every acknowledged put is durable (Fsync mode) and readable.
        for k in &survived {
            assert_eq!(
                e.catalog_get(k).as_deref(),
                Some("v"),
                "seed {seed}: lost {k}"
            );
        }
        e.catalog_put("post", "crash").unwrap();
    }
}

// ---- observability: fault metrics in streamrel_metrics --------------------

/// `fault.injected.*` and `wal.poisoned` are first-class instruments:
/// they appear in the `streamrel_metrics` relation through the SQL
/// surface and are re-registered after a restart replaces the whole
/// metrics registry.
#[test]
fn fault_metrics_appear_and_survive_registry_restart() {
    let expected = [
        "fault.injected.crashes",
        "fault.injected.sync_errors",
        "fault.injected.short_writes",
        "fault.injected.disk_full",
        "fault.injected.corrupt_reads",
        "wal.poisoned",
    ];
    let names = |db: &Db| -> Vec<String> {
        let rel = db
            .execute("SELECT name FROM streamrel_metrics")
            .unwrap()
            .rows();
        rel.rows()
            .iter()
            .filter_map(|r| match r.first() {
                Some(Value::Text(s)) => Some(s.to_string()),
                _ => None,
            })
            .collect()
    };

    let io = FaultIo::new(FaultPlan::none(11));
    let dynio: Arc<dyn Io> = io.clone();
    let db = Db::open_with_io("/sim/db", DbOptions::default(), dynio).unwrap();
    db.execute("CREATE TABLE t (v bigint)").unwrap();
    let got = names(&db);
    for n in expected {
        assert!(
            got.iter().any(|g| g == n),
            "{n} missing from streamrel_metrics"
        );
    }
    drop(db);

    // Restart: Db::open_with_io builds a fresh Registry; binding the Io
    // and opening the WAL must re-register every fault instrument.
    let image = io.image();
    let rio = FaultIo::from_image(&image, FaultPlan::none(0));
    let dynio: Arc<dyn Io> = rio.clone();
    let db = Db::open_with_io("/sim/db", DbOptions::default(), dynio).unwrap();
    let got = names(&db);
    for n in expected {
        assert!(
            got.iter().any(|g| g == n),
            "{n} missing after registry restart"
        );
    }
}
