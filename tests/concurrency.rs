//! Concurrency: the Db is a shared-memory object — writers ingest and
//! update dimension tables while readers run snapshot queries, exactly
//! the mixed workload §2.3 promises ("a side benefit: real-time
//! processing for applications equipped to take advantage of it").

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use streamrel::types::Value;
use streamrel::{Db, DbOptions};

#[test]
fn concurrent_ingest_and_snapshot_queries() {
    let db = Arc::new(Db::in_memory(DbOptions::default()));
    db.execute("CREATE STREAM s (k varchar(8), ts timestamp CQTIME USER)")
        .unwrap();
    db.execute("CREATE TABLE agg (k varchar(8), c bigint, w timestamp)")
        .unwrap();
    db.execute(
        "CREATE STREAM per AS SELECT k, count(*) c, cq_close(*) w \
         FROM s <TUMBLING '1 second'> GROUP BY k",
    )
    .unwrap();
    db.execute("CREATE CHANNEL ch FROM per INTO agg APPEND")
        .unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let n_tuples = 20_000i64;

    std::thread::scope(|scope| {
        // One writer drives the stream (streams are single-writer by
        // design: CQTIME order is per-stream).
        let w_db = db.clone();
        let w_stop = stop.clone();
        scope.spawn(move || {
            for i in 0..n_tuples {
                w_db.ingest(
                    "s",
                    vec![
                        Value::text(format!("k{}", i % 5)),
                        Value::Timestamp(i * 1_000),
                    ],
                )
                .unwrap();
            }
            w_db.heartbeat("s", n_tuples * 1_000 + 1_000_000).unwrap();
            w_stop.store(true, Ordering::SeqCst);
        });

        // Readers hammer snapshot queries the whole time.
        for _ in 0..3 {
            let r_db = db.clone();
            let r_stop = stop.clone();
            scope.spawn(move || {
                let mut last_total = 0i64;
                while !r_stop.load(Ordering::SeqCst) {
                    let rel = r_db
                        .execute("SELECT coalesce(sum(c), 0) FROM agg")
                        .unwrap()
                        .rows();
                    let total = rel.rows()[0][0].as_int().unwrap();
                    // Monotone: committed window results never regress.
                    assert!(total >= last_total, "{total} < {last_total}");
                    last_total = total;
                }
            });
        }

        // A fourth thread updates an unrelated table concurrently.
        let t_db = db.clone();
        let t_stop = stop.clone();
        scope.spawn(move || {
            t_db.execute("CREATE TABLE scratch (x integer)").unwrap();
            let mut i = 0;
            while !t_stop.load(Ordering::SeqCst) {
                t_db.execute(&format!("INSERT INTO scratch VALUES ({i})"))
                    .unwrap();
                i += 1;
            }
        });
    });

    // All tuples accounted for exactly once.
    let rel = db.execute("SELECT sum(c) FROM agg").unwrap().rows();
    assert_eq!(rel.rows()[0][0], Value::Int(n_tuples));
}

#[test]
fn concurrent_subscribers_see_identical_streams() {
    let db = Arc::new(Db::in_memory(DbOptions::default()));
    db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
        .unwrap();
    let subs: Vec<_> = (0..4)
        .map(|_| {
            db.execute("SELECT sum(v) t FROM s <TUMBLING '1 second'>")
                .unwrap()
                .subscription()
        })
        .collect();
    for i in 0..5_000i64 {
        db.ingest("s", vec![Value::Int(1), Value::Timestamp(i * 1_000)])
            .unwrap();
    }
    db.heartbeat("s", 5_000_000).unwrap();
    // Poll from different threads; all must see the same window sequence.
    let results: Vec<Vec<(i64, i64)>> = std::thread::scope(|scope| {
        subs.iter()
            .map(|sub| {
                let db = db.clone();
                let sub = *sub;
                scope.spawn(move || {
                    db.poll(sub)
                        .unwrap()
                        .into_iter()
                        .map(|o| (o.close, o.relation.rows()[0][0].as_int().unwrap()))
                        .collect::<Vec<_>>()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    for r in &results[1..] {
        assert_eq!(r, &results[0]);
    }
    assert_eq!(results[0].len(), 5);
    assert_eq!(results[0][0].1, 1000);
}
