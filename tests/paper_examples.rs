//! End-to-end integration tests: the paper's Examples 1-5 driven through
//! the public umbrella API, with the outputs the paper describes.

use streamrel::types::time::{MINUTES, WEEKS};
use streamrel::types::{format_timestamp, Value};
use streamrel::{Db, DbOptions, ExecResult};

fn db_with_paper_objects() -> Db {
    let db = Db::in_memory(DbOptions::default());
    db.execute(
        "CREATE STREAM url_stream ( url varchar(1024), \
         atime timestamp CQTIME USER, client_ip varchar(50) )",
    )
    .unwrap();
    db.execute(
        "CREATE STREAM urls_now as SELECT url, count(*) as scnt, \
         cq_close(*) as stime FROM url_stream \
         <VISIBLE '5 minutes' ADVANCE '1 minute'> GROUP by url",
    )
    .unwrap();
    db.execute("CREATE TABLE urls_archive (url varchar(1024), scnt integer, stime timestamp)")
        .unwrap();
    db.execute("CREATE CHANNEL urls_channel FROM urls_now INTO urls_archive APPEND")
        .unwrap();
    db
}

fn click(db: &Db, url: &str, ts: i64) {
    db.ingest(
        "url_stream",
        vec![
            Value::text(url),
            Value::Timestamp(ts),
            Value::text("1.1.1.1"),
        ],
    )
    .unwrap();
}

#[test]
fn example_2_top_ten_urls() {
    let db = db_with_paper_objects();
    let sub = db
        .execute(
            "SELECT url, count(*) url_count \
             FROM url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'> \
             GROUP by url ORDER by url_count desc LIMIT 10",
        )
        .unwrap()
        .subscription();
    // 12 distinct URLs with distinct frequencies; only top 10 may appear.
    for i in 0..12i64 {
        for k in 0..=i {
            click(&db, &format!("/u{i}"), i * 1000 + k);
        }
    }
    db.heartbeat("url_stream", MINUTES).unwrap();
    let outs = db.poll(sub).unwrap();
    assert_eq!(outs.len(), 1);
    let rel = &outs[0].relation;
    assert_eq!(rel.len(), 10, "LIMIT 10 enforced");
    assert_eq!(rel.rows()[0], vec![Value::text("/u11"), Value::Int(12)]);
    assert_eq!(rel.rows()[9], vec![Value::text("/u2"), Value::Int(3)]);
}

#[test]
fn example_3_results_available_within_one_advance() {
    let db = db_with_paper_objects();
    // "the results produced by urls_now are always available within at
    // most one minute": a tuple at t triggers archive rows no later than
    // the next minute boundary.
    click(&db, "/x", 30 * 1_000_000);
    db.heartbeat("url_stream", MINUTES).unwrap();
    let rel = db.execute("SELECT stime FROM urls_archive").unwrap().rows();
    assert_eq!(rel.len(), 1);
    assert_eq!(rel.rows()[0][0], Value::Timestamp(MINUTES));
}

#[test]
fn example_3_disconnected_client_catches_up() {
    let db = db_with_paper_objects();
    // The derived stream runs always-on with no client attached...
    for m in 0..3i64 {
        click(&db, "/x", m * MINUTES + 1);
    }
    db.heartbeat("url_stream", 3 * MINUTES).unwrap();
    // ...a client "re-connects" by reading the Active Table.
    let rel = db
        .execute("SELECT count(*) FROM urls_archive")
        .unwrap()
        .rows();
    assert_eq!(rel.rows()[0][0], Value::Int(3));
}

#[test]
fn example_4_replace_mode() {
    let db = db_with_paper_objects();
    db.execute("CREATE TABLE urls_latest (url varchar(1024), scnt integer, stime timestamp)")
        .unwrap();
    db.execute("CREATE CHANNEL latest_ch FROM urls_now INTO urls_latest REPLACE")
        .unwrap();
    for m in 0..3i64 {
        click(&db, "/x", m * MINUTES + 1);
    }
    db.heartbeat("url_stream", 3 * MINUTES).unwrap();
    let append = db
        .execute("SELECT count(*) FROM urls_archive")
        .unwrap()
        .rows();
    let replace = db
        .execute("SELECT count(*) FROM urls_latest")
        .unwrap()
        .rows();
    assert_eq!(append.rows()[0][0], Value::Int(3), "append accumulates");
    assert_eq!(replace.rows()[0][0], Value::Int(1), "replace overwrites");
    let rel = db.execute("SELECT stime FROM urls_latest").unwrap().rows();
    assert_eq!(rel.rows()[0][0], Value::Timestamp(3 * MINUTES));
}

#[test]
fn example_5_week_over_week() {
    let db = db_with_paper_objects();
    let sub = db
        .execute(
            "select c.scnt, h.scnt, c.stime from \
             (select sum(scnt) as scnt, cq_close(*) as stime \
              from urls_now <slices 1 windows>) c, urls_archive h \
             where c.stime - '1 week'::interval = h.stime",
        )
        .unwrap()
        .subscription();
    // History: a summary row exactly one week before minute 2.
    db.execute(&format!(
        "INSERT INTO urls_archive VALUES ('WEEKLY', 7, '{}')",
        format_timestamp(2 * MINUTES - WEEKS)
    ))
    .unwrap();
    for m in 0..2i64 {
        click(&db, "/a", m * MINUTES + 1);
        click(&db, "/b", m * MINUTES + 2);
    }
    db.heartbeat("url_stream", 2 * MINUTES).unwrap();
    let outs = db.poll(sub).unwrap();
    assert_eq!(outs.len(), 2);
    assert!(
        outs[0].relation.is_empty(),
        "no history a week before minute 1"
    );
    let r = &outs[1].relation;
    assert_eq!(r.len(), 1);
    // Current window (5-minute visible) holds 4 clicks; history says 7.
    assert_eq!(r.rows()[0][0], Value::Int(4));
    assert_eq!(r.rows()[0][1], Value::Int(7));
    assert_eq!(r.rows()[0][2], Value::Timestamp(2 * MINUTES));
}

#[test]
fn jellybean_vs_jar_same_answer() {
    // §2.2: computing metrics as beans enter the jar must equal counting
    // the jar afterwards. Run both against identical data.
    let db = db_with_paper_objects();
    db.execute("CREATE TABLE raw_jar (url varchar(1024), atime timestamp, client_ip varchar(50))")
        .unwrap();
    db.execute("CREATE CHANNEL raw_ch FROM url_stream INTO raw_jar APPEND")
        .unwrap();
    let urls = ["/a", "/b", "/a", "/c", "/a", "/b"];
    for (i, u) in urls.iter().enumerate() {
        click(&db, u, i as i64 * 1000);
    }
    db.heartbeat("url_stream", MINUTES).unwrap();
    let jar = db
        .execute("SELECT url, count(*) c FROM raw_jar GROUP BY url ORDER BY url")
        .unwrap()
        .rows();
    let beans = db
        .execute("SELECT url, scnt FROM urls_archive ORDER BY url")
        .unwrap()
        .rows();
    assert_eq!(jar.rows(), beans.rows());
}

#[test]
fn figure_1_window_sequence() {
    // Figure 1: the window clause turns the stream into a sequence of
    // tables. Assert the sequence structure precisely.
    let db = Db::in_memory(DbOptions::default());
    db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
        .unwrap();
    let sub = db
        .execute("SELECT v FROM s <VISIBLE '2 minutes' ADVANCE '1 minute'>")
        .unwrap()
        .subscription();
    for (v, ts) in [
        (1i64, 10),
        (2, 30),
        (3, MINUTES + 10),
        (4, 2 * MINUTES + 10),
    ] {
        db.ingest("s", vec![Value::Int(v), Value::Timestamp(ts)])
            .unwrap();
    }
    db.heartbeat("s", 3 * MINUTES).unwrap();
    let outs = db.poll(sub).unwrap();
    let seq: Vec<Vec<i64>> = outs
        .iter()
        .map(|o| {
            o.relation
                .rows()
                .iter()
                .map(|r| r[0].as_int().unwrap())
                .collect()
        })
        .collect();
    assert_eq!(
        seq,
        vec![
            vec![1, 2],    // window closing 1min: [.. , 1min)
            vec![1, 2, 3], // closing 2min: last 2 minutes
            vec![3, 4],    // closing 3min
        ]
    );
}

#[test]
fn sq_and_cq_share_one_sql_surface() {
    // §2.3: "queries can be posed exclusively on relations, exclusively on
    // streams, or on a combination" — same statement text either returns
    // rows (SQ) or subscribes (CQ) based only on what it references.
    let db = db_with_paper_objects();
    let r = db.execute("SELECT 1 + 1").unwrap();
    assert!(matches!(r, ExecResult::Rows(_)));
    let r = db.execute("SELECT count(*) FROM urls_archive").unwrap();
    assert!(matches!(r, ExecResult::Rows(_)));
    let r = db
        .execute("SELECT count(*) FROM url_stream <TUMBLING '1 minute'>")
        .unwrap();
    assert!(matches!(r, ExecResult::Subscribed(_)));
}

#[test]
fn shared_cq_with_having_and_limit() {
    // The post-aggregation pipeline (HAVING, ORDER BY, LIMIT) runs
    // per-query even under shared slices; verify it behaves.
    let db = Db::in_memory(DbOptions::default());
    db.execute("CREATE STREAM s (k varchar(8), ts timestamp CQTIME USER)")
        .unwrap();
    let sub = db
        .execute(
            "SELECT k, count(*) c FROM s <TUMBLING '1 minute'> \
             GROUP BY k HAVING count(*) >= 3 ORDER BY c DESC LIMIT 2",
        )
        .unwrap()
        .subscription();
    // k0 x5, k1 x4, k2 x3, k3 x1.
    let mut ts = 0;
    for (k, n) in [("k0", 5), ("k1", 4), ("k2", 3), ("k3", 1)] {
        for _ in 0..n {
            ts += 1;
            db.ingest("s", vec![Value::text(k), Value::Timestamp(ts)])
                .unwrap();
        }
    }
    db.heartbeat("s", MINUTES).unwrap();
    let outs = db.poll(sub).unwrap();
    let rel = &outs[0].relation;
    assert_eq!(rel.len(), 2, "HAVING cut k3, LIMIT cut k2");
    assert_eq!(rel.rows()[0], vec![Value::text("k0"), Value::Int(5)]);
    assert_eq!(rel.rows()[1], vec![Value::text("k1"), Value::Int(4)]);
}

#[test]
fn slices_three_windows_via_sql() {
    let db = Db::in_memory(DbOptions::default());
    db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
        .unwrap();
    db.execute(
        "CREATE STREAM per_min AS SELECT sum(v) sv, cq_close(*) w \
         FROM s <TUMBLING '1 minute'>",
    )
    .unwrap();
    let sub = db
        .execute("SELECT sum(sv) total FROM per_min <SLICES 3 WINDOWS>")
        .unwrap()
        .subscription();
    for m in 0..5i64 {
        db.ingest(
            "s",
            vec![Value::Int(m + 1), Value::Timestamp(m * MINUTES + 1)],
        )
        .unwrap();
    }
    db.heartbeat("s", 5 * MINUTES).unwrap();
    let outs = db.poll(sub).unwrap();
    // Slices windows need 3 batches: first fires after minute 3.
    assert_eq!(outs.len(), 3);
    assert_eq!(outs[0].relation.rows()[0][0], Value::Int(1 + 2 + 3));
    assert_eq!(outs[2].relation.rows()[0][0], Value::Int(3 + 4 + 5));
}

#[test]
fn view_over_derived_stream() {
    let db = Db::in_memory(DbOptions::default());
    db.execute("CREATE STREAM s (k varchar(8), ts timestamp CQTIME USER)")
        .unwrap();
    db.execute(
        "CREATE STREAM per_min AS SELECT k, count(*) c, cq_close(*) w \
         FROM s <TUMBLING '1 minute'> GROUP BY k",
    )
    .unwrap();
    db.execute("CREATE VIEW hot AS SELECT k, c FROM per_min <SLICES 1 WINDOWS> WHERE c > 1")
        .unwrap();
    let sub = db.execute("SELECT * FROM hot").unwrap().subscription();
    for ts in [1i64, 2, 3] {
        db.ingest("s", vec![Value::text("a"), Value::Timestamp(ts)])
            .unwrap();
    }
    db.ingest("s", vec![Value::text("b"), Value::Timestamp(4)])
        .unwrap();
    db.heartbeat("s", MINUTES).unwrap();
    let outs = db.poll(sub).unwrap();
    assert_eq!(outs.len(), 1);
    assert_eq!(
        outs[0].relation.rows(),
        &[vec![Value::text("a"), Value::Int(3)]]
    );
}

#[test]
fn row_window_stream_without_cqtime() {
    // Row-count windows work on streams with no CQTIME column at all.
    let db = Db::in_memory(DbOptions::default());
    db.execute("CREATE STREAM s (v integer)").unwrap();
    let sub = db
        .execute("SELECT sum(v) FROM s <VISIBLE 2 ROWS ADVANCE 2 ROWS>")
        .unwrap()
        .subscription();
    for v in [1i64, 2, 3, 4] {
        db.ingest("s", vec![Value::Int(v)]).unwrap();
    }
    let outs = db.poll(sub).unwrap();
    assert_eq!(outs.len(), 2);
    assert_eq!(outs[0].relation.rows()[0][0], Value::Int(3));
    assert_eq!(outs[1].relation.rows()[0][0], Value::Int(7));
}
