#!/usr/bin/env bash
# Regenerate every experiment in EXPERIMENTS.md (F1, E1-E8).
# Usage: scripts/run_experiments.sh [SCALE]
set -euo pipefail
cd "$(dirname "$0")/.."
export SCALE="${1:-1}"
echo "== building (release) =="
cargo build --release -p streamrel-bench --bins
for exp in f1_window_sequence e1_netsec_speedup e2_growth_sweep e3_shared_cqs \
           e4_mv_staleness e5_minimr_vs_cq e6_historical_join e7_recovery \
           e8_latency_consistency; do
    echo
    echo "=============================================================="
    echo "== $exp (SCALE=$SCALE)"
    echo "=============================================================="
    "target/release/$exp"
done
