#!/usr/bin/env bash
# Bench regression gate: compare freshly-written BENCH_*.json files against
# the baselines committed at HEAD, with per-metric tolerance bands.
#
# Usage: scripts/bench_check.sh [BENCH_file.json ...]
#   (no arguments: every BENCH_*.json tracked at HEAD)
#
# Two kinds of checks:
#   * structural — proof-shaped fields that must hold exactly on any
#     machine: zero torture failures/divergences, row conservation,
#     fan-out delivery counts. A violation is a correctness regression.
#   * throughput — rates and speedup ratios compared against the
#     committed baseline. CI machines jitter, so the band is wide:
#     a fresh run must retain BENCH_CHECK_TOLERANCE (default 0.25) of
#     the baseline. The gate catches collapses, not noise.
#
# A fresh file carrying "skipped": true is an honest skip (the bench
# detected the host can't run it meaningfully, e.g. too few cores) and is
# exempt from throughput bands; its skip_reason is printed instead.
set -euo pipefail
cd "$(dirname "$0")/.."

TOL="${BENCH_CHECK_TOLERANCE:-0.25}"

if [ "$#" -gt 0 ]; then
    files=("$@")
else
    mapfile -t files < <(git ls-tree --name-only HEAD | grep '^BENCH_.*\.json$')
fi
if [ "${#files[@]}" -eq 0 ]; then
    echo "bench_check: no BENCH_*.json baselines tracked at HEAD" >&2
    exit 1
fi

fail=0
for f in "${files[@]}"; do
    if [ ! -f "$f" ]; then
        echo "FAIL $f: bench did not write a fresh result" >&2
        fail=1
        continue
    fi
    baseline=""
    if git cat-file -e "HEAD:$f" 2>/dev/null; then
        baseline="$(git show "HEAD:$f")"
    fi
    if ! BASELINE_JSON="$baseline" BENCH_TOL="$TOL" python3 - "$f" <<'PY'
import json, os, sys

path = sys.argv[1]
name = os.path.basename(path)
tol = float(os.environ["BENCH_TOL"])
fresh = json.load(open(path))
baseline_raw = os.environ.get("BASELINE_JSON", "")
baseline = json.loads(baseline_raw) if baseline_raw.strip() else None

problems = []

def need(field, want):
    got = fresh.get(field)
    if got != want:
        problems.append(f"{field} = {got!r}, want {want!r}")

# -- structural checks: exact on every machine -----------------------------
if name == "BENCH_recovery_torture.json":
    need("failures", 0)
elif name == "BENCH_federation_torture.json":
    need("divergences", 0)
elif name == "BENCH_federation.json":
    need("rows_conserved", True)
    need("apply_errors", 0)
    need("reconnects", 0)
elif name == "BENCH_fanout.json":
    for entry in fresh.get("sweep", []):
        want = entry["subs"] * fresh["windows"]
        if entry["windows_sent"] != want:
            problems.append(
                f"sweep subs={entry['subs']}: windows_sent "
                f"{entry['windows_sent']}, want {want}"
            )
elif name == "BENCH_ingest_parallel.json":
    need("durable", True)
elif name == "BENCH_ivm.json":
    if fresh.get("windows_closed", 0) <= 0:
        problems.append("windows_closed <= 0: the bench closed no windows")

# -- throughput bands: fresh must retain `tol` of the committed baseline ---
BANDS = {
    "BENCH_ivm.json": ["speedup", "close_speedup", "ivm_tps"],
    "BENCH_federation.json": ["live_windows_per_s", "replay_windows_per_s"],
    "BENCH_ingest_parallel.json": ["speedup"],
}
if fresh.get("skipped"):
    print(f"  skip {name}: {fresh.get('skip_reason', 'skipped by bench')}")
elif baseline is None:
    print(f"  note {name}: no committed baseline yet, structural checks only")
elif baseline.get("skipped"):
    print(f"  note {name}: baseline was an honest skip, structural checks only")
else:
    for metric in BANDS.get(name, []):
        base = baseline.get(metric)
        got = fresh.get(metric)
        if base is None or got is None:
            continue
        floor = base * tol
        if got < floor:
            problems.append(
                f"{metric} = {got:.1f}, below {tol:.0%} of baseline "
                f"{base:.1f} (floor {floor:.1f})"
            )
        else:
            print(f"  ok   {name}: {metric} {got:.1f} vs baseline {base:.1f}")

if problems:
    for p in problems:
        print(f"FAIL {name}: {p}", file=sys.stderr)
    sys.exit(1)
print(f"  pass {name}")
PY
    then
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "bench_check: REGRESSION — see FAIL lines above" >&2
    exit 1
fi
echo "bench_check: all bench results within tolerance"
