#!/usr/bin/env bash
# Federation smoke: launch two real `streamrel-serve` processes on
# OS-assigned ports, run the partitioned quickstart (examples/federation)
# against them, and tear everything down. The quickstart asserts the
# 2-node partitioned result is byte-identical to the embedded
# single-node reference, so a pass here proves the whole chain —
# process spawn, `PORT=` handshake, wire DDL, partitioned ingest,
# bridge union merge — on a real multi-process deployment.
#
# Node logs land in target/federation-smoke/ (CI uploads them on
# failure).
set -euo pipefail
cd "$(dirname "$0")/.."

LOGDIR=target/federation-smoke
mkdir -p "$LOGDIR"
rm -f "$LOGDIR"/node1.log "$LOGDIR"/node2.log

cargo build --release --bin streamrel-serve --example federation

target/release/streamrel-serve --memory 127.0.0.1:0 >"$LOGDIR/node1.log" 2>&1 &
NODE1=$!
target/release/streamrel-serve --memory 127.0.0.1:0 >"$LOGDIR/node2.log" 2>&1 &
NODE2=$!
cleanup() {
    kill "$NODE1" "$NODE2" 2>/dev/null || true
    wait "$NODE1" "$NODE2" 2>/dev/null || true
}
trap cleanup EXIT

# Each node prints its OS-chosen port as a `PORT=<n>` line once bound.
port_of() {
    local log=$1 port=""
    for _ in $(seq 1 100); do
        port=$(grep -m1 '^PORT=' "$log" 2>/dev/null | cut -d= -f2 || true)
        [ -n "$port" ] && break
        sleep 0.1
    done
    if [ -z "$port" ]; then
        echo "federation_smoke: no PORT= line in $log" >&2
        return 1
    fi
    echo "$port"
}
P1=$(port_of "$LOGDIR/node1.log")
P2=$(port_of "$LOGDIR/node2.log")
echo "federation_smoke: node1 on :$P1, node2 on :$P2"

STREAMREL_NODE1="127.0.0.1:$P1" STREAMREL_NODE2="127.0.0.1:$P2" \
    timeout 120 cargo run --release --example federation

# Both nodes must still be serving after the run — a crashed node whose
# bridge already got the data would otherwise pass silently.
for pid in "$NODE1" "$NODE2"; do
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "federation_smoke: node (pid $pid) died during the run" >&2
        exit 1
    fi
done
echo "federation_smoke: PASS (clean teardown)"
