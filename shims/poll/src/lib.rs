//! Offline shim for the `polling` crate, backed by `poll(2)`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small readiness API the reactor in `streamrel-net`
//! actually uses: register file descriptors with an interest and a
//! `usize` key, block in [`Poller::wait`] until one becomes ready (or a
//! timeout elapses), and wake the waiter from any thread with
//! [`Poller::notify`]. The backend is plain POSIX `poll(2)` — level
//! triggered, no descriptor limit beyond the process's fd table, and
//! O(registered) per wait, which is the honest cost model for the
//! 10k-subscriber fan-out target (the syscall walks the array either
//! way; epoll would shave constants, not asymptotics, and `poll` is the
//! portable floor).
//!
//! `notify` is a self-pipe: a nonblocking `UnixStream` pair whose read
//! end participates in every wait. Writing one byte wakes the poller;
//! the byte is drained before `wait` returns so notifications never
//! accumulate. A full pipe means a wakeup is already pending, so a
//! `WouldBlock` on notify is success, not failure.

// lint: allow-unsafe(poll(2) has no std wrapper; the single unsafe
// block passes a stack-owned `&mut [PollFd]` straight to the syscall,
// which writes only `revents` within the slice it was given)

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::os::raw::{c_int, c_short, c_ulong};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::Mutex;
use std::time::Duration;

const POLLIN: c_short = 0x001;
const POLLOUT: c_short = 0x004;
const POLLERR: c_short = 0x008;
const POLLHUP: c_short = 0x010;
const POLLNVAL: c_short = 0x020;

/// `struct pollfd` from `<poll.h>`.
#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: c_int,
    events: c_short,
    revents: c_short,
}

#[allow(unsafe_code)]
mod sys {
    use super::{c_int, c_ulong, PollFd};

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    /// Safe wrapper: the syscall writes only the `revents` fields of the
    /// slice it is handed.
    pub(super) fn poll_fds(fds: &mut [PollFd], timeout_ms: c_int) -> c_int {
        // SAFETY: `fds` is a live, exclusively-borrowed slice; the kernel
        // reads `fd`/`events` and writes `revents` within its bounds.
        unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) }
    }
}

/// Readiness interest (registration) or readiness state (result).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen token identifying the registered source.
    pub key: usize,
    /// Interested in (or observed) read readiness.
    pub readable: bool,
    /// Interested in (or observed) write readiness.
    pub writable: bool,
}

impl Event {
    /// Read-readiness interest.
    pub fn readable(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Write-readiness interest.
    pub fn writable(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: true,
        }
    }

    /// Read + write interest.
    pub fn all(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }

    /// Registered but currently dormant (kept in the set, never ready).
    pub fn none(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: false,
        }
    }
}

/// Reusable buffer of ready events filled by [`Poller::wait`].
#[derive(Debug, Default)]
pub struct Events {
    ready: Vec<Event>,
}

impl Events {
    /// Empty buffer.
    pub fn new() -> Events {
        Events::default()
    }

    /// Iterate the events produced by the last `wait`.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.ready.iter().copied()
    }

    /// Number of ready events.
    pub fn len(&self) -> usize {
        self.ready.len()
    }

    /// True when the last `wait` produced nothing (timeout or notify).
    pub fn is_empty(&self) -> bool {
        self.ready.is_empty()
    }

    /// Drop all buffered events.
    pub fn clear(&mut self) {
        self.ready.clear();
    }
}

/// One fd's registration.
#[derive(Clone, Copy)]
struct Registration {
    key: usize,
    interest: c_short,
}

/// A `poll(2)`-backed readiness queue over registered file descriptors.
///
/// All methods take `&self`; the registration table sits behind a plain
/// `std` mutex (this shim underlies the lock-witnessed `parking_lot`
/// shim, so it must not depend on it). `wait` snapshots the table,
/// releases the lock, and blocks in the syscall — registrations changed
/// concurrently are observed on the next wait, which is the level-
/// triggered contract callers already live with.
pub struct Poller {
    fds: Mutex<HashMap<RawFd, Registration>>,
    /// Self-pipe read end; participates in every wait.
    wake_rx: UnixStream,
    /// Self-pipe write end; `notify` writes one byte here.
    wake_tx: UnixStream,
}

impl Poller {
    /// Create a poller (and its internal notify pipe).
    pub fn new() -> io::Result<Poller> {
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        Ok(Poller {
            fds: Mutex::new(HashMap::new()),
            wake_rx,
            wake_tx,
        })
    }

    /// Register `source` with `interest`. Re-adding an fd replaces its
    /// registration (same as `modify`).
    pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        self.install(source.as_raw_fd(), interest);
        Ok(())
    }

    /// Change an existing registration's interest/key.
    pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        self.install(source.as_raw_fd(), interest);
        Ok(())
    }

    /// Remove `source` from the set.
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        self.table().remove(&source.as_raw_fd());
        Ok(())
    }

    /// Block until at least one registered fd is ready, `timeout`
    /// elapses, or [`Poller::notify`] is called. Ready events are
    /// appended to `events` (cleared first); returns how many. A wake
    /// via `notify` or timeout returns `Ok(0)`.
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        let mut pollfds: Vec<PollFd> = Vec::new();
        let mut keys: Vec<usize> = Vec::new();
        pollfds.push(PollFd {
            fd: self.wake_rx.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        });
        keys.push(usize::MAX); // sentinel: the notify pipe
        for (&fd, reg) in self.table().iter() {
            pollfds.push(PollFd {
                fd,
                events: reg.interest,
                revents: 0,
            });
            keys.push(reg.key);
        }
        let timeout_ms: c_int = match timeout {
            // poll(2) rounds down; a sub-millisecond timeout must still
            // sleep, not spin, so round up.
            Some(t) => {
                t.as_millis().min(c_int::MAX as u128) as c_int
                    + c_int::from(t.subsec_micros() % 1_000 != 0)
            }
            None => -1,
        };
        loop {
            let n = sys::poll_fds(&mut pollfds, timeout_ms);
            if n >= 0 {
                break;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
        // Drain the notify pipe so edge-like wakeups never accumulate.
        if pollfds[0].revents != 0 {
            let mut sink = [0u8; 64];
            while matches!((&self.wake_rx).read(&mut sink), Ok(n) if n > 0) {}
        }
        for (pfd, &key) in pollfds.iter().zip(&keys).skip(1) {
            if pfd.revents == 0 {
                continue;
            }
            // ERR/HUP/NVAL surface as readable+writable so the owner
            // attempts I/O, observes the real error, and tears down.
            let broken = pfd.revents & (POLLERR | POLLHUP | POLLNVAL) != 0;
            events.ready.push(Event {
                key,
                readable: pfd.revents & POLLIN != 0 || broken,
                writable: pfd.revents & POLLOUT != 0 || broken,
            });
        }
        Ok(events.len())
    }

    /// Wake a concurrent (or the next) [`Poller::wait`] from any thread.
    pub fn notify(&self) -> io::Result<()> {
        match (&self.wake_tx).write(&[1]) {
            Ok(_) => Ok(()),
            // Pipe full: a wakeup is already pending.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn install(&self, fd: RawFd, interest: Event) {
        let mut events = 0;
        if interest.readable {
            events |= POLLIN;
        }
        if interest.writable {
            events |= POLLOUT;
        }
        self.table().insert(
            fd,
            Registration {
                key: interest.key,
                interest: events,
            },
        );
    }

    fn table(&self) -> std::sync::MutexGuard<'_, HashMap<RawFd, Registration>> {
        // Poison-free facade, matching the parking_lot shim's stance: a
        // panicked holder leaves the map consistent (single-step inserts
        // and removes only).
        match self.fds.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller")
            .field("registered", &self.table().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn write_makes_peer_readable() {
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(&b, Event::readable(7)).unwrap();
        let mut events = Events::new();
        // Nothing pending: a short wait times out empty.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
        a.write_all(b"x").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.key, 7);
        assert!(ev.readable);
    }

    #[test]
    fn writable_interest_and_modify() {
        let (a, _b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(&a, Event::writable(3)).unwrap();
        let mut events = Events::new();
        // An idle socket with buffer space is immediately writable.
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.key == 3 && e.writable));
        // Dormant registration: never ready.
        poller.modify(&a, Event::none(3)).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
        poller.delete(&a).unwrap();
    }

    #[test]
    fn notify_wakes_wait_from_another_thread() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let p2 = poller.clone();
        let waker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            p2.notify().unwrap();
        });
        let mut events = Events::new();
        let start = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert_eq!(n, 0, "notify produces no events, just a wakeup");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "woke via notify, not timeout"
        );
        waker.join().unwrap();
        // Notifications do not accumulate: the pipe was drained.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn closed_peer_reports_ready_for_teardown() {
        let (a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(&b, Event::readable(1)).unwrap();
        drop(a);
        let mut events = Events::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = events.iter().next().expect("hangup surfaces as an event");
        assert!(ev.readable, "owner must attempt a read and observe EOF");
    }
}
