//! Runtime lock-order witness and wait-for-graph deadlock detector.
//!
//! The static lock-graph analysis (`streamrel-check::lock_graph`) merges
//! every `// lock-order:` declaration into one global acquisition order
//! and emits it as a generated table. This module is the runtime half of
//! that contract: locks constructed with [`crate::Mutex::named`] /
//! [`crate::RwLock::named`] report every acquisition here, and the
//! witness
//!
//! * keeps a per-thread stack of held named locks (with the
//!   `#[track_caller]` acquisition site of each),
//! * validates each new acquisition against the installed must-precede
//!   table — acquiring `a` while holding `b` when the global order says
//!   `a < b` panics with **both** acquisition sites,
//! * when a named acquisition stalls, registers the thread in a global
//!   wait-for graph and panics with the full cycle if the blocked
//!   threads form one (a deadlock the order table did not prevent, e.g.
//!   same-name sibling locks taken in opposite orders).
//!
//! Everything is keyed off the lock's `name`: unnamed locks skip the
//! witness entirely (one `Option` branch), so the hot paths that matter
//! for perf can stay unnamed while the engine's structural locks are
//! instrumented. Validation is **off** by default and enabled either at
//! runtime with [`enable`] or by default when the crate is built with
//! the `lock_witness` feature; the chaos hook ([`set_chaos_hook`]) is
//! independent of enablement so a chaos scheduler can perturb timing
//! without paying for validation.
//!
//! The witness's own state uses `std::sync` primitives directly — going
//! through this crate's wrappers would recurse.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::Location;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex as StdMutex, OnceLock, RwLock as StdRwLock};
use std::thread::{self, ThreadId};
use std::time::{Duration, Instant};

/// How long a named acquisition may block before the wait-for graph is
/// consulted for a deadlock cycle.
const STALL_THRESHOLD: Duration = Duration::from_millis(20);

/// Whether acquisitions are validated. Independent of the chaos hook.
static ENABLED: AtomicBool = AtomicBool::new(cfg!(feature = "lock_witness"));

/// The installed must-precede table: `(a, b)` means a thread holding `b`
/// must not acquire `a`.
static ORDER: StdRwLock<Vec<(&'static str, &'static str)>> = StdRwLock::new(Vec::new());

/// Exclusive owners of named locks, by lock address.
static OWNERS: StdMutex<Option<HashMap<usize, Owner>>> = StdMutex::new(None);

/// Threads currently blocked acquiring a named lock.
static WAITERS: StdMutex<Option<HashMap<ThreadId, Waiter>>> = StdMutex::new(None);

#[derive(Clone, Copy)]
struct Owner {
    thread: ThreadId,
    name: &'static str,
    site: &'static Location<'static>,
}

#[derive(Clone, Copy)]
struct Waiter {
    addr: usize,
    name: &'static str,
    site: &'static Location<'static>,
}

/// One held named lock on the current thread's stack.
#[derive(Clone, Copy)]
struct HeldLock {
    addr: usize,
    name: &'static str,
    site: &'static Location<'static>,
}

thread_local! {
    static HELD: RefCell<Vec<HeldLock>> = const { RefCell::new(Vec::new()) };
}

/// Witness token carried inside a guard for a named lock; returned to
/// [`released`] when the guard drops. `exclusive` is false for rwlock
/// read guards (shared owners are not tracked in the wait-for graph).
pub struct Token {
    addr: usize,
    name: &'static str,
    exclusive: bool,
}

impl Token {
    /// The lock's qualified name.
    pub(crate) fn name(&self) -> &'static str {
        self.name
    }

    /// The lock's identity key in the owner map.
    pub(crate) fn addr(&self) -> usize {
        self.addr
    }
}

/// Turn validation on for this process (e.g. from a torture harness).
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn validation off.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether acquisitions are currently validated.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::SeqCst)
}

/// Install (replace) the global must-precede table. Typically called
/// with `streamrel_check::lock_graph_gen::LOCK_MUST_PRECEDE` by whoever
/// constructs the engine; idempotent for identical tables.
pub fn install_order(pairs: &[(&'static str, &'static str)]) {
    if let Ok(mut o) = ORDER.write() {
        o.clear();
        o.extend_from_slice(pairs);
    }
}

/// Number of pairs currently installed (diagnostics/tests).
pub fn order_len() -> usize {
    ORDER.read().map(|o| o.len()).unwrap_or(0)
}

// ---------------------------------------------------------------------
// Chaos hook
// ---------------------------------------------------------------------

/// Where in a lock's lifecycle a chaos hook fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosPoint {
    /// Immediately before a named lock is acquired.
    Acquire,
    /// Immediately before a named lock is released (still held).
    Release,
    /// Immediately before a condvar wait releases its mutex.
    CondvarWait,
    /// Immediately before a condvar notify.
    Notify,
}

/// The installed chaos hook, if any. Set once per process.
static CHAOS_HOOK: OnceLock<fn(ChaosPoint, Option<&'static str>)> = OnceLock::new();

/// Install a process-wide chaos hook fired at every named-lock and
/// condvar schedule point. First install wins; later calls are ignored
/// (the hook's own behaviour — seed, intensity — is expected to live in
/// the installer's state).
pub fn set_chaos_hook(hook: fn(ChaosPoint, Option<&'static str>)) {
    let _ = CHAOS_HOOK.set(hook);
}

/// Fire the chaos hook at a schedule point.
#[inline]
pub(crate) fn chaos(point: ChaosPoint, name: Option<&'static str>) {
    if let Some(h) = CHAOS_HOOK.get() {
        h(point, name);
    }
}

// ---------------------------------------------------------------------
// Acquisition protocol
// ---------------------------------------------------------------------

/// Validate that acquiring `name` is consistent with the current
/// thread's held set; panics with both sites on violation. Called
/// *before* blocking so the panic fires even if the acquisition would
/// deadlock.
pub(crate) fn validate(name: &'static str, site: &'static Location<'static>) {
    if !enabled() {
        return;
    }
    HELD.with(|held| {
        let held = held.borrow();
        if held.is_empty() {
            return;
        }
        let order = match ORDER.read() {
            Ok(o) => o,
            Err(_) => return,
        };
        for h in held.iter() {
            // Must `name` precede the already-held `h.name`?
            if order.iter().any(|&(a, b)| a == name && b == h.name) {
                panic!(
                    "lock-order violation: acquiring `{name}` at {site} while \
                     holding `{held_name}` acquired at {held_site}; the merged \
                     global order requires `{name}` < `{held_name}` \
                     (crates/check/src/lock_graph.gen.rs)",
                    held_name = h.name,
                    held_site = h.site,
                );
            }
        }
    });
}

/// Record a successful acquisition, returning the token the guard must
/// hand back on drop. `exclusive` is false for shared (read) guards.
pub(crate) fn acquired(
    name: &'static str,
    addr: usize,
    exclusive: bool,
    site: &'static Location<'static>,
) -> Token {
    HELD.with(|held| held.borrow_mut().push(HeldLock { addr, name, site }));
    if exclusive {
        if let Ok(mut owners) = OWNERS.lock() {
            owners.get_or_insert_with(HashMap::new).insert(
                addr,
                Owner {
                    thread: thread::current().id(),
                    name,
                    site,
                },
            );
        }
    }
    Token {
        addr,
        name,
        exclusive,
    }
}

/// Record a release (guard drop or condvar wait hand-off).
pub(crate) fn released(token: Token) {
    chaos(ChaosPoint::Release, Some(token.name));
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        // Guards may drop out of LIFO order; remove the topmost match.
        if let Some(i) = held.iter().rposition(|h| h.addr == token.addr) {
            held.remove(i);
        }
    });
    if token.exclusive {
        if let Ok(mut owners) = OWNERS.lock() {
            if let Some(map) = owners.as_mut() {
                map.remove(&token.addr);
            }
        }
    }
}

/// Re-record a lock a condvar wait just re-acquired (no order validation:
/// the lock is already physically held, and the original acquisition was
/// validated).
pub(crate) fn reacquired(
    name: &'static str,
    addr: usize,
    site: &'static Location<'static>,
) -> Token {
    acquired(name, addr, true, site)
}

/// Run a blocking acquisition with deadlock detection: `try_acquire` is
/// polled; once the stall threshold passes, the thread registers in the
/// wait-for graph and panics if the blocked threads form a cycle.
pub(crate) fn acquire_with_detection<G>(
    name: &'static str,
    addr: usize,
    site: &'static Location<'static>,
    mut try_acquire: impl FnMut() -> Option<G>,
) -> G {
    if let Some(g) = try_acquire() {
        return g;
    }
    let start = Instant::now();
    let me = thread::current().id();
    let mut registered = false;
    loop {
        if let Some(g) = try_acquire() {
            if registered {
                if let Ok(mut w) = WAITERS.lock() {
                    if let Some(map) = w.as_mut() {
                        map.remove(&me);
                    }
                }
            }
            return g;
        }
        if start.elapsed() >= STALL_THRESHOLD {
            if !registered {
                registered = true;
                if let Ok(mut w) = WAITERS.lock() {
                    w.get_or_insert_with(HashMap::new)
                        .insert(me, Waiter { addr, name, site });
                }
            }
            if let Some(cycle) = find_cycle(me, addr) {
                // Deregister before panicking so other threads don't see
                // a phantom waiter.
                if let Ok(mut w) = WAITERS.lock() {
                    if let Some(map) = w.as_mut() {
                        map.remove(&me);
                    }
                }
                panic!(
                    "deadlock detected: thread blocked acquiring `{name}` at \
                     {site}; wait-for cycle: {cycle}"
                );
            }
            thread::sleep(Duration::from_millis(1));
        } else {
            thread::yield_now();
        }
    }
}

/// Walk the wait-for graph from `start` blocked on `lock_addr`; returns
/// a rendered cycle if it closes back on `start`.
fn find_cycle(start: ThreadId, lock_addr: usize) -> Option<String> {
    let owners = OWNERS.lock().ok()?;
    let owners = owners.as_ref()?;
    let waiters = WAITERS.lock().ok()?;
    let waiters = waiters.as_ref()?;
    let mut path = Vec::new();
    let mut addr = lock_addr;
    for _ in 0..64 {
        let owner = owners.get(&addr)?;
        path.push(format!(
            "`{}` is held at {} by thread {:?}",
            owner.name, owner.site, owner.thread
        ));
        if owner.thread == start {
            return Some(path.join("; "));
        }
        let w = waiters.get(&owner.thread)?;
        path.push(format!(
            "which is blocked acquiring `{}` at {}",
            w.name, w.site
        ));
        addr = w.addr;
    }
    None
}

/// Snapshot of the current thread's held named locks (tests/diagnostics).
pub fn held_names() -> Vec<&'static str> {
    HELD.with(|held| held.borrow().iter().map(|h| h.name).collect())
}
