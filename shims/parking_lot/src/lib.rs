//! Offline shim for `parking_lot`, backed by `std::sync`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API subset it actually uses: [`Mutex`], [`RwLock`]
//! and [`Condvar`] with parking_lot's poison-free signatures (`lock()`
//! returns the guard directly). Poisoned std locks are treated as
//! acquired — the data is still consistent for our use cases, matching
//! parking_lot's behaviour of not having poisoning at all.

// lint: allow-unsafe(Condvar::wait must hand the guard through std's API
// by value; the shim moves it with a raw pointer read/write in
// `take_guard`, which is sound because the source is forgotten)

use std::fmt;
use std::sync::{self, TryLockError};
use std::time::Duration;

/// Mutual exclusion primitive (poison-free facade over `std::sync::Mutex`).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => MutexGuard(g),
            Err(p) => MutexGuard(p.into_inner()),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Reader-writer lock (poison-free facade over `std::sync::RwLock`).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => RwLockReadGuard(g),
            Err(p) => RwLockReadGuard(p.into_inner()),
        }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => RwLockWriteGuard(g),
            Err(p) => RwLockWriteGuard(p.into_inner()),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            _ => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Condition variable compatible with this shim's [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

/// Result of [`Condvar::wait_for`].
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Block until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        take_guard(guard, |g| match self.0.wait(g) {
            Ok(g) => (g, ()),
            Err(p) => (p.into_inner(), ()),
        });
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        take_guard(guard, |g| match self.0.wait_timeout(g, timeout) {
            Ok((g, t)) => (g, WaitTimeoutResult(t.timed_out())),
            Err(p) => {
                let (g, t) = p.into_inner();
                (g, WaitTimeoutResult(t.timed_out()))
            }
        })
    }

    /// Wake one waiter.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wake all waiters.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

/// Run `f` with ownership of the inner std guard, restoring it afterwards.
/// Needed because std's condvar consumes and returns guards by value while
/// parking_lot's API mutates one in place.
fn take_guard<'a, T, R>(
    guard: &mut MutexGuard<'a, T>,
    f: impl FnOnce(sync::MutexGuard<'a, T>) -> (sync::MutexGuard<'a, T>, R),
) -> R {
    // SAFETY: we read the guard out, hand it to `f`, and write the returned
    // guard (for the same mutex) back before anyone can observe the hole.
    // A panic inside std's wait would abort the process before unwinding
    // through here only if the mutex is poisoned, which we map back into a
    // live guard above.
    unsafe {
        let inner = std::ptr::read(&guard.0);
        let (inner, r) = f(inner);
        std::ptr::write(&mut guard.0, inner);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_notify_crosses_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            let r = cv.wait_for(&mut g, Duration::from_secs(5));
            assert!(!r.timed_out(), "notify should arrive");
        }
        t.join().unwrap();
    }
}
