//! Offline shim for `parking_lot`, backed by `std::sync`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API subset it actually uses: [`Mutex`], [`RwLock`]
//! and [`Condvar`] with parking_lot's poison-free signatures (`lock()`
//! returns the guard directly). Poisoned std locks are treated as
//! acquired — the data is still consistent for our use cases, matching
//! parking_lot's behaviour of not having poisoning at all.
//!
//! On top of the plain shim, locks built with [`Mutex::named`] /
//! [`RwLock::named`] participate in the runtime lock [`witness`]: their
//! acquisitions are validated against the generated global lock order,
//! tracked for wait-for-graph deadlock detection, and exposed to the
//! seeded chaos scheduler (`streamrel-faults`). Unnamed locks pay one
//! `Option` branch and nothing else. Validation defaults to off; build
//! with the `lock_witness` feature (or call [`witness::enable`]) to turn
//! it on.

// lint: allow-unsafe(Condvar::wait must hand the guard through std's API
// by value; the shim moves it with a raw pointer read/write in
// `take_guard`, which is sound because the source is forgotten)

pub mod witness;

use std::fmt;
use std::panic::Location;
use std::sync::{self, TryLockError};
use std::time::Duration;

use witness::ChaosPoint;

/// Mutual exclusion primitive (poison-free facade over `std::sync::Mutex`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    name: Option<&'static str>,
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    token: Option<witness::Token>,
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a new (unnamed) mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            name: None,
            inner: sync::Mutex::new(value),
        }
    }

    /// Create a witness-instrumented mutex. `name` must be the lock's
    /// qualified name from the generated global order table
    /// (`<crate>.<receiver>`, e.g. `"storage.wal"`).
    pub const fn named(name: &'static str, value: T) -> Mutex<T> {
        Mutex {
            name: Some(name),
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Named locks are
    /// validated against the global lock order and watched for
    /// deadlock while the witness is enabled.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let Some(name) = self.name else {
            return MutexGuard {
                token: None,
                inner: lock_plain(&self.inner),
            };
        };
        let site = Location::caller();
        witness::chaos(ChaosPoint::Acquire, Some(name));
        if !witness::enabled() {
            return MutexGuard {
                token: None,
                inner: lock_plain(&self.inner),
            };
        }
        witness::validate(name, site);
        let addr = self as *const _ as *const () as usize;
        let inner =
            witness::acquire_with_detection(name, addr, site, || try_lock_plain(&self.inner));
        MutexGuard {
            token: Some(witness::acquired(name, addr, true, site)),
            inner,
        }
    }

    /// Try to acquire the lock without blocking.
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = try_lock_plain(&self.inner)?;
        let token = self.name.filter(|_| witness::enabled()).map(|name| {
            let addr = self as *const _ as *const () as usize;
            witness::acquired(name, addr, true, Location::caller())
        });
        Some(MutexGuard { token, inner })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

fn lock_plain<T: ?Sized>(m: &sync::Mutex<T>) -> sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

fn try_lock_plain<T: ?Sized>(m: &sync::Mutex<T>) -> Option<sync::MutexGuard<'_, T>> {
    match m.try_lock() {
        Ok(g) => Some(g),
        Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
        Err(TryLockError::WouldBlock) => None,
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(token) = self.token.take() {
            witness::released(token);
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Reader-writer lock (poison-free facade over `std::sync::RwLock`).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    name: Option<&'static str>,
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    token: Option<witness::Token>,
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    token: Option<witness::Token>,
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new (unnamed) reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            name: None,
            inner: sync::RwLock::new(value),
        }
    }

    /// Create a witness-instrumented reader-writer lock (see
    /// [`Mutex::named`]).
    pub const fn named(name: &'static str, value: T) -> RwLock<T> {
        RwLock {
            name: Some(name),
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let Some(name) = self.name else {
            return RwLockReadGuard {
                token: None,
                inner: read_plain(&self.inner),
            };
        };
        let site = Location::caller();
        witness::chaos(ChaosPoint::Acquire, Some(name));
        if !witness::enabled() {
            return RwLockReadGuard {
                token: None,
                inner: read_plain(&self.inner),
            };
        }
        witness::validate(name, site);
        let addr = self as *const _ as *const () as usize;
        let inner =
            witness::acquire_with_detection(name, addr, site, || match self.inner.try_read() {
                Ok(g) => Some(g),
                Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
                Err(TryLockError::WouldBlock) => None,
            });
        RwLockReadGuard {
            token: Some(witness::acquired(name, addr, false, site)),
            inner,
        }
    }

    /// Acquire an exclusive write lock.
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let Some(name) = self.name else {
            return RwLockWriteGuard {
                token: None,
                inner: write_plain(&self.inner),
            };
        };
        let site = Location::caller();
        witness::chaos(ChaosPoint::Acquire, Some(name));
        if !witness::enabled() {
            return RwLockWriteGuard {
                token: None,
                inner: write_plain(&self.inner),
            };
        }
        witness::validate(name, site);
        let addr = self as *const _ as *const () as usize;
        let inner =
            witness::acquire_with_detection(name, addr, site, || match self.inner.try_write() {
                Ok(g) => Some(g),
                Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
                Err(TryLockError::WouldBlock) => None,
            });
        RwLockWriteGuard {
            token: Some(witness::acquired(name, addr, true, site)),
            inner,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

fn read_plain<T: ?Sized>(l: &sync::RwLock<T>) -> sync::RwLockReadGuard<'_, T> {
    match l.read() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

fn write_plain<T: ?Sized>(l: &sync::RwLock<T>) -> sync::RwLockWriteGuard<'_, T> {
    match l.write() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            _ => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(token) = self.token.take() {
            witness::released(token);
        }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(token) = self.token.take() {
            witness::released(token);
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Condition variable compatible with this shim's [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

/// Result of [`Condvar::wait_for`].
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Block until notified, releasing the guard while waiting.
    #[track_caller]
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let relock = release_for_wait(guard);
        take_guard(guard, |g| match self.0.wait(g) {
            Ok(g) => (g, ()),
            Err(p) => (p.into_inner(), ()),
        });
        rerecord_after_wait(guard, relock);
    }

    /// Block until notified or `timeout` elapses.
    #[track_caller]
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let relock = release_for_wait(guard);
        let r = take_guard(guard, |g| match self.0.wait_timeout(g, timeout) {
            Ok((g, t)) => (g, WaitTimeoutResult(t.timed_out())),
            Err(p) => {
                let (g, t) = p.into_inner();
                (g, WaitTimeoutResult(t.timed_out()))
            }
        });
        rerecord_after_wait(guard, relock);
        r
    }

    /// Wake one waiter.
    pub fn notify_one(&self) -> bool {
        witness::chaos(ChaosPoint::Notify, None);
        self.0.notify_one();
        true
    }

    /// Wake all waiters.
    pub fn notify_all(&self) -> usize {
        witness::chaos(ChaosPoint::Notify, None);
        self.0.notify_all();
        0
    }
}

/// A wait releases the mutex: hand the witness token back so the
/// held-set and owner map reflect reality while this thread sleeps.
/// Returns the (name, addr) identity needed to re-record afterwards.
fn release_for_wait<T: ?Sized>(guard: &mut MutexGuard<'_, T>) -> Option<(&'static str, usize)> {
    let name = guard.token.as_ref().map(|t| t.name());
    witness::chaos(ChaosPoint::CondvarWait, name);
    if let Some(token) = guard.token.take() {
        let identity = (token.name(), token.addr());
        witness::released(token);
        Some(identity)
    } else {
        None
    }
}

/// Re-record the mutex the wait re-acquired (if it was witnessed).
#[track_caller]
fn rerecord_after_wait<T: ?Sized>(
    guard: &mut MutexGuard<'_, T>,
    identity: Option<(&'static str, usize)>,
) {
    if let Some((name, addr)) = identity {
        guard.token = Some(witness::reacquired(name, addr, Location::caller()));
    }
}

/// Run `f` with ownership of the inner std guard, restoring it afterwards.
/// Needed because std's condvar consumes and returns guards by value while
/// parking_lot's API mutates one in place.
fn take_guard<'a, T, R>(
    guard: &mut MutexGuard<'a, T>,
    f: impl FnOnce(sync::MutexGuard<'a, T>) -> (sync::MutexGuard<'a, T>, R),
) -> R {
    // SAFETY: we read the guard out, hand it to `f`, and write the returned
    // guard (for the same mutex) back before anyone can observe the hole.
    // A panic inside std's wait would abort the process before unwinding
    // through here only if the mutex is poisoned, which we map back into a
    // live guard above.
    unsafe {
        let inner = std::ptr::read(&guard.inner);
        let (inner, r) = f(inner);
        std::ptr::write(&mut guard.inner, inner);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        // lint: wait-ok(timeout assertion, nothing to re-check)
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_notify_crosses_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            let r = cv.wait_for(&mut g, Duration::from_secs(5));
            assert!(!r.timed_out(), "notify should arrive");
        }
        t.join().unwrap();
    }

    #[test]
    fn named_locks_work_without_witness() {
        let m = Mutex::named("test.plain", 7);
        assert_eq!(*m.lock(), 7);
        let l = RwLock::named("test.plain_rw", 8);
        assert_eq!(*l.read(), 8);
        *l.write() += 1;
        assert_eq!(*l.read(), 9);
    }
}
