//! Offline shim for `crossbeam`, backed by `std::thread::scope`.
//!
//! Provides just `crossbeam::thread::scope` / `Scope::spawn` /
//! `ScopedJoinHandle::join` as the workspace uses them. Since Rust 1.63
//! std has native scoped threads, so the shim is a thin renaming layer;
//! the only API difference is that crossbeam passes the scope to each
//! spawned closure (for nested spawns), which callers here ignore, so the
//! shim passes `()` instead.

#![deny(unsafe_code)]

pub mod thread {
    use std::any::Any;

    /// Scope handle for spawning borrowed-data threads.
    pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure's argument is the
        /// nested-spawn scope in real crossbeam; here it is `()`.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle(self.0.spawn(move || f(())))
        }
    }

    /// Run `f` with a scope; all spawned threads join before returning.
    /// Always `Ok` (a panicking unjoined child propagates as a panic, which
    /// is at least as strict as crossbeam's `Err`).
    #[allow(clippy::result_unit_err)]
    pub fn scope<'env, F, R>(f: F) -> Result<R, ()>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope(s))))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1, 2, 3, 4];
        let sums: Vec<i32> = crate::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| scope.spawn(move |_| c.iter().sum::<i32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        assert_eq!(sums, vec![3, 7]);
    }
}
