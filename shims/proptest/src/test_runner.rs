//! Test configuration and the deterministic RNG driving generation.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Runner configuration (only `cases` is honoured by the shim).
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Config {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        // Real proptest defaults to 256; the shim trades a little coverage
        // for suite latency (these properties build whole databases per
        // case). Override per-test with `proptest_config` when needed.
        Config { cases: 64 }
    }
}

/// Deterministic RNG: seeded from the property's name (plus the optional
/// `PROPTEST_SEED` env var) so failures reproduce run-to-run.
pub struct TestRng(StdRng);

impl TestRng {
    /// RNG for the named test.
    pub fn for_test(name: &str) -> TestRng {
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325; // FNV offset basis
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            if let Ok(v) = extra.trim().parse::<u64>() {
                seed ^= v;
            }
        }
        TestRng(StdRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}
