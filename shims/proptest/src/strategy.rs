//! Value-generation strategies (no shrinking).

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::Range;

use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discard values failing `pred` (regenerates; gives up loudly after
    /// many rejections rather than looping forever).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

// ---- combinators -----------------------------------------------------------

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 1000 straight values",
            self.reason
        );
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice among strategies (backs `prop_oneof!`).
pub struct OneOf<T>(Vec<BoxedStrategy<T>>);

/// Build a [`OneOf`] from boxed alternatives.
pub fn one_of<T: Debug>(choices: Vec<BoxedStrategy<T>>) -> OneOf<T> {
    assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
    OneOf(choices)
}

impl<T: Debug> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.0.len());
        self.0[i].generate(rng)
    }
}

// ---- leaf strategies -------------------------------------------------------

/// Always produce (a clone of) one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draw an arbitrary value (edge-case-biased where it matters).
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The full-range strategy for `T` (`any::<T>()`).
pub struct Any<T>(PhantomData<T>);

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Bias toward boundary values — the cases random draws
                // essentially never hit but bugs congregate around.
                if rng.gen_bool(0.125) {
                    [0 as $t, 1 as $t, <$t>::MIN, <$t>::MAX][rng.gen_range(0..4usize)]
                } else {
                    rng.gen::<u64>() as $t
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        if rng.gen_bool(0.15) {
            [
                0.0,
                -0.0,
                1.0,
                -1.0,
                f64::NAN,
                f64::INFINITY,
                f64::NEG_INFINITY,
                f64::MIN,
                f64::MAX,
                f64::EPSILON,
            ][rng.gen_range(0..10usize)]
        } else {
            // Random bit pattern: covers subnormals, NaNs, the lot.
            f64::from_bits(rng.gen::<u64>())
        }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:ident $idx:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

// ---- collections -----------------------------------------------------------

/// Element-count bounds for [`vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max: usize, // exclusive
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n + 1 }
    }
}

/// Strategy for `Vec<S::Value>` with length drawn from `size`.
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

/// `prop::collection::vec`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = if self.size.min + 1 >= self.size.max {
            self.size.min
        } else {
            rng.gen_range(self.size.min..self.size.max)
        };
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}

/// Strategy for `Option<S::Value>` (`prop::option::of`).
pub struct OptionStrategy<S>(S);

/// `prop::option::of`.
pub fn option_of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy(inner)
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.gen_bool(0.25) {
            None
        } else {
            Some(self.0.generate(rng))
        }
    }
}

// ---- regex-literal string strategy ----------------------------------------

/// `&str` literals act as (a small subset of) regex string strategies:
/// concatenations of `.` or `[...]` char classes, each with an optional
/// `{n}` / `{m,n}` quantifier. This covers every pattern in the workspace's
/// tests; anything fancier panics loudly instead of silently misgenerating.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

#[derive(Debug)]
enum Atom {
    AnyChar,
    Class(Vec<(char, char)>), // inclusive ranges; singletons are (c, c)
}

fn parse_pattern(pat: &str) -> Vec<(Atom, usize, usize)> {
    let chars: Vec<char> = pat.chars().collect();
    let mut i = 0;
    let mut atoms = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::AnyChar
            }
            '[' => {
                i += 1;
                let mut ranges = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let c = match chars[i] {
                        '\\' => {
                            i += 1;
                            chars[i]
                        }
                        c => c,
                    };
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((c, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((c, c));
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated [class] in pattern {pat:?}");
                i += 1; // consume ']'
                Atom::Class(ranges)
            }
            '\\' => {
                i += 1;
                let c = chars[i];
                i += 1;
                Atom::Class(vec![(c, c)])
            }
            c => {
                assert!(
                    !"(){}|*+?^$".contains(c),
                    "unsupported regex construct {c:?} in pattern {pat:?}"
                );
                i += 1;
                Atom::Class(vec![(c, c)])
            }
        };
        // Optional quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated {quantifier}")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse().expect("bad quantifier"),
                    b.trim().parse().expect("bad quantifier"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push((atom, min, max));
    }
    atoms
}

fn generate_from_pattern(pat: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for (atom, min, max) in parse_pattern(pat) {
        let count = if min == max {
            min
        } else {
            rng.gen_range(min..=max)
        };
        for _ in 0..count {
            match &atom {
                Atom::AnyChar => {
                    // Mostly printable ASCII with occasional control and
                    // multi-byte characters, mirroring `.`'s breadth enough
                    // for no-panic fuzzing.
                    let c = match rng.gen_range(0..20u32) {
                        0 => '\t',
                        1 => '\n',
                        2 => 'é',
                        3 => '漢',
                        4 => '\u{1F600}',
                        _ => char::from_u32(rng.gen_range(0x20..0x7Fu32)).unwrap(),
                    };
                    out.push(c);
                }
                Atom::Class(ranges) => {
                    let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
                    let c = char::from_u32(rng.gen_range(lo as u32..=hi as u32))
                        .expect("class range spans invalid codepoints");
                    out.push(c);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::for_test("strategy-tests")
    }

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (1u64..5, 0i64..10).generate(&mut r);
            assert!((1..5).contains(&v.0) && (0..10).contains(&v.1));
        }
    }

    #[test]
    fn vec_respects_size() {
        let mut r = rng();
        for _ in 0..100 {
            let v = vec(0i64..5, 2..6usize).generate(&mut r);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_map_filter_compose() {
        let mut r = rng();
        let s = one_of(vec![
            Just(1i64).boxed(),
            (10i64..20).prop_map(|v| v * 2).boxed(),
        ])
        .prop_filter("even or one", |v| *v == 1 || *v % 2 == 0);
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!(v == 1 || (20..40).contains(&v) && v % 2 == 0);
        }
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut r = rng();
        for _ in 0..100 {
            let ident = "[a-z_][a-z0-9_]{0,20}".generate(&mut r);
            assert!(!ident.is_empty() && ident.len() <= 21);
            let first = ident.chars().next().unwrap();
            assert!(first.is_ascii_lowercase() || first == '_');

            let printable = "[ -~]{0,24}".generate(&mut r);
            assert!(printable.chars().all(|c| (' '..='~').contains(&c)));
            assert!(printable.chars().count() <= 24);

            let anything = ".{0,16}".generate(&mut r);
            assert!(anything.chars().count() <= 16);
        }
    }

    #[test]
    fn option_of_yields_both_variants() {
        let mut r = rng();
        let s = option_of(0i64..100);
        let drawn: Vec<_> = (0..200).map(|_| s.generate(&mut r)).collect();
        assert!(drawn.iter().any(|v| v.is_none()));
        assert!(drawn.iter().any(|v| v.is_some()));
    }

    #[test]
    fn arbitrary_ints_hit_boundaries() {
        let mut r = rng();
        let drawn: Vec<i64> = (0..500).map(|_| i64::arbitrary(&mut r)).collect();
        assert!(drawn.contains(&i64::MAX));
        assert!(drawn.contains(&i64::MIN));
    }
}
