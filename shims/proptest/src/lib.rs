//! Offline shim for `proptest`: the strategy/runner subset this workspace's
//! property tests use, with deterministic per-test seeding and **no
//! shrinking** — a failing case panics with the generated inputs printed
//! via the assertion message instead of being minimized.
//!
//! Supported surface:
//! - `proptest! { #![proptest_config(..)] #[test] fn f(x in strat, ..) {..} }`
//! - `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`
//! - `Just`, `any::<T>()`, integer ranges, tuples, `&str` regex literals
//!   (char classes / `.` with `{m,n}` quantifiers), `prop_oneof!`,
//!   `Strategy::{prop_map, prop_filter, boxed}`, `prop::collection::vec`,
//!   `prop::option::of`
//! - `test_runner::Config::with_cases`

#![deny(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// `prop::` namespace (`prop::collection::vec`, `prop::option::of`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }
    /// Option strategies.
    pub mod option {
        pub use crate::strategy::option_of as of;
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests: each function runs `Config::cases` times with
/// freshly generated inputs. Deterministic seed derived from the test name.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..cfg.cases {
                    $(let $p = $crate::strategy::Strategy::generate(&($s), &mut rng);)+
                    let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(msg) = outcome {
                        panic!("proptest {} failed on case {}/{}: {}",
                               stringify!($name), case + 1, cfg.cases, msg);
                    }
                }
            }
        )*
    };
}

/// Assert inside a property test (fails the current case).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (va, vb) = (&$a, &$b);
        if !(va == vb) {
            return Err(format!("{:?} != {:?}", va, vb));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (va, vb) = (&$a, &$b);
        if !(va == vb) {
            return Err(format!("{:?} != {:?}: {}", va, vb, format!($($fmt)+)));
        }
    }};
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (va, vb) = (&$a, &$b);
        if va == vb {
            return Err(format!("both sides equal: {:?}", va));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (va, vb) = (&$a, &$b);
        if va == vb {
            return Err(format!("both sides equal {:?}: {}", va, format!($($fmt)+)));
        }
    }};
}

/// Skip the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(());
        }
    };
}

/// Choose uniformly among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}
