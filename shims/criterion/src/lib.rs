//! Offline shim for `criterion`: same API shape, far simpler statistics.
//!
//! Each benchmark runs a short warm-up, then a fixed number of timed
//! iterations, and prints `name ... median time/iter`. No plots, no
//! statistical regression — just enough to keep `cargo bench` useful for
//! relative comparisons while the real crate is unavailable offline.

#![deny(unsafe_code)]

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a value/computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup (ignored by the shim's timer; kept
/// for signature compatibility).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A benchmark's identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/param`.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{param}"))
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    samples: u64,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine`, called repeatedly.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up.
        for _ in 0..2 {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.total = start.elapsed();
        self.iters = self.samples;
    }

    /// Time `routine` over fresh inputs built by `setup` (setup untimed).
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        black_box(routine(setup())); // warm-up
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.total = total;
        self.iters = self.samples;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the iteration count for subsequent benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            iters: 1,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            iters: 1,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// End the group (prints nothing extra in the shim).
    pub fn finish(&mut self) {}
}

fn report(name: &str, b: &Bencher) {
    let per_iter = if b.iters > 0 {
        b.total / b.iters as u32
    } else {
        Duration::ZERO
    };
    println!(
        "bench {name:<60} {per_iter:>12.3?}/iter ({} iters)",
        b.iters
    );
}

/// Top-level benchmark registry/driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 50,
            _parent: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let mut b = Bencher {
            samples: 50,
            total: Duration::ZERO,
            iters: 1,
        };
        f(&mut b);
        report(name, &b);
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
