//! Offline shim for `rand` 0.8, providing the subset the workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and `Rng::{gen, gen_range,
//! gen_bool}` over integer ranges.
//!
//! The generator is xoshiro256++ seeded via splitmix64 — deterministic,
//! fast, and easily good enough for workload generation and tests (the
//! only uses in this workspace; nothing here is security-sensitive).

#![deny(unsafe_code)]

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods (blanket-implemented for any [`RngCore`]).
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its full/unit range.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let u: f64 = self.gen();
        u < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types sampleable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample uniformly from this range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

/// Uniform u64 in [0, n) without modulo bias worth caring about here
/// (n ≪ 2^64 in every workspace use; plain rejection keeps it exact).
fn uniform_below<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Rejection sampling over the largest multiple of n.
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        let u: f64 = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Named RNGs.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..10i64);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(1..=2i64);
            assert!((1..=2).contains(&w));
            let u = rng.gen_range(0..5usize);
            assert!(u < 5);
            let b = rng.gen_range(1..255u8);
            assert!((1..255).contains(&b));
        }
    }

    #[test]
    fn unit_float_and_bool() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut trues = 0;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            if rng.gen_bool(0.5) {
                trues += 1;
            }
        }
        assert!((3_500..6_500).contains(&trues), "got {trues}");
    }

    #[test]
    fn full_range_hits_both_halves() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lo = 0;
        for _ in 0..1000 {
            let v = rng.gen_range(0..256u64);
            if v < 128 {
                lo += 1;
            }
        }
        assert!((300..700).contains(&lo));
    }
}
