//! # streamrel — Continuous Analytics for a Network-Effect World
//!
//! A stream-relational database system reproducing *"Continuous Analytics:
//! Rethinking Query Processing in a Network-Effect World"* (Franklin et
//! al., CIDR 2009): SQL runs continuously and incrementally over data
//! *before* it is stored, over tables, streams, and combinations of the
//! two.
//!
//! Quick start:
//!
//! ```
//! use streamrel::{Db, DbOptions};
//!
//! let db = Db::in_memory(DbOptions::default());
//! // Paper Example 1: a stream ordered on a data-carried time column.
//! db.execute("CREATE STREAM url_stream (url varchar(1024), \
//!             atime timestamp CQTIME USER, client_ip varchar(50))").unwrap();
//! // Paper Examples 3+4: a derived stream archived into an Active Table.
//! db.execute("CREATE TABLE urls_archive (url varchar(1024), scnt integer, \
//!             stime timestamp)").unwrap();
//! db.execute("CREATE STREAM urls_now AS SELECT url, count(*) scnt, \
//!             cq_close(*) stime FROM url_stream \
//!             <VISIBLE '5 minutes' ADVANCE '1 minute'> GROUP BY url").unwrap();
//! db.execute("CREATE CHANNEL urls_channel FROM urls_now \
//!             INTO urls_archive APPEND").unwrap();
//! // Stream data in; the report is continuously maintained.
//! db.execute("INSERT INTO url_stream VALUES \
//!             ('/home', '2009-01-04 00:00:01', '1.2.3.4')").unwrap();
//! db.heartbeat("url_stream",
//!     streamrel::types::parse_timestamp("2009-01-04 00:01:00").unwrap()).unwrap();
//! let report = db.execute("SELECT url, scnt FROM urls_archive").unwrap().rows();
//! assert_eq!(report.len(), 1);
//! ```

#![deny(unsafe_code)]

pub use streamrel_core::{
    split_statements, Db, DbOptions, DbStats, ExecResult, OverflowPolicy, ResultNotifier,
    Subscription, SubscriptionId,
};

/// Core data model (values, rows, schemas, relations, time).
pub mod types {
    pub use streamrel_types::*;
}

/// SQL front-end (parser, analyzer, logical plans).
pub mod sql {
    pub use streamrel_sql::*;
}

/// Relational execution (expressions, operators).
pub mod exec {
    pub use streamrel_exec::*;
}

/// MVCC storage, WAL, recovery.
pub mod storage {
    pub use streamrel_storage::*;
}

/// Continuous-query runtime (windows, sharing, consistency, recovery).
pub mod cq {
    pub use streamrel_cq::*;
}

/// Incremental view maintenance (delta processing for eligible CQs).
pub mod ivm {
    pub use streamrel_ivm::*;
}

/// Baselines: store-first, batch materialized views, mini map/reduce.
pub mod baseline {
    pub use streamrel_baseline::*;
}

/// Deterministic workload generators.
pub mod workload {
    pub use streamrel_workload::*;
}

/// Wire protocol: TCP server and blocking client.
pub mod net {
    pub use streamrel_net::*;
}
