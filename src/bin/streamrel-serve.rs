//! The streamrel network server.
//!
//! ```text
//! streamrel-serve <data-dir> <addr>      # durable database at data-dir
//! streamrel-serve --memory <addr>        # in-memory database
//! ```
//!
//! Binds `addr` (e.g. `127.0.0.1:7878`) and serves the wire protocol:
//! snapshot SQL, DDL, ingest, heartbeats, and pushed continuous-query
//! results. Runs until killed; durable databases recover their DDL and
//! watermarks on the next start.

use std::sync::Arc;

use streamrel::net::Server;
use streamrel::{Db, DbOptions};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (dir, addr) = match args.as_slice() {
        [dir, addr] => (dir.as_str(), addr.as_str()),
        _ => {
            eprintln!("usage: streamrel-serve <data-dir | --memory> <addr>");
            std::process::exit(2);
        }
    };
    let db = if dir == "--memory" {
        println!("streamrel-serve: in-memory database");
        Db::in_memory(DbOptions::default())
    } else {
        match Db::open(dir, DbOptions::default()) {
            Ok(db) => {
                println!("streamrel-serve: durable database at {dir}");
                db
            }
            Err(e) => {
                eprintln!("cannot open {dir}: {e}");
                std::process::exit(1);
            }
        }
    };
    let server = match Server::serve(Arc::new(db), addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("listening on {}", server.local_addr());
    // Serve until the process is killed; the accept loop runs on its own
    // thread, so just park this one.
    loop {
        std::thread::park();
    }
}
