//! The streamrel network server.
//!
//! ```text
//! streamrel-serve <data-dir> <addr>                        # durable database at data-dir
//! streamrel-serve --memory <addr>                          # in-memory database
//! streamrel-serve --memory <addr> --metrics-interval 10    # + periodic metrics dump
//! ```
//!
//! Binds `addr` (e.g. `127.0.0.1:7878`; `127.0.0.1:0` lets the OS pick,
//! and the chosen port is printed as a `PORT=<n>` stdout line for
//! scripts) and serves the wire protocol:
//! snapshot SQL, DDL, ingest, heartbeats, pushed continuous-query
//! results, and `Stats` metric snapshots. Runs until killed; durable
//! databases recover their DDL and watermarks on the next start.
//!
//! With `--metrics-interval <secs>`, the server also prints the
//! `streamrel_metrics` relation to stdout every interval — the same rows
//! a client gets from `SELECT * FROM streamrel_metrics` or a `Stats`
//! frame.

#![deny(unsafe_code)]

use std::sync::Arc;
use std::time::Duration;

use streamrel::net::Server;
use streamrel::types::Value;
use streamrel::{Db, DbOptions};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let metrics_interval = match take_flag_value(&mut args, "--metrics-interval") {
        Ok(v) => match v.map(|s| s.parse::<u64>()) {
            None => None,
            Some(Ok(secs)) if secs > 0 => Some(Duration::from_secs(secs)),
            Some(_) => {
                eprintln!("--metrics-interval wants a positive number of seconds");
                std::process::exit(2);
            }
        },
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let (dir, addr) = match args.as_slice() {
        [dir, addr] => (dir.as_str(), addr.as_str()),
        _ => {
            eprintln!(
                "usage: streamrel-serve <data-dir | --memory> <addr> [--metrics-interval <secs>]"
            );
            std::process::exit(2);
        }
    };
    let db = if dir == "--memory" {
        println!("streamrel-serve: in-memory database");
        Db::in_memory(DbOptions::default())
    } else {
        match Db::open(dir, DbOptions::default()) {
            Ok(db) => {
                println!("streamrel-serve: durable database at {dir}");
                db
            }
            Err(e) => {
                eprintln!("cannot open {dir}: {e}");
                std::process::exit(1);
            }
        }
    };
    let db = Arc::new(db);
    let server = match Server::serve(db.clone(), addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("listening on {}", server.local_addr());
    // Machine-readable port line: with an `:0` bind the OS picks the
    // port, and CI scripts wiring multiple nodes read it from here
    // instead of racing to pre-pick free ports.
    println!("PORT={}", server.local_addr().port());
    if let Some(interval) = metrics_interval {
        let db = db.clone();
        std::thread::Builder::new()
            .name("streamrel-metrics-dump".into())
            .spawn(move || loop {
                std::thread::sleep(interval);
                dump_metrics(&db);
            })
            .expect("spawn metrics dump thread");
    }
    // Serve until the process is killed; the accept loop runs on its own
    // thread, so just park this one.
    loop {
        std::thread::park();
    }
}

/// Pull `--flag value` out of `args` (anywhere); `Ok(None)` if absent.
fn take_flag_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err(format!("{flag} wants a value"));
    }
    let value = args.remove(i + 1);
    args.remove(i);
    Ok(Some(value))
}

/// Print the current `streamrel_metrics` relation, one instrument per line.
fn dump_metrics(db: &Db) {
    let rel = db.metrics_relation();
    println!("-- metrics ({} instruments) --", rel.len());
    for row in rel.rows() {
        let cell = |v: &Value| match v {
            Value::Null => "-".to_string(),
            Value::Text(t) => t.to_string(),
            other => other.to_string(),
        };
        println!(
            "{:<40} {:<10} {}",
            cell(&row[0]),
            cell(&row[1]),
            row[2..].iter().map(cell).collect::<Vec<_>>().join(" ")
        );
    }
}
