//! The streamrel interactive shell.
//!
//! ```text
//! streamrel [data-dir]      # durable at data-dir, or in-memory if omitted
//! ```
//!
//! Plain SQL statements execute against the database; continuous SELECTs
//! create subscriptions whose window results print as they arrive (checked
//! after every subsequent statement). Meta commands:
//!
//! - `\i <file>`              run a SQL script
//! - `\heartbeat <stream> <ts|'timestamp'>`  advance a stream's event time
//! - `\subs`                  list live subscriptions
//! - `\unsub <n>`             terminate subscription n
//! - `\stats`                 runtime counters
//! - `\q`                     quit

#![deny(unsafe_code)]

use std::collections::BTreeMap;
use std::io::{BufRead, Write};

use streamrel::types::{format_timestamp, parse_timestamp};
use streamrel::{split_statements, Db, DbOptions, ExecResult, SubscriptionId};

fn main() {
    let arg = std::env::args().nth(1);
    let db = match &arg {
        Some(dir) => match Db::open(dir, DbOptions::default()) {
            Ok(db) => {
                println!("streamrel: durable database at {dir}");
                db
            }
            Err(e) => {
                eprintln!("cannot open {dir}: {e}");
                std::process::exit(1);
            }
        },
        None => {
            println!("streamrel: in-memory database (pass a directory for durability)");
            Db::in_memory(DbOptions::default())
        }
    };
    println!("type SQL statements ending with `;`, or \\q to quit.\n");

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    let mut subs: BTreeMap<u64, String> = BTreeMap::new();
    loop {
        if buffer.is_empty() {
            print!("streamrel> ");
        } else {
            print!("........ > ");
        }
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('\\') {
            if !meta_command(&db, trimmed, &mut subs) {
                break;
            }
            drain_subscriptions(&db, &subs);
            continue;
        }
        buffer.push_str(&line);
        if !buffer.trim_end().ends_with(';') {
            continue;
        }
        let sql = std::mem::take(&mut buffer);
        run_sql(&db, &sql, &mut subs);
        drain_subscriptions(&db, &subs);
    }
    println!("bye.");
}

fn run_sql(db: &Db, sql: &str, subs: &mut BTreeMap<u64, String>) {
    for piece in split_statements(sql) {
        match db.execute(&piece) {
            Ok(ExecResult::Rows(rel)) => {
                print!("{}", rel.to_table());
                println!("({} rows)", rel.len());
            }
            Ok(ExecResult::Subscribed(SubscriptionId(id))) => {
                subs.insert(id, piece.trim().to_string());
                println!(
                    "continuous query registered as subscription [{id}]; \
                     window results will print as they close."
                );
            }
            Ok(ExecResult::Created(name)) => println!("created {name}"),
            Ok(ExecResult::Dropped(name)) => println!("dropped {name}"),
            Ok(ExecResult::Inserted(n)) => println!("inserted {n} row(s)"),
            Ok(ExecResult::Deleted(n)) => println!("deleted {n} row(s)"),
            Ok(ExecResult::Truncated(name)) => println!("truncated {name}"),
            Err(e) => println!("error: {e}"),
        }
    }
}

fn meta_command(db: &Db, cmd: &str, subs: &mut BTreeMap<u64, String>) -> bool {
    let mut parts = cmd.split_whitespace();
    match parts.next() {
        Some("\\q") | Some("\\quit") => return false,
        Some("\\i") => match parts.next() {
            Some(path) => match std::fs::read_to_string(path) {
                Ok(script) => run_sql(db, &script, subs),
                Err(e) => println!("cannot read {path}: {e}"),
            },
            None => println!("usage: \\i <file>"),
        },
        Some("\\heartbeat") => {
            let Some(stream) = parts.next() else {
                println!("usage: \\heartbeat <stream> <epoch_us | YYYY-MM-DD[ HH:MM:SS]>");
                return true;
            };
            // The timestamp may contain a space ('1970-01-01 00:01:00').
            let ts_str = parts.collect::<Vec<_>>().join(" ");
            if ts_str.is_empty() {
                println!("usage: \\heartbeat <stream> <epoch_us | YYYY-MM-DD[ HH:MM:SS]>");
                return true;
            }
            match parse_timestamp(ts_str.trim_matches('\'')) {
                Ok(ts) => match db.heartbeat(stream, ts) {
                    Ok(()) => println!("heartbeat({stream}) -> {}", format_timestamp(ts)),
                    Err(e) => println!("error: {e}"),
                },
                Err(e) => println!("bad timestamp: {e}"),
            }
        }
        Some("\\subs") => {
            if subs.is_empty() {
                println!("no live subscriptions");
            }
            for (id, sql) in subs.iter() {
                println!("[{id}] {sql}");
            }
        }
        Some("\\unsub") => {
            if let Some(Ok(id)) = parts.next().map(str::parse::<u64>) {
                match db.unsubscribe(SubscriptionId(id)) {
                    Ok(()) => {
                        subs.remove(&id);
                        println!("terminated [{id}]");
                    }
                    Err(e) => println!("error: {e}"),
                }
            } else {
                println!("usage: \\unsub <n>");
            }
        }
        Some("\\copy") => {
            let (Some(target), Some(path)) = (parts.next(), parts.next()) else {
                println!("usage: \\copy <stream|table> <file.csv> [noheader]");
                return true;
            };
            let has_header = parts.next() != Some("noheader");
            match std::fs::File::open(path) {
                Ok(f) => match db.copy_csv(target, std::io::BufReader::new(f), has_header) {
                    Ok(n) => println!("copied {n} row(s) into {target}"),
                    Err(e) => println!("error: {e}"),
                },
                Err(e) => println!("cannot open {path}: {e}"),
            }
        }
        Some("\\stats") => {
            let s = db.stats();
            println!(
                "tuples_in={} windows_out={} rows_archived={} late_drops={} \
                 sub_drops={} live_subs={}",
                s.tuples_in, s.windows_out, s.rows_archived, s.late_drops, s.sub_drops,
                s.live_subs
            );
        }
        Some(other) => println!("unknown meta command {other} (try \\q, \\i, \\copy, \\heartbeat, \\subs, \\unsub, \\stats)"),
        None => {}
    }
    true
}

fn drain_subscriptions(db: &Db, subs: &BTreeMap<u64, String>) {
    for (&id, _) in subs.iter() {
        if let Ok(outs) = db.poll(SubscriptionId(id)) {
            for out in outs {
                println!("[{id}] window closing {}:", format_timestamp(out.close));
                print!("{}", out.relation.to_table());
            }
        }
    }
}
