//! Property-based tests: codec round-trips, WAL record round-trips, and
//! MVCC visibility invariants under random operation sequences.

use proptest::prelude::*;
use streamrel_storage::codec::{decode_row, encode_row, Reader};
use streamrel_storage::wal::WalRecord;
use streamrel_storage::StorageEngine;
use streamrel_types::{Column, DataType, Row, Schema, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        ".{0,16}".prop_map(Value::text),
        any::<i64>().prop_map(Value::Timestamp),
        any::<i64>().prop_map(Value::Interval),
    ]
}

fn arb_row() -> impl Strategy<Value = Row> {
    prop::collection::vec(arb_value(), 0..8)
}

proptest! {
    /// Any row encodes and decodes back to itself.
    #[test]
    fn row_codec_roundtrip(row in arb_row()) {
        let mut buf = Vec::new();
        encode_row(&mut buf, &row);
        let mut r = Reader::new(&buf);
        let got = decode_row(&mut r).unwrap();
        prop_assert_eq!(r.remaining(), 0);
        prop_assert_eq!(got, row);
    }

    /// Any WAL record round-trips through encode/decode.
    #[test]
    fn wal_record_roundtrip(xid in 1u64..1000, table in 0u32..10, slot in 0u64..1000,
                            row in arb_row(), key in ".{0,32}", val in ".{0,64}") {
        for rec in [
            WalRecord::Begin { xid },
            WalRecord::Insert { xid, table, slot, row: row.clone() },
            WalRecord::Delete { xid, table, slot },
            WalRecord::Commit { xid },
            WalRecord::Abort { xid },
            WalRecord::CatalogPut { key: key.clone(), value: val.clone() },
            WalRecord::CatalogDel { key: key.clone() },
        ] {
            let enc = rec.encode();
            prop_assert_eq!(WalRecord::decode(&enc).unwrap(), rec);
        }
    }

    /// Truncated row encodings never decode successfully (and never panic).
    #[test]
    fn truncated_rows_fail_cleanly(row in arb_row(), cut_frac in 0.0f64..1.0) {
        // Only meaningful when something gets cut off.
        let mut buf = Vec::new();
        encode_row(&mut buf, &row);
        let cut = ((buf.len() as f64) * cut_frac) as usize;
        if cut < buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            prop_assert!(decode_row(&mut r).is_err());
        }
    }

    /// MVCC: a committed set of rows is exactly what a fresh snapshot
    /// sees, regardless of interleaved aborted transactions.
    #[test]
    fn committed_rows_visible_aborted_invisible(
        ops in prop::collection::vec((any::<bool>(), 0i64..100), 1..40)
    ) {
        let e = StorageEngine::in_memory();
        let t = e
            .create_table("t", Schema::new(vec![Column::new("v", DataType::Int)]).unwrap())
            .unwrap();
        let mut expected = Vec::new();
        for (commit, v) in &ops {
            let xid = e.begin().unwrap();
            e.insert(xid, t, vec![Value::Int(*v)]).unwrap();
            if *commit {
                e.commit(xid).unwrap();
                expected.push(*v);
            } else {
                e.abort(xid).unwrap();
            }
        }
        let snap = e.snapshot();
        let mut got: Vec<i64> = e
            .scan(t, &snap)
            .unwrap()
            .into_iter()
            .map(|(_, r)| r[0].as_int().unwrap())
            .collect();
        got.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// Durability: whatever was committed before a crash is exactly what
    /// recovery produces (WAL replay determinism).
    #[test]
    fn wal_recovery_reproduces_committed_state(
        vals in prop::collection::vec(0i64..1000, 1..30),
        abort_last in any::<bool>(),
    ) {
        let dir = std::env::temp_dir().join(format!(
            "streamrel-prop-wal-{}-{}",
            std::process::id(),
            vals.len() as u64 * 1000 + vals.first().copied().unwrap_or(0) as u64
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let e = StorageEngine::open(&dir).unwrap();
            let t = e
                .create_table("t", Schema::new(vec![Column::new("v", DataType::Int)]).unwrap())
                .unwrap();
            let xid = e.begin().unwrap();
            for v in &vals {
                e.insert(xid, t, vec![Value::Int(*v)]).unwrap();
            }
            e.commit(xid).unwrap();
            if abort_last {
                // An in-flight transaction at crash time.
                let xid = e.begin().unwrap();
                e.insert(xid, t, vec![Value::Int(-1)]).unwrap();
            }
            // crash: drop without shutdown
        }
        let e = StorageEngine::open(&dir).unwrap();
        let t = e.table_id("t").unwrap();
        let snap = e.snapshot();
        let mut got: Vec<i64> = e
            .scan(t, &snap)
            .unwrap()
            .into_iter()
            .map(|(_, r)| r[0].as_int().unwrap())
            .collect();
        got.sort_unstable();
        let mut expected = vals.clone();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
