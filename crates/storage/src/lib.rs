//! Relational storage substrate for streamrel.
//!
//! Implements the "full-function database system" half of the paper's
//! stream-relational merger (§2.2): MVCC heap tables with snapshot
//! isolation, a write-ahead log with CRC-protected records, crash recovery,
//! ordered secondary indexes, and a persistent catalog of table definitions.
//!
//! The continuous-query layer (`streamrel-cq`) builds directly on these
//! pieces: Active Tables are ordinary tables here, window consistency is a
//! pinned [`Snapshot`], and CQ recovery replays this crate's WAL before
//! re-seeding stream state (§4 of the paper).

#![deny(unsafe_code)]

pub mod catalog;
pub mod codec;
pub mod crc;
pub mod engine;
pub mod heap;
pub mod index;
pub mod io;
pub mod txn;
pub mod wal;

pub use engine::{StorageEngine, SyncMode};
pub use heap::{HeapTable, TupleId};
pub use index::OrderedIndex;
pub use io::{Io, StdIo};
pub use txn::{Snapshot, TxnId, TxnManager, TxnStatus};
