//! Write-ahead log.
//!
//! Every state mutation is logged before it is applied; recovery replays the
//! log to rebuild durable state (§4: "a traditional RDBMS only guarantees
//! the integrity of durable state" — this is that guarantee; the CQ layer
//! adds runtime-state recovery from Active Tables on top).
//!
//! On-disk framing: `[u32 payload_len][u32 crc32(lsn ‖ payload)][u64 lsn][payload]`.
//! Replay tolerates a torn final record (crash mid-append) by stopping at
//! the first length/CRC mismatch, mirroring how real WALs handle tails;
//! the engine then truncates the file to the valid prefix so fresh
//! appends are never stranded behind a corrupt record.
//!
//! Each frame carries the engine-global **log sequence number** under the
//! CRC. With the commit domain partitioned across `wal-<shard>.log` files
//! (DESIGN.md §13), recovery merges every log's surviving records in LSN
//! order to reconstruct one serial history — without the LSN, records from
//! different logs touching the same table could replay out of order (e.g.
//! a delete before the insert it deletes).
//!
//! All file traffic goes through the [`Io`] trait so the fault-injection
//! harness (`streamrel-faults`) can tear writes and fail fsyncs. A failed
//! flush or fsync **poisons** the log: the durable state of the file is
//! indeterminate after such a failure (fsyncgate), so every subsequent
//! append/commit returns [`Error::WalPoisoned`] until the engine is
//! reopened and recovery re-establishes a known-good prefix.

use std::fs::File;
use std::io::Read;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use streamrel_types::{Error, Result, Row, Schema};

use crate::io::{Io, StdIo};

use crate::codec::{
    decode_row, decode_schema, encode_row, encode_schema, put_str, put_u32, put_u64, Reader,
};
use crate::crc::crc32;
use crate::txn::TxnId;

/// One logical WAL record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Transaction start.
    Begin { xid: TxnId },
    /// Row inserted at a heap slot.
    Insert {
        xid: TxnId,
        table: u32,
        slot: u64,
        row: Row,
    },
    /// Row version at a heap slot stamped deleted.
    Delete { xid: TxnId, table: u32, slot: u64 },
    /// Transaction committed (records before this are durable effects).
    Commit { xid: TxnId },
    /// Transaction aborted (its effects must be ignored on replay).
    Abort { xid: TxnId },
    /// DDL: table created.
    CreateTable {
        id: u32,
        name: String,
        schema: Schema,
    },
    /// DDL: table dropped.
    DropTable { id: u32 },
    /// DDL: table truncated (REPLACE-mode channels use this).
    Truncate { table: u32, xid: TxnId },
    /// Generic persistent key/value entry (stream / view / channel DDL text
    /// lives here, replayed by the upper layers after storage recovery).
    CatalogPut { key: String, value: String },
    /// Transactional catalog entry: applied on replay only if `xid`
    /// committed. Used for CQ watermarks so the watermark and the window's
    /// Active-Table rows become durable atomically (exactly-once
    /// archiving across crashes, §4).
    CatalogPutTxn {
        xid: TxnId,
        key: String,
        value: String,
    },
    /// Remove a catalog entry.
    CatalogDel { key: String },
    /// Checkpoint-generation marker, written as the first record of a
    /// freshly reset log. On recovery, a log whose epoch is *older* than
    /// the checkpoint's expectation for its shard is stale — the
    /// checkpoint already contains every effect it describes (the crash
    /// hit between the checkpoint rename and that log's reset) — and
    /// replaying it over the checkpointed heap would double-apply
    /// records against renumbered slots. `shard` identifies which
    /// commit domain's log stamped the marker so a crash that resets
    /// only *some* logs discards exactly the stale ones.
    Epoch { epoch: u64, shard: u32 },
}

const T_BEGIN: u8 = 1;
const T_INSERT: u8 = 2;
const T_DELETE: u8 = 3;
const T_COMMIT: u8 = 4;
const T_ABORT: u8 = 5;
const T_CREATE: u8 = 6;
const T_DROP: u8 = 7;
const T_TRUNC: u8 = 8;
const T_CPUT: u8 = 9;
const T_CDEL: u8 = 10;
const T_CPUTX: u8 = 11;
const T_EPOCH: u8 = 12;

impl WalRecord {
    /// Serialize to the payload form (no framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(32);
        match self {
            WalRecord::Begin { xid } => {
                b.push(T_BEGIN);
                put_u64(&mut b, *xid);
            }
            WalRecord::Insert {
                xid,
                table,
                slot,
                row,
            } => {
                b.push(T_INSERT);
                put_u64(&mut b, *xid);
                put_u32(&mut b, *table);
                put_u64(&mut b, *slot);
                encode_row(&mut b, row);
            }
            WalRecord::Delete { xid, table, slot } => {
                b.push(T_DELETE);
                put_u64(&mut b, *xid);
                put_u32(&mut b, *table);
                put_u64(&mut b, *slot);
            }
            WalRecord::Commit { xid } => {
                b.push(T_COMMIT);
                put_u64(&mut b, *xid);
            }
            WalRecord::Abort { xid } => {
                b.push(T_ABORT);
                put_u64(&mut b, *xid);
            }
            WalRecord::CreateTable { id, name, schema } => {
                b.push(T_CREATE);
                put_u32(&mut b, *id);
                put_str(&mut b, name);
                encode_schema(&mut b, schema);
            }
            WalRecord::DropTable { id } => {
                b.push(T_DROP);
                put_u32(&mut b, *id);
            }
            WalRecord::Truncate { table, xid } => {
                b.push(T_TRUNC);
                put_u32(&mut b, *table);
                put_u64(&mut b, *xid);
            }
            WalRecord::CatalogPut { key, value } => {
                b.push(T_CPUT);
                put_str(&mut b, key);
                put_str(&mut b, value);
            }
            WalRecord::CatalogDel { key } => {
                b.push(T_CDEL);
                put_str(&mut b, key);
            }
            WalRecord::CatalogPutTxn { xid, key, value } => {
                b.push(T_CPUTX);
                put_u64(&mut b, *xid);
                put_str(&mut b, key);
                put_str(&mut b, value);
            }
            WalRecord::Epoch { epoch, shard } => {
                b.push(T_EPOCH);
                put_u64(&mut b, *epoch);
                put_u32(&mut b, *shard);
            }
        }
        b
    }

    /// Deserialize from a payload.
    pub fn decode(buf: &[u8]) -> Result<WalRecord> {
        let mut r = Reader::new(buf);
        let rec = match r.u8()? {
            T_BEGIN => WalRecord::Begin { xid: r.u64()? },
            T_INSERT => WalRecord::Insert {
                xid: r.u64()?,
                table: r.u32()?,
                slot: r.u64()?,
                row: decode_row(&mut r)?,
            },
            T_DELETE => WalRecord::Delete {
                xid: r.u64()?,
                table: r.u32()?,
                slot: r.u64()?,
            },
            T_COMMIT => WalRecord::Commit { xid: r.u64()? },
            T_ABORT => WalRecord::Abort { xid: r.u64()? },
            T_CREATE => WalRecord::CreateTable {
                id: r.u32()?,
                name: r.str()?,
                schema: decode_schema(&mut r)?,
            },
            T_DROP => WalRecord::DropTable { id: r.u32()? },
            T_TRUNC => WalRecord::Truncate {
                table: r.u32()?,
                xid: r.u64()?,
            },
            T_CPUT => WalRecord::CatalogPut {
                key: r.str()?,
                value: r.str()?,
            },
            T_CDEL => WalRecord::CatalogDel { key: r.str()? },
            T_CPUTX => WalRecord::CatalogPutTxn {
                xid: r.u64()?,
                key: r.str()?,
                value: r.str()?,
            },
            T_EPOCH => WalRecord::Epoch {
                epoch: r.u64()?,
                shard: r.u32()?,
            },
            t => return Err(Error::storage(format!("unknown wal record type {t}"))),
        };
        if r.remaining() != 0 {
            return Err(Error::storage("trailing bytes in wal record"));
        }
        Ok(rec)
    }
}

/// Durability policy for the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncMode {
    /// Buffer in user space; flushed on drop/checkpoint only. Fastest;
    /// loses the tail on crash. Fine for benchmarks and derived state.
    NoSync,
    /// Flush to the OS page cache on every commit (default): survives
    /// process crash, not power loss.
    #[default]
    Flush,
    /// `fdatasync` on every commit: survives power loss.
    Fsync,
}

/// User-space buffer size above which appends spill to the OS even
/// before a commit point (mirrors the `BufWriter` default the log used
/// before the [`Io`] abstraction).
const SPILL_BYTES: usize = 8 * 1024;

/// Append-only WAL writer.
pub struct Wal {
    path: PathBuf,
    io: Arc<dyn Io>,
    /// User-space record buffer; spills at [`SPILL_BYTES`] and at every
    /// commit point (except under [`SyncMode::NoSync`]).
    buf: Vec<u8>,
    sync: SyncMode,
    appended: u64,
    /// Highest LSN appended through this handle (0 = none yet). A group
    /// commit leader reads this under the log lock to learn how far one
    /// fsync will cover.
    last_lsn: u64,
    /// Set on the first failed flush/fsync; all further writes refuse.
    poisoned: Option<String>,
}

impl Wal {
    /// Open (creating if absent) the log at `path` for appending, over
    /// the real filesystem.
    pub fn open(path: impl Into<PathBuf>, sync: SyncMode) -> Result<Wal> {
        Wal::open_with_io(path, sync, StdIo::shared())
    }

    /// Open over an explicit [`Io`] implementation (fault injection).
    pub fn open_with_io(path: impl Into<PathBuf>, sync: SyncMode, io: Arc<dyn Io>) -> Result<Wal> {
        let path = path.into();
        if let Some(dir) = path.parent() {
            io.create_dir_all(dir)?;
        }
        Ok(Wal {
            path,
            io,
            buf: Vec::new(),
            sync,
            appended: 0,
            last_lsn: 0,
            poisoned: None,
        })
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of records appended through this handle.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Highest LSN appended through this handle (0 = none yet).
    pub fn last_lsn(&self) -> u64 {
        self.last_lsn
    }

    /// Whether a failed flush/fsync has poisoned this log handle.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    /// The typed error every operation returns once poisoned.
    fn poison_err(&self) -> Option<Error> {
        self.poisoned
            .as_ref()
            .map(|reason| Error::WalPoisoned(reason.clone()))
    }

    /// Record a write/sync failure: the file's durable contents are now
    /// indeterminate, so the handle refuses all further traffic.
    fn poison(&mut self, e: Error) -> Error {
        if self.poisoned.is_none() {
            self.poisoned = Some(e.to_string());
        }
        e
    }

    /// Push the user-space buffer to the OS cache.
    fn spill(&mut self) -> Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        match self.io.append(&self.path, &self.buf) {
            Ok(()) => {
                self.buf.clear();
                Ok(())
            }
            Err(e) => Err(self.poison(e)),
        }
    }

    /// Append one record under the given global LSN (framing + CRC over
    /// `lsn ‖ payload`). Durability is controlled by [`Wal::sync_commit`],
    /// which callers invoke at commit points.
    pub fn append(&mut self, lsn: u64, rec: &WalRecord) -> Result<()> {
        if let Some(e) = self.poison_err() {
            return Err(e);
        }
        let payload = rec.encode();
        let mut body = Vec::with_capacity(8 + payload.len());
        put_u64(&mut body, lsn);
        body.extend_from_slice(&payload);
        put_u32(&mut self.buf, payload.len() as u32);
        put_u32(&mut self.buf, crc32(&body));
        self.buf.extend_from_slice(&body);
        self.appended += 1;
        self.last_lsn = self.last_lsn.max(lsn);
        if self.buf.len() >= SPILL_BYTES {
            self.spill()?;
        }
        Ok(())
    }

    /// Make previously appended records durable per the sync mode.
    pub fn sync_commit(&mut self) -> Result<()> {
        if let Some(e) = self.poison_err() {
            return Err(e);
        }
        match self.sync {
            SyncMode::NoSync => Ok(()),
            SyncMode::Flush => self.spill(),
            SyncMode::Fsync => {
                self.spill()?;
                match self.io.sync(&self.path) {
                    Ok(()) => Ok(()),
                    Err(e) => Err(self.poison(e)),
                }
            }
        }
    }

    /// Discard buffered records and truncate the log to zero length
    /// (after a checkpoint has captured all state).
    pub fn reset(&mut self) -> Result<()> {
        if let Some(e) = self.poison_err() {
            return Err(e);
        }
        self.buf.clear();
        match self.io.truncate(&self.path, 0) {
            Ok(()) => Ok(()),
            Err(e) => Err(self.poison(e)),
        }
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        // Best-effort flush so NoSync logs survive a clean drop, as the
        // old BufWriter-backed writer did. Errors are unreportable here.
        if self.poisoned.is_none() {
            let _ = self.spill();
        }
    }
}

/// Read every intact record from a log file. Stops cleanly at a torn tail;
/// returns `(lsn, record)` pairs and the count of bytes of valid prefix.
pub fn replay(path: &Path) -> Result<(Vec<(u64, WalRecord)>, u64)> {
    let mut data = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut data)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((vec![], 0)),
        Err(e) => return Err(e.into()),
    }
    Ok(replay_bytes(&data))
}

/// Replay from an in-memory image of the log file: every intact record
/// tagged with its global LSN, plus the byte length of the valid prefix
/// (the engine truncates the file to that length before appending new
/// records, so a torn or corrupt tail can never strand later appends
/// behind it).
pub fn replay_bytes(data: &[u8]) -> (Vec<(u64, WalRecord)>, u64) {
    // A short slice reads as `None`, which ends replay exactly like a
    // torn tail would.
    fn le_u32(data: &[u8], pos: usize) -> Option<u32> {
        let b: [u8; 4] = data.get(pos..pos + 4)?.try_into().ok()?;
        Some(u32::from_le_bytes(b))
    }
    fn le_u64(data: &[u8], pos: usize) -> Option<u64> {
        let b: [u8; 8] = data.get(pos..pos + 8)?.try_into().ok()?;
        Some(u64::from_le_bytes(b))
    }
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos + 16 <= data.len() {
        let (Some(len), Some(crc)) = (le_u32(data, pos), le_u32(data, pos + 4)) else {
            break; // torn tail
        };
        let len = len as usize;
        let start = pos + 8; // start of [lsn][payload]
        let end = match start.checked_add(8 + len) {
            Some(e) if e <= data.len() => e,
            _ => break, // torn tail
        };
        let body = &data[start..end];
        if crc32(body) != crc {
            break; // corrupt tail
        }
        let Some(lsn) = le_u64(data, start) else {
            break; // unreachable given the length check; treat as torn
        };
        match WalRecord::decode(&body[8..]) {
            Ok(rec) => records.push((lsn, rec)),
            Err(_) => break,
        }
        pos = end;
    }
    (records, pos as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamrel_types::{row, Column, DataType};

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("streamrel-wal-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    fn sample_records() -> Vec<WalRecord> {
        let schema = Schema::new(vec![
            Column::not_null("url", DataType::Text),
            Column::new("hits", DataType::Int),
        ])
        .unwrap();
        vec![
            WalRecord::CreateTable {
                id: 7,
                name: "urls".into(),
                schema,
            },
            WalRecord::Begin { xid: 2 },
            WalRecord::Insert {
                xid: 2,
                table: 7,
                slot: 0,
                row: row!["/index", 3i64],
            },
            WalRecord::Delete {
                xid: 2,
                table: 7,
                slot: 0,
            },
            WalRecord::Commit { xid: 2 },
            WalRecord::CatalogPut {
                key: "stream.url_stream".into(),
                value: "CREATE STREAM url_stream (...)".into(),
            },
            WalRecord::Truncate { table: 7, xid: 3 },
            WalRecord::Abort { xid: 3 },
            WalRecord::CatalogDel {
                key: "stream.url_stream".into(),
            },
            WalRecord::CatalogPutTxn {
                xid: 4,
                key: "cq_watermark.urls_now".into(),
                value: "60000000".into(),
            },
            WalRecord::Epoch { epoch: 3, shard: 2 },
            WalRecord::DropTable { id: 7 },
        ]
    }

    /// Append `recs` with LSNs 1..=n through a fresh handle.
    fn append_all(wal: &mut Wal, recs: &[WalRecord]) {
        for (i, r) in recs.iter().enumerate() {
            wal.append(i as u64 + 1, r).unwrap();
        }
    }

    /// Strip LSNs from a replay result.
    fn recs_of(pairs: Vec<(u64, WalRecord)>) -> Vec<WalRecord> {
        pairs.into_iter().map(|(_, r)| r).collect()
    }

    #[test]
    fn record_encoding_roundtrips() {
        for rec in sample_records() {
            let enc = rec.encode();
            assert_eq!(WalRecord::decode(&enc).unwrap(), rec, "{rec:?}");
        }
    }

    #[test]
    fn append_and_replay() {
        let path = tmp("roundtrip");
        let recs = sample_records();
        {
            let mut wal = Wal::open(&path, SyncMode::Flush).unwrap();
            append_all(&mut wal, &recs);
            assert_eq!(wal.last_lsn(), recs.len() as u64);
            wal.sync_commit().unwrap();
        }
        let (got, _) = replay(&path).unwrap();
        let lsns: Vec<u64> = got.iter().map(|(l, _)| *l).collect();
        assert_eq!(lsns, (1..=recs.len() as u64).collect::<Vec<_>>());
        assert_eq!(recs_of(got), recs);
    }

    #[test]
    fn replay_missing_file_is_empty() {
        let path = tmp("missing");
        std::fs::remove_file(&path).ok();
        let (got, bytes) = replay(&path).unwrap();
        assert!(got.is_empty());
        assert_eq!(bytes, 0);
    }

    #[test]
    fn torn_tail_is_tolerated() {
        let path = tmp("torn");
        let recs = sample_records();
        {
            let mut wal = Wal::open(&path, SyncMode::Flush).unwrap();
            append_all(&mut wal, &recs);
            wal.sync_commit().unwrap();
        }
        // Chop off the last 3 bytes: final record is torn.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 3]).unwrap();
        let (got, _) = replay(&path).unwrap();
        assert_eq!(got.len(), recs.len() - 1);
        assert_eq!(recs_of(got)[..], recs[..recs.len() - 1]);
    }

    #[test]
    fn corrupt_crc_stops_replay() {
        let path = tmp("crc");
        let recs = sample_records();
        {
            let mut wal = Wal::open(&path, SyncMode::Flush).unwrap();
            append_all(&mut wal, &recs);
            wal.sync_commit().unwrap();
        }
        let mut data = std::fs::read(&path).unwrap();
        // Flip a byte inside the second record's payload. A frame is
        // `[u32 len][u32 crc][u64 lsn][payload]`: 16 bytes of header+lsn.
        let first_len = u32::from_le_bytes(data[0..4].try_into().unwrap()) as usize;
        let idx = (16 + first_len) + 16 + 1;
        data[idx] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        let (got, _) = replay(&path).unwrap();
        assert_eq!(got.len(), 1, "only the first record survives");
    }

    #[test]
    fn reset_truncates() {
        let path = tmp("reset");
        let mut wal = Wal::open(&path, SyncMode::Flush).unwrap();
        append_all(&mut wal, &sample_records());
        wal.sync_commit().unwrap();
        wal.reset().unwrap();
        wal.append(40, &WalRecord::Begin { xid: 99 }).unwrap();
        wal.sync_commit().unwrap();
        drop(wal);
        let (got, _) = replay(&path).unwrap();
        assert_eq!(got, vec![(40, WalRecord::Begin { xid: 99 })]);
    }

    #[test]
    fn fsync_mode_works() {
        let path = tmp("fsync");
        let mut wal = Wal::open(&path, SyncMode::Fsync).unwrap();
        wal.append(1, &WalRecord::Begin { xid: 5 }).unwrap();
        wal.sync_commit().unwrap();
        let (got, _) = replay(&path).unwrap();
        assert_eq!(got.len(), 1);
    }

    /// An [`Io`] whose fsync fails once; everything else passes through
    /// to the real filesystem.
    struct FailingSyncIo {
        inner: StdIo,
        fail_next_sync: parking_lot::Mutex<bool>,
    }

    impl Io for FailingSyncIo {
        fn create_dir_all(&self, path: &Path) -> Result<()> {
            self.inner.create_dir_all(path)
        }
        fn read(&self, path: &Path) -> Result<Option<Vec<u8>>> {
            self.inner.read(path)
        }
        fn append(&self, path: &Path, data: &[u8]) -> Result<()> {
            self.inner.append(path, data)
        }
        fn sync(&self, path: &Path) -> Result<()> {
            if std::mem::take(&mut *self.fail_next_sync.lock()) {
                return Err(Error::Io("injected fsync EIO".into()));
            }
            self.inner.sync(path)
        }
        fn truncate(&self, path: &Path, len: u64) -> Result<()> {
            self.inner.truncate(path, len)
        }
        fn replace(&self, path: &Path, data: &[u8]) -> Result<()> {
            self.inner.replace(path, data)
        }
    }

    #[test]
    fn failed_fsync_poisons_the_log() {
        let path = tmp("poison");
        let io = Arc::new(FailingSyncIo {
            inner: StdIo::new(),
            fail_next_sync: parking_lot::Mutex::new(false),
        });
        let mut wal = Wal::open_with_io(&path, SyncMode::Fsync, io.clone()).unwrap();
        wal.append(1, &WalRecord::Begin { xid: 1 }).unwrap();
        wal.sync_commit().unwrap();

        *io.fail_next_sync.lock() = true;
        wal.append(2, &WalRecord::Begin { xid: 2 }).unwrap();
        let first = wal.sync_commit().unwrap_err();
        assert!(matches!(first, Error::Io(_)), "first failure is the cause");
        assert!(wal.is_poisoned());

        // Every subsequent operation returns the typed poison error; the
        // file never sees another byte.
        for op in [
            wal.append(3, &WalRecord::Begin { xid: 3 }),
            wal.sync_commit(),
            wal.reset(),
        ] {
            assert!(matches!(op.unwrap_err(), Error::WalPoisoned(_)));
        }
        drop(wal); // drop must not attempt to spill a poisoned buffer
        let (got, _) = replay(&path).unwrap();
        let got = recs_of(got);
        // xid 2 may or may not be durable (it reached the OS cache before
        // the failed fsync); xid 3 must not be.
        assert!(got.iter().all(|r| *r != WalRecord::Begin { xid: 3 }));
        assert!(got.contains(&WalRecord::Begin { xid: 1 }));
    }
}
