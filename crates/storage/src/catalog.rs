//! Storage-level catalog: tables, their heaps and indexes, plus a generic
//! persistent key/value area used by the upper layers to store stream,
//! view and channel DDL (replayed after storage recovery — the paper's
//! "leverage large portions of existing DBMS code" in miniature, §4).

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use streamrel_types::{Error, Result, Schema};

use crate::heap::HeapTable;
use crate::index::OrderedIndex;

/// Shared schema handle.
pub type SchemaRef = Arc<Schema>;

/// A named index attached to a table.
pub struct NamedIndex {
    /// Index name (unique per engine).
    pub name: String,
    /// The index structure.
    pub index: OrderedIndex,
}

/// Everything the engine knows about one table.
pub struct TableMeta {
    /// Stable numeric id (WAL records reference this).
    pub id: u32,
    /// Table name (case-insensitive unique).
    pub name: String,
    /// Column definitions.
    pub schema: SchemaRef,
    /// The versioned heap.
    pub heap: HeapTable,
    /// Secondary indexes.
    pub indexes: RwLock<Vec<Arc<NamedIndex>>>,
}

/// In-memory catalog; persistence is handled by the engine via WAL records
/// and checkpoints.
#[derive(Default)]
pub struct Catalog {
    by_name: RwLock<HashMap<String, u32>>,
    by_id: RwLock<HashMap<u32, Arc<TableMeta>>>,
    next_id: AtomicU32,
    kv: RwLock<BTreeMap<String, String>>,
}

impl Catalog {
    /// Empty catalog; table ids start at 1.
    pub fn new() -> Catalog {
        Catalog {
            next_id: AtomicU32::new(1),
            ..Default::default()
        }
    }

    /// Register a new table under a fresh id.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<Arc<TableMeta>> {
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        self.create_table_with_id(id, name, schema)
    }

    /// Register a table under an explicit id (WAL replay / checkpoint load).
    pub fn create_table_with_id(
        &self,
        id: u32,
        name: &str,
        schema: Schema,
    ) -> Result<Arc<TableMeta>> {
        let key = name.to_ascii_lowercase();
        let mut by_name = self.by_name.write();
        let mut by_id = self.by_id.write();
        if by_name.contains_key(&key) {
            return Err(Error::catalog(format!("table `{name}` already exists")));
        }
        if by_id.contains_key(&id) {
            return Err(Error::catalog(format!("table id {id} already exists")));
        }
        // Keep the id allocator ahead of explicit ids.
        let mut cur = self.next_id.load(Ordering::SeqCst);
        while cur <= id {
            match self
                .next_id
                .compare_exchange(cur, id + 1, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        let meta = Arc::new(TableMeta {
            id,
            name: name.to_string(),
            schema: Arc::new(schema),
            heap: HeapTable::new(id),
            indexes: RwLock::new(Vec::new()),
        });
        by_name.insert(key, id);
        by_id.insert(id, Arc::clone(&meta));
        Ok(meta)
    }

    /// Remove a table by id. Returns its meta for final cleanup.
    pub fn drop_table(&self, id: u32) -> Result<Arc<TableMeta>> {
        let mut by_name = self.by_name.write();
        let mut by_id = self.by_id.write();
        let meta = by_id
            .remove(&id)
            .ok_or_else(|| Error::catalog(format!("no table with id {id}")))?;
        by_name.remove(&meta.name.to_ascii_lowercase());
        Ok(meta)
    }

    /// Look up a table by name.
    pub fn table_by_name(&self, name: &str) -> Result<Arc<TableMeta>> {
        let id = *self
            .by_name
            .read()
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| Error::catalog(format!("table `{name}` does not exist")))?;
        self.table_by_id(id)
    }

    /// Look up a table by id.
    pub fn table_by_id(&self, id: u32) -> Result<Arc<TableMeta>> {
        self.by_id
            .read()
            .get(&id)
            .cloned()
            .ok_or_else(|| Error::catalog(format!("no table with id {id}")))
    }

    /// True if a table with this name exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.by_name.read().contains_key(&name.to_ascii_lowercase())
    }

    /// All tables, ordered by id.
    pub fn all_tables(&self) -> Vec<Arc<TableMeta>> {
        let mut v: Vec<_> = self.by_id.read().values().cloned().collect();
        v.sort_by_key(|m| m.id);
        v
    }

    /// Set a persistent catalog key (engine logs it).
    pub fn kv_put(&self, key: &str, value: &str) {
        self.kv.write().insert(key.to_string(), value.to_string());
    }

    /// Read a catalog key.
    pub fn kv_get(&self, key: &str) -> Option<String> {
        self.kv.read().get(key).cloned()
    }

    /// Delete a catalog key; returns whether it existed.
    pub fn kv_del(&self, key: &str) -> bool {
        self.kv.write().remove(key).is_some()
    }

    /// All `(key, value)` pairs whose key starts with `prefix`, key-ordered.
    pub fn kv_scan(&self, prefix: &str) -> Vec<(String, String)> {
        self.kv
            .read()
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamrel_types::{Column, DataType};

    fn schema() -> Schema {
        Schema::new(vec![Column::new("a", DataType::Int)]).unwrap()
    }

    #[test]
    fn create_and_lookup() {
        let c = Catalog::new();
        let t = c.create_table("Events", schema()).unwrap();
        assert_eq!(t.id, 1);
        assert_eq!(c.table_by_name("events").unwrap().id, 1);
        assert_eq!(c.table_by_name("EVENTS").unwrap().id, 1);
        assert!(c.has_table("events"));
        assert!(!c.has_table("other"));
    }

    #[test]
    fn duplicate_rejected() {
        let c = Catalog::new();
        c.create_table("t", schema()).unwrap();
        assert!(c.create_table("T", schema()).is_err());
    }

    #[test]
    fn explicit_id_bumps_allocator() {
        let c = Catalog::new();
        c.create_table_with_id(10, "a", schema()).unwrap();
        let t = c.create_table("b", schema()).unwrap();
        assert!(t.id > 10);
    }

    #[test]
    fn drop_frees_name() {
        let c = Catalog::new();
        let t = c.create_table("t", schema()).unwrap();
        c.drop_table(t.id).unwrap();
        assert!(!c.has_table("t"));
        assert!(c.table_by_id(t.id).is_err());
        c.create_table("t", schema()).unwrap();
    }

    #[test]
    fn kv_roundtrip_and_prefix_scan() {
        let c = Catalog::new();
        c.kv_put("stream.s1", "CREATE STREAM s1");
        c.kv_put("stream.s2", "CREATE STREAM s2");
        c.kv_put("view.v1", "CREATE VIEW v1");
        assert_eq!(c.kv_get("stream.s1").as_deref(), Some("CREATE STREAM s1"));
        let streams = c.kv_scan("stream.");
        assert_eq!(streams.len(), 2);
        assert_eq!(streams[0].0, "stream.s1");
        assert!(c.kv_del("stream.s1"));
        assert!(!c.kv_del("stream.s1"));
        assert_eq!(c.kv_scan("stream.").len(), 1);
    }
}
