//! The storage I/O abstraction.
//!
//! Every byte the engine persists — WAL appends, fsyncs, checkpoint
//! images, tail truncation — flows through the [`Io`] trait. Production
//! uses [`StdIo`] (a thin veneer over `std::fs`); the `streamrel-faults`
//! crate implements the same trait over a simulated disk with a seeded
//! fault schedule, which is how the crash-recovery torture harness can
//! crash the engine at *every* I/O operation deterministically and prove
//! recovery correct (DESIGN.md §10).
//!
//! The trait deliberately models the durability boundary of a real
//! filesystem: [`Io::append`] lands bytes in the "OS cache" (survives a
//! process crash, not power loss), [`Io::sync`] is the fsync barrier, and
//! [`Io::replace`] is the atomic tmp-write/fsync/rename idiom used for
//! checkpoints. Fault implementations are free to lose or tear anything
//! that was appended but never synced.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;
use streamrel_obs::Registry;
use streamrel_types::Result;

/// The storage I/O surface. Implementations must be shareable across the
/// engine's threads (the WAL mutex serializes log traffic; checkpointing
/// and recovery are single-threaded by construction).
pub trait Io: Send + Sync {
    /// Create `path` as a directory, including parents (idempotent).
    fn create_dir_all(&self, path: &Path) -> Result<()>;

    /// Full contents of `path`, or `None` if the file does not exist.
    fn read(&self, path: &Path) -> Result<Option<Vec<u8>>>;

    /// Append `data` to `path` (creating it if absent). The bytes reach
    /// the OS cache, not necessarily the platter — call [`Io::sync`] at
    /// durability points.
    fn append(&self, path: &Path, data: &[u8]) -> Result<()>;

    /// Durability barrier: all previously appended bytes of `path` are on
    /// stable storage when this returns `Ok`. A failure leaves the file's
    /// durable state *indeterminate* (fsyncgate semantics) — callers must
    /// treat the handle as unusable, not retry.
    fn sync(&self, path: &Path) -> Result<()>;

    /// Truncate `path` to exactly `len` bytes, durably (used to cut a
    /// torn WAL tail before appending fresh records after recovery).
    fn truncate(&self, path: &Path, len: u64) -> Result<()>;

    /// Atomically replace `path` with `data` (write to a sibling temp
    /// file, fsync, rename). After `Ok`, a crash observes either the old
    /// or the new contents, never a mix.
    fn replace(&self, path: &Path, data: &[u8]) -> Result<()>;

    /// Bind the engine's metrics registry. Fault-injecting
    /// implementations register their `fault.injected.*` counters here;
    /// the default is a no-op.
    fn bind_metrics(&self, _registry: &Arc<Registry>) {}
}

/// Passthrough [`Io`] over the real filesystem.
///
/// Append handles are cached per path so the per-commit hot path costs
/// one `write(2)` (plus `fdatasync` under `SyncMode::Fsync`), matching
/// the pre-trait `BufWriter<File>` behaviour. `truncate`/`replace`
/// invalidate the cached handle for their path.
#[derive(Default)]
pub struct StdIo {
    handles: Mutex<HashMap<PathBuf, File>>,
}

impl StdIo {
    /// A fresh handle cache.
    pub fn new() -> StdIo {
        StdIo::default()
    }

    /// Shared trait object, ready for [`crate::StorageEngine::open_with_io`].
    pub fn shared() -> Arc<dyn Io> {
        Arc::new(StdIo::new())
    }

    /// Run `f` with the cached append handle for `path`, opening one if
    /// needed.
    fn with_handle<T>(
        &self,
        path: &Path,
        f: impl FnOnce(&mut File) -> std::io::Result<T>,
    ) -> Result<T> {
        let mut handles = self.handles.lock();
        if !handles.contains_key(path) {
            let file = OpenOptions::new().create(true).append(true).open(path)?;
            handles.insert(path.to_path_buf(), file);
        }
        match handles.get_mut(path) {
            Some(file) => Ok(f(file)?),
            None => Err(streamrel_types::Error::storage("append handle vanished")),
        }
    }
}

impl Io for StdIo {
    fn create_dir_all(&self, path: &Path) -> Result<()> {
        Ok(std::fs::create_dir_all(path)?)
    }

    fn read(&self, path: &Path) -> Result<Option<Vec<u8>>> {
        match File::open(path) {
            Ok(mut f) => {
                let mut data = Vec::new();
                f.read_to_end(&mut data)?;
                Ok(Some(data))
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn append(&self, path: &Path, data: &[u8]) -> Result<()> {
        self.with_handle(path, |f| f.write_all(data))
    }

    fn sync(&self, path: &Path) -> Result<()> {
        self.with_handle(path, |f| f.sync_data())
    }

    fn truncate(&self, path: &Path, len: u64) -> Result<()> {
        self.handles.lock().remove(path);
        // truncate(false): `set_len` below cuts to exactly `len`; opening
        // with truncation would wipe the prefix we intend to keep.
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(path)?;
        file.set_len(len)?;
        file.sync_data()?;
        Ok(())
    }

    fn replace(&self, path: &Path, data: &[u8]) -> Result<()> {
        self.handles.lock().remove(path);
        let tmp = path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(data)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("streamrel-io-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_read_roundtrip() {
        let dir = tmp("roundtrip");
        let io = StdIo::new();
        let p = dir.join("f");
        assert_eq!(io.read(&p).unwrap(), None);
        io.append(&p, b"hello ").unwrap();
        io.append(&p, b"world").unwrap();
        io.sync(&p).unwrap();
        assert_eq!(io.read(&p).unwrap().unwrap(), b"hello world");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncate_cuts_tail_and_reopens_for_append() {
        let dir = tmp("truncate");
        let io = StdIo::new();
        let p = dir.join("f");
        io.append(&p, b"0123456789").unwrap();
        io.truncate(&p, 4).unwrap();
        io.append(&p, b"AB").unwrap();
        io.sync(&p).unwrap();
        assert_eq!(io.read(&p).unwrap().unwrap(), b"0123AB");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replace_is_atomic_swap() {
        let dir = tmp("replace");
        let io = StdIo::new();
        let p = dir.join("f");
        io.replace(&p, b"one").unwrap();
        assert_eq!(io.read(&p).unwrap().unwrap(), b"one");
        io.replace(&p, b"two").unwrap();
        assert_eq!(io.read(&p).unwrap().unwrap(), b"two");
        assert!(!p.with_extension("tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
