//! The storage engine: transactions + catalog + WAL + checkpoints.
//!
//! [`StorageEngine`] is the durable half of the stream-relational system.
//! It owns the transaction manager, the table catalog, the write-ahead log
//! and checkpointing. Everything above it (snapshot queries, channels,
//! Active Tables) goes through this API, so stored data really is "simply
//! streaming data that has been entered into persistent structures" (§2.3).

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};
use streamrel_obs::{Gauge, Histogram, Registry};
use streamrel_types::{Error, Result, Row, Schema};

use crate::catalog::{Catalog, NamedIndex, SchemaRef, TableMeta};
use crate::codec::{self, Reader};
use crate::crc::crc32;
use crate::heap::TupleId;
use crate::index::{IndexKey, OrderedIndex};
use crate::io::{Io, StdIo};
use crate::txn::{Snapshot, TxnId, TxnManager, TxnStatus, FROZEN_XID};
use crate::wal::{replay_bytes, Wal, WalRecord};

pub use crate::wal::SyncMode;

const CHECKPOINT_FILE: &str = "checkpoint.dat";
const CHECKPOINT_MAGIC: &[u8; 8] = b"SRCHKPT2";

/// Log file name for commit domain `shard` (DESIGN.md §13).
fn wal_file(shard: usize) -> String {
    format!("wal-{shard}.log")
}

/// Counters exposed for tests, benchmarks and EXPERIMENTS.md tables.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// WAL records appended since open.
    pub wal_records: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Transactions aborted.
    pub aborts: u64,
    /// Rows inserted.
    pub inserts: u64,
    /// Rows deleted.
    pub deletes: u64,
    /// WAL records replayed at open (recovery work).
    pub replayed: u64,
}

/// Group-commit coordination for one commit domain (DESIGN.md §13).
///
/// Commits batch into one append+fsync: whichever committer finds no
/// leader active becomes the leader, fsyncs everything appended so far,
/// then publishes the covered LSN; followers block only until
/// `durable_lsn` reaches their commit's LSN.
struct GroupState {
    /// Highest LSN known durable in this domain's log.
    durable_lsn: u64,
    /// A leader is currently between "claimed leadership" and "published
    /// its fsync result". At most one per domain.
    leader_active: bool,
    /// Commit LSNs appended but not yet covered by a published fsync;
    /// the leader counts how many one fsync absorbed (batch size).
    pending: Vec<u64>,
}

/// One commit domain: an independent WAL file plus its group-commit
/// state and per-shard instruments.
struct WalShard {
    wal: Mutex<Wal>,
    group: Mutex<GroupState>,
    group_cv: Condvar,
    /// `storage.commit_us.shard<k>`.
    commit_hist: Arc<Histogram>,
    /// `storage.wal_sync_us.shard<k>`.
    sync_hist: Arc<Histogram>,
    /// `wal.poisoned.shard<k>`: 0 = healthy, 1 = this domain's log
    /// refused further writes after a failed flush/fsync.
    poisoned_gauge: Arc<Gauge>,
}

impl WalShard {
    fn new(shard: usize, wal: Wal, durable_lsn: u64, metrics: &Registry) -> WalShard {
        WalShard {
            wal: Mutex::named("storage.wal", wal),
            group: Mutex::named(
                "storage.group",
                GroupState {
                    durable_lsn,
                    leader_active: false,
                    pending: Vec::new(),
                },
            ),
            group_cv: Condvar::new(),
            commit_hist: metrics.histogram(&format!("storage.commit_us.shard{shard}")),
            sync_hist: metrics.histogram(&format!("storage.wal_sync_us.shard{shard}")),
            poisoned_gauge: metrics.gauge(&format!("wal.poisoned.shard{shard}")),
        }
    }
}

// lock-order: epoch < wal < group < stats
//
// Commit paths append to the WAL, coordinate through the group-commit
// state, then bump the counters; never hold `stats` while taking `wal`
// or `group` (streamrel-lint enforces this per function). The group
// leader releases `wal` before taking `group` to publish its result, so
// followers can keep appending while an fsync is in flight. The
// checkpoint epoch is read before (and never while) holding `wal`.
/// The durable storage engine.
pub struct StorageEngine {
    dir: Option<PathBuf>,
    txns: TxnManager,
    catalog: Catalog,
    /// One WAL per commit domain (`wal-<k>.log`); empty for in-memory
    /// engines. Transactions are routed to a domain at `begin_on` and
    /// confined to it, so commit atomicity stays a single-file property
    /// and domains fsync independently.
    wals: Vec<WalShard>,
    /// All file traffic (WAL, checkpoints) goes through this seam; the
    /// fault-injection harness substitutes a simulated disk here.
    io: Arc<dyn Io>,
    /// Checkpoint generation. Bumped by every successful checkpoint and
    /// stamped into the checkpoint body and the first record of every
    /// log so recovery can tell a stale log (crash between checkpoint
    /// rename and that log's reset) from a live one. See DESIGN.md §10/§13.
    epoch: Mutex<u64>,
    /// Global log sequence number allocator. Every record in every log
    /// carries one; recovery merges all logs in LSN order to rebuild a
    /// single serial history. Allocated under the destination log's
    /// `wal` lock so each log's `last_lsn` always covers its buffer.
    next_lsn: AtomicU64,
    stats: Mutex<EngineStats>,
    /// Engine-wide metrics registry; every layer above shares this handle.
    metrics: Arc<Registry>,
    /// Cached instruments so the hot commit path skips the registry map.
    commit_hist: Arc<Histogram>,
    wal_sync_hist: Arc<Histogram>,
    /// `wal.group_commit.batch_size`: commits absorbed per fsync.
    batch_hist: Arc<Histogram>,
    /// Count of poisoned commit domains (0 = all healthy). Per-domain
    /// state lives in `wal.poisoned.shard<k>`. Registered at open so the
    /// row is always present in `streamrel_metrics`.
    wal_poisoned: Arc<Gauge>,
}

impl StorageEngine {
    /// Open (or create) an engine rooted at `dir` with the default
    /// [`SyncMode::Flush`] durability.
    pub fn open(dir: impl Into<PathBuf>) -> Result<StorageEngine> {
        Self::open_with(dir, SyncMode::Flush)
    }

    /// Open with an explicit durability mode. Loads the checkpoint (if any)
    /// and replays the WAL: this is crash recovery for durable state.
    pub fn open_with(dir: impl Into<PathBuf>, sync: SyncMode) -> Result<StorageEngine> {
        Self::open_with_io(dir, sync, StdIo::shared())
    }

    /// Open against an explicit [`Io`] implementation with a single
    /// commit domain. This is the seam the crash-recovery torture
    /// harness uses: `streamrel-faults` passes a simulated disk here and
    /// crashes the engine at every I/O operation in turn (DESIGN.md §10).
    /// Production paths use [`StdIo`].
    pub fn open_with_io(
        dir: impl Into<PathBuf>,
        sync: SyncMode,
        io: Arc<dyn Io>,
    ) -> Result<StorageEngine> {
        Self::open_with_opts(dir, sync, io, 1)
    }

    /// Open with `wal_shards` independent commit domains (`wal-<k>.log`
    /// each; clamped to at least 1). Recovery reads *every* log present
    /// on disk — including logs beyond `wal_shards` left by a previous
    /// open with more domains — discards per-log stale ones (epoch older
    /// than the checkpoint's expectation for that shard), then merges the
    /// survivors' records in global-LSN order into one serial replay.
    pub fn open_with_opts(
        dir: impl Into<PathBuf>,
        sync: SyncMode,
        io: Arc<dyn Io>,
        wal_shards: usize,
    ) -> Result<StorageEngine> {
        let wal_shards = wal_shards.max(1);
        let dir = dir.into();
        io.create_dir_all(&dir)?;
        let metrics = Arc::new(Registry::default());
        io.bind_metrics(&metrics);
        let commit_hist = metrics.histogram("storage.commit_us");
        let wal_sync_hist = metrics.histogram("storage.wal_sync_us");
        let batch_hist = metrics.histogram("wal.group_commit.batch_size");
        let wal_poisoned = metrics.gauge("wal.poisoned");
        let engine = StorageEngine {
            dir: Some(dir.clone()),
            txns: TxnManager::new(),
            catalog: Catalog::new(),
            wals: Vec::new(),
            io: io.clone(),
            epoch: Mutex::named("storage.epoch", 0),
            next_lsn: AtomicU64::new(1),
            stats: Mutex::named("storage.stats", EngineStats::default()),
            metrics,
            commit_hist,
            wal_sync_hist,
            batch_hist,
            wal_poisoned,
        };
        let shard_epochs = engine.load_checkpoint(&dir.join(CHECKPOINT_FILE))?;
        let ck_epoch = *engine.epoch.lock();
        let expected_epoch = |shard: usize| -> u64 {
            shard_epochs
                .iter()
                .find(|(s, _)| *s == shard as u32)
                .map(|(_, e)| *e)
                .unwrap_or(ck_epoch)
        };
        // Probe every log on disk. Logs below `wal_shards` always get a
        // handle; logs beyond it (a previous open used more domains) are
        // still replayed — their records are part of durable state until
        // a checkpoint with a newer epoch supersedes them.
        let mut merged: Vec<(u64, WalRecord)> = Vec::new();
        let mut needs_stamp = vec![false; wal_shards];
        let mut k = 0usize;
        loop {
            let path = dir.join(wal_file(k));
            let bytes = match io.read(&path)? {
                Some(b) => b,
                None if k < wal_shards => {
                    // Fresh log: stamp the current epoch below so the
                    // next recovery can trust its contents.
                    needs_stamp[k] = true;
                    k += 1;
                    continue;
                }
                None => break,
            };
            let (records, valid_len) = replay_bytes(&bytes);
            // Every log opens with an `Epoch` stamp. One older than the
            // checkpoint's expectation for this shard means the crash
            // landed between the checkpoint rename and this log's reset:
            // those records are already in the checkpoint, and replaying
            // them over its renumbered heap slots would corrupt the
            // image — discard *this log only*.
            let log_epoch = match records.first() {
                Some((_, WalRecord::Epoch { epoch, .. })) => *epoch,
                _ => 0,
            };
            let stale = !records.is_empty() && log_epoch < expected_epoch(k);
            if stale {
                io.truncate(&path, 0)?;
                if k < wal_shards {
                    needs_stamp[k] = true;
                }
            } else {
                if (valid_len as usize) < bytes.len() {
                    // Torn tail from a mid-append crash: cut it so fresh
                    // appends do not land behind a CRC-invalid region.
                    io.truncate(&path, valid_len)?;
                }
                if records.is_empty() && k < wal_shards {
                    needs_stamp[k] = true;
                }
                merged.extend(records);
            }
            k += 1;
        }
        // Stitch the consistent cut: one serial history in LSN order.
        // A transaction is confined to one log, so a commit record either
        // survived (all its records sort before it) or the whole txn
        // replays as in-flight → aborted.
        merged.sort_by_key(|(lsn, _)| *lsn);
        let max_lsn = merged.last().map(|(lsn, _)| *lsn).unwrap_or(0);
        engine.next_lsn.store(max_lsn + 1, Ordering::SeqCst);
        let records: Vec<WalRecord> = merged.into_iter().map(|(_, rec)| rec).collect();
        let replayed = engine.apply_wal_records(records)?;
        engine.stats.lock().replayed = replayed;
        engine.rebuild_indexes();
        let mut wals = Vec::with_capacity(wal_shards);
        for (shard, stamp) in needs_stamp.iter().copied().enumerate() {
            let mut wal = Wal::open_with_io(dir.join(wal_file(shard)), sync, io.clone())?;
            if stamp {
                let lsn = engine.next_lsn.fetch_add(1, Ordering::SeqCst);
                wal.append(
                    lsn,
                    &WalRecord::Epoch {
                        epoch: ck_epoch,
                        shard: shard as u32,
                    },
                )?;
                wal.sync_commit()?;
            }
            let durable = wal.last_lsn();
            wals.push(WalShard::new(shard, wal, durable, &engine.metrics));
        }
        let engine = StorageEngine { wals, ..engine };
        Ok(engine)
    }

    /// A purely in-memory engine (no WAL, no checkpoints). Used by
    /// baselines and benchmarks where durability is not under test.
    pub fn in_memory() -> StorageEngine {
        let metrics = Arc::new(Registry::default());
        let commit_hist = metrics.histogram("storage.commit_us");
        let wal_sync_hist = metrics.histogram("storage.wal_sync_us");
        let batch_hist = metrics.histogram("wal.group_commit.batch_size");
        let wal_poisoned = metrics.gauge("wal.poisoned");
        StorageEngine {
            dir: None,
            txns: TxnManager::new(),
            catalog: Catalog::new(),
            wals: Vec::new(),
            io: StdIo::shared(),
            epoch: Mutex::named("storage.epoch", 0),
            next_lsn: AtomicU64::new(1),
            stats: Mutex::named("storage.stats", EngineStats::default()),
            metrics,
            commit_hist,
            wal_sync_hist,
            batch_hist,
            wal_poisoned,
        }
    }

    /// The data directory, if durable.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Engine statistics snapshot.
    pub fn stats(&self) -> EngineStats {
        *self.stats.lock()
    }

    /// The engine-wide metrics registry. Layers above the storage engine
    /// register their own instruments here so one `SELECT * FROM
    /// streamrel_metrics` sees the whole stack.
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.metrics
    }

    /// The transaction manager (CQ layer pins snapshots through this).
    pub fn txns(&self) -> &TxnManager {
        &self.txns
    }

    /// Number of commit domains (0 for in-memory engines).
    pub fn wal_shards(&self) -> usize {
        self.wals.len()
    }

    /// Clamp a requested commit domain to the configured range.
    fn clamp_domain(&self, domain: usize) -> usize {
        if self.wals.is_empty() {
            0
        } else {
            domain % self.wals.len()
        }
    }

    /// Scope a poison error to the commit domain it came from, so one
    /// shard's failure never reads as whole-engine poisoning.
    fn scope_err(&self, domain: usize, e: Error) -> Error {
        match e {
            Error::WalPoisoned(m) if !m.starts_with("shard ") => {
                Error::WalPoisoned(format!("shard {domain}: {m}"))
            }
            other => other,
        }
    }

    /// Settle the poison gauges after domain `domain` refused a write:
    /// its per-shard gauge goes to 1, the global gauge becomes the count
    /// of poisoned domains. Call without holding `wal`/`group` locks.
    fn note_poisoned(&self, domain: usize) {
        if let Some(shard) = self.wals.get(domain) {
            shard.poisoned_gauge.set(1);
        }
        let n = self
            .wals
            .iter()
            .filter(|s| s.poisoned_gauge.get() != 0)
            .count();
        self.wal_poisoned.set(n as i64);
    }

    /// Append one record to domain `domain` under a fresh global LSN.
    /// The LSN is allocated under the log's lock so `Wal::last_lsn`
    /// always covers every record buffered in that log — a group-commit
    /// leader's fsync target can never miss an allocated-but-unappended
    /// commit. Returns the record's LSN (0 for in-memory engines).
    fn log_on(&self, domain: usize, rec: &WalRecord) -> Result<u64> {
        let Some(shard) = self.wals.get(domain) else {
            return Ok(0);
        };
        let mut w = shard.wal.lock();
        let lsn = self.next_lsn.fetch_add(1, Ordering::SeqCst);
        if let Err(e) = w.append(lsn, rec) {
            let poisoned = w.is_poisoned();
            drop(w);
            if poisoned {
                self.note_poisoned(domain);
            }
            return Err(self.scope_err(domain, e));
        }
        if matches!(rec, WalRecord::Commit { .. }) {
            // Register for batch accounting while still holding `wal`:
            // no leader can capture a target covering this commit before
            // it is pending, so every commit lands in exactly one batch
            // and `sum(wal.group_commit.batch_size) == commits`.
            shard.group.lock().pending.push(lsn);
        }
        drop(w);
        self.stats.lock().wal_records += 1;
        Ok(lsn)
    }

    /// Block until `lsn` is durable in `domain`, joining (or leading) a
    /// group commit. See DESIGN.md §13 for the leader/follower protocol.
    fn sync_domain_to(&self, domain: usize, lsn: u64) -> Result<()> {
        let Some(shard) = self.wals.get(domain) else {
            return Ok(());
        };
        loop {
            let mut g = shard.group.lock();
            if g.durable_lsn >= lsn {
                return Ok(());
            }
            if !g.leader_active {
                g.leader_active = true;
                drop(g);
                // Lead one fsync round, then loop to re-check coverage
                // (our own append is always ≤ the target we synced, so
                // a successful round exits on the next iteration).
                self.group_lead(domain, shard)?;
            } else {
                shard.group_cv.wait(&mut g);
            }
        }
    }

    /// One leader round of the group-commit protocol: capture the log's
    /// append horizon, fsync it, publish the covered LSN and wake
    /// followers. On failure the domain is poisoned and every waiter
    /// eventually observes the error by leading its own failed round.
    fn group_lead(&self, domain: usize, shard: &WalShard) -> Result<()> {
        let start = Instant::now();
        let mut w = shard.wal.lock();
        let target = w.last_lsn();
        let res = w.sync_commit();
        let poisoned = w.is_poisoned();
        drop(w);
        let mut g = shard.group.lock();
        g.leader_active = false;
        match res {
            Ok(()) => {
                if target > g.durable_lsn {
                    g.durable_lsn = target;
                }
                let batch = g.pending.iter().filter(|&&l| l <= target).count();
                g.pending.retain(|&l| l > target);
                shard.group_cv.notify_all();
                drop(g);
                self.wal_sync_hist.observe_from(start);
                shard.sync_hist.observe_from(start);
                if batch > 0 {
                    self.batch_hist.observe(batch as u64);
                }
                Ok(())
            }
            Err(e) => {
                shard.group_cv.notify_all();
                drop(g);
                if poisoned {
                    self.note_poisoned(domain);
                }
                Err(self.scope_err(domain, e))
            }
        }
    }

    /// Flush/fsync every commit domain's log per its sync mode. Tests and
    /// the checkpoint quiesce path use this to force buffered records to
    /// the OS before a simulated crash.
    pub fn sync_all_wals(&self) -> Result<()> {
        for (domain, shard) in self.wals.iter().enumerate() {
            let mut w = shard.wal.lock();
            if let Err(e) = w.sync_commit() {
                let poisoned = w.is_poisoned();
                drop(w);
                if poisoned {
                    self.note_poisoned(domain);
                }
                return Err(self.scope_err(domain, e));
            }
        }
        Ok(())
    }

    /// True once any commit domain has refused writes after a failed
    /// flush/fsync. The `wal.poisoned` gauge in [`StorageEngine::metrics`]
    /// carries the count of poisoned domains; `wal.poisoned.shard<k>`
    /// the per-domain state.
    pub fn wal_poisoned(&self) -> bool {
        self.wal_poisoned.get() != 0
    }

    /// Commit domains currently refusing writes.
    pub fn wal_poisoned_shards(&self) -> Vec<usize> {
        self.wals
            .iter()
            .enumerate()
            .filter(|(_, s)| s.poisoned_gauge.get() != 0)
            .map(|(k, _)| k)
            .collect()
    }

    // ---- transactions ----------------------------------------------------

    /// Begin a transaction on commit domain 0.
    pub fn begin(&self) -> Result<TxnId> {
        self.begin_on(0)
    }

    /// Begin a transaction pinned to commit domain `domain` (clamped to
    /// the configured range). Every record of the transaction — Begin,
    /// DML, Commit/Abort — lands in that domain's log, so commit
    /// atomicity never spans files.
    pub fn begin_on(&self, domain: usize) -> Result<TxnId> {
        let domain = self.clamp_domain(domain);
        let xid = self.txns.begin_on(domain as u32);
        self.log_on(domain, &WalRecord::Begin { xid })?;
        Ok(xid)
    }

    /// Commit: logs the commit record, makes it durable (joining the
    /// domain's group commit), then flips status.
    pub fn commit(&self, xid: TxnId) -> Result<()> {
        let start = Instant::now();
        let domain = self.txns.domain_of(xid) as usize;
        let lsn = self.log_on(domain, &WalRecord::Commit { xid })?;
        self.sync_domain_to(domain, lsn)?;
        self.txns.commit(xid);
        self.stats.lock().commits += 1;
        self.commit_hist.observe_from(start);
        if let Some(shard) = self.wals.get(domain) {
            shard.commit_hist.observe_from(start);
        }
        Ok(())
    }

    /// Abort: the transaction's inserts/deletes become permanently
    /// invisible (no physical undo needed under MVCC).
    pub fn abort(&self, xid: TxnId) -> Result<()> {
        let domain = self.txns.domain_of(xid) as usize;
        self.log_on(domain, &WalRecord::Abort { xid })?;
        self.txns.abort(xid);
        self.stats.lock().aborts += 1;
        Ok(())
    }

    /// Fresh read-only snapshot.
    pub fn snapshot(&self) -> Snapshot {
        self.txns.snapshot(None)
    }

    /// Snapshot owned by `xid` (sees its own writes).
    pub fn snapshot_for(&self, xid: TxnId) -> Snapshot {
        self.txns.snapshot(Some(xid))
    }

    /// Run `f` inside a fresh transaction, committing on `Ok` and aborting
    /// on `Err`.
    pub fn with_txn<T>(&self, f: impl FnOnce(TxnId) -> Result<T>) -> Result<T> {
        self.with_txn_on(0, f)
    }

    /// [`StorageEngine::with_txn`] pinned to commit domain `domain` —
    /// the shard→log routing used by sharded ingest so concurrent
    /// streams fsync independent logs.
    pub fn with_txn_on<T>(&self, domain: usize, f: impl FnOnce(TxnId) -> Result<T>) -> Result<T> {
        let xid = self.begin_on(domain)?;
        match f(xid) {
            Ok(v) => {
                self.commit(xid)?;
                Ok(v)
            }
            Err(e) => {
                self.abort(xid)?;
                Err(e)
            }
        }
    }

    // ---- DDL ---------------------------------------------------------------

    /// Create a table; DDL is logged to domain 0 and durable immediately,
    /// so any later DML referencing the table carries a strictly larger
    /// LSN and replays after it.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<u32> {
        let meta = self.catalog.create_table(name, schema)?;
        let lsn = self.log_on(
            0,
            &WalRecord::CreateTable {
                id: meta.id,
                name: meta.name.clone(),
                schema: (*meta.schema).clone(),
            },
        )?;
        self.sync_domain_to(0, lsn)?;
        Ok(meta.id)
    }

    /// Drop a table and its indexes.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        let meta = self.catalog.table_by_name(name)?;
        self.catalog.drop_table(meta.id)?;
        let lsn = self.log_on(0, &WalRecord::DropTable { id: meta.id })?;
        self.sync_domain_to(0, lsn)?;
        Ok(())
    }

    /// Table id by name.
    pub fn table_id(&self, name: &str) -> Result<u32> {
        Ok(self.catalog.table_by_name(name)?.id)
    }

    /// True if the table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.catalog.has_table(name)
    }

    /// Table metadata by name.
    pub fn table(&self, name: &str) -> Result<Arc<TableMeta>> {
        self.catalog.table_by_name(name)
    }

    /// Table metadata by id.
    pub fn table_by_id(&self, id: u32) -> Result<Arc<TableMeta>> {
        self.catalog.table_by_id(id)
    }

    /// Schema of a table.
    pub fn table_schema(&self, name: &str) -> Result<SchemaRef> {
        Ok(self.catalog.table_by_name(name)?.schema.clone())
    }

    /// All table names, id-ordered.
    pub fn table_names(&self) -> Vec<String> {
        self.catalog
            .all_tables()
            .iter()
            .map(|t| t.name.clone())
            .collect()
    }

    /// Create a named index over `columns` of `table`. The index definition
    /// persists via the catalog KV area; entries are built from the current
    /// heap and maintained on every subsequent insert.
    pub fn create_index(&self, index_name: &str, table: &str, columns: &[String]) -> Result<()> {
        let meta = self.catalog.table_by_name(table)?;
        let mut cols = Vec::with_capacity(columns.len());
        for c in columns {
            cols.push(meta.schema.index_of(c)?);
        }
        {
            let indexes = meta.indexes.read();
            if indexes
                .iter()
                .any(|i| i.name.eq_ignore_ascii_case(index_name))
            {
                return Err(Error::catalog(format!(
                    "index `{index_name}` already exists"
                )));
            }
        }
        let idx = OrderedIndex::new(cols.clone());
        // Build from existing data: every version slot, visibility checked
        // at read time.
        for (slot, tv) in meta.heap.dump_versions() {
            if let Some(row) = tv.row {
                idx.insert(&row, slot);
            }
        }
        meta.indexes.write().push(Arc::new(NamedIndex {
            name: index_name.to_string(),
            index: idx,
        }));
        let spec = format!("{}|{}", table, columns.join(","));
        self.catalog_put(&format!("__index.{index_name}"), &spec)?;
        Ok(())
    }

    /// Drop a named index (searching every table). Returns false if no
    /// such index exists.
    pub fn drop_index(&self, index_name: &str) -> Result<bool> {
        let mut dropped = false;
        for meta in self.catalog.all_tables() {
            let mut indexes = meta.indexes.write();
            let before = indexes.len();
            indexes.retain(|i| !i.name.eq_ignore_ascii_case(index_name));
            if indexes.len() != before {
                dropped = true;
            }
        }
        if dropped {
            self.catalog_del(&format!("__index.{index_name}"))?;
        }
        Ok(dropped)
    }

    /// Find an index on `table` whose first key column is `column`.
    pub fn index_on(&self, table: &str, column: &str) -> Option<Arc<NamedIndex>> {
        let meta = self.catalog.table_by_name(table).ok()?;
        let col = meta.schema.index_of(column).ok()?;
        let indexes = meta.indexes.read();
        indexes
            .iter()
            .find(|i| i.index.key_columns().first() == Some(&col))
            .cloned()
    }

    // ---- DML ---------------------------------------------------------------

    /// Insert a row (coerced against the schema) under transaction `xid`.
    pub fn insert(&self, xid: TxnId, table_id: u32, row: Row) -> Result<TupleId> {
        let meta = self.catalog.table_by_id(table_id)?;
        let row = meta.schema.coerce_row(row)?;
        let tid = meta.heap.insert(xid, row.clone());
        for idx in meta.indexes.read().iter() {
            idx.index.insert(&row, tid.slot);
        }
        self.log_on(
            self.txns.domain_of(xid) as usize,
            &WalRecord::Insert {
                xid,
                table: table_id,
                slot: tid.slot,
                row,
            },
        )?;
        self.stats.lock().inserts += 1;
        Ok(tid)
    }

    /// Insert many rows in one transaction scope (amortizes lock traffic).
    pub fn insert_many(&self, xid: TxnId, table_id: u32, rows: Vec<Row>) -> Result<u64> {
        let mut n = 0;
        for row in rows {
            self.insert(xid, table_id, row)?;
            n += 1;
        }
        Ok(n)
    }

    /// Delete the tuple at `tid`, erroring on a write-write conflict with a
    /// concurrent (non-aborted) deleter.
    pub fn delete(&self, xid: TxnId, tid: TupleId) -> Result<()> {
        let meta = self.catalog.table_by_id(tid.table)?;
        let ok = meta
            .heap
            .delete(xid, tid.slot, |other| self.txns.is_aborted(other));
        if !ok {
            return Err(Error::TxnAborted(format!(
                "write-write conflict or missing tuple at {tid:?}"
            )));
        }
        self.log_on(
            self.txns.domain_of(xid) as usize,
            &WalRecord::Delete {
                xid,
                table: tid.table,
                slot: tid.slot,
            },
        )?;
        self.stats.lock().deletes += 1;
        Ok(())
    }

    /// Delete every row visible to `xid`'s snapshot (used by REPLACE
    /// channels and `DELETE FROM t` without a predicate).
    pub fn delete_all_visible(&self, xid: TxnId, table_id: u32) -> Result<u64> {
        let meta = self.catalog.table_by_id(table_id)?;
        let snap = self.snapshot_for(xid);
        let victims = meta.heap.scan(&snap, &|x| self.txns.is_aborted(x));
        let mut n = 0;
        for (tid, _) in victims {
            self.delete(xid, tid)?;
            n += 1;
        }
        Ok(n)
    }

    /// Non-MVCC bulk truncate (requires the caller to ensure quiescence;
    /// used by explicit `TRUNCATE` DDL, not by channels).
    pub fn truncate(&self, table_id: u32) -> Result<()> {
        let meta = self.catalog.table_by_id(table_id)?;
        meta.heap.truncate();
        for idx in meta.indexes.read().iter() {
            idx.index.clear();
        }
        let lsn = self.log_on(
            0,
            &WalRecord::Truncate {
                table: table_id,
                xid: 0,
            },
        )?;
        self.sync_domain_to(0, lsn)?;
        Ok(())
    }

    /// Scan all rows of a table visible to `snap`.
    pub fn scan(&self, table_id: u32, snap: &Snapshot) -> Result<Vec<(TupleId, Row)>> {
        let meta = self.catalog.table_by_id(table_id)?;
        Ok(meta.heap.scan(snap, &|x| self.txns.is_aborted(x)))
    }

    /// Visit visible rows; callback returns false to stop (LIMIT pushdown).
    pub fn scan_visit(
        &self,
        table_id: u32,
        snap: &Snapshot,
        f: impl FnMut(TupleId, &Row) -> bool,
    ) -> Result<()> {
        let meta = self.catalog.table_by_id(table_id)?;
        meta.heap
            .for_each_visible(snap, &|x| self.txns.is_aborted(x), f);
        Ok(())
    }

    /// Equality lookup through a named index, returning visible rows.
    pub fn index_lookup(
        &self,
        table: &str,
        index: &NamedIndex,
        key: &IndexKey,
        snap: &Snapshot,
    ) -> Result<Vec<(TupleId, Row)>> {
        let meta = self.catalog.table_by_name(table)?;
        let mut out = Vec::new();
        for slot in index.index.lookup(key) {
            if let Some(row) = meta.heap.get(slot, snap, &|x| self.txns.is_aborted(x)) {
                out.push((
                    TupleId {
                        table: meta.id,
                        slot,
                    },
                    row,
                ));
            }
        }
        Ok(out)
    }

    /// Reclaim dead tuple versions across all tables; returns count.
    pub fn vacuum(&self) -> usize {
        let horizon = self.txns.snapshot(None).xmax;
        let committed = |x: TxnId| self.txns.status(x) == TxnStatus::Committed;
        let aborted = |x: TxnId| self.txns.is_aborted(x);
        let mut total = 0;
        for meta in self.catalog.all_tables() {
            let reclaimed = meta.heap.vacuum(horizon, &committed, &aborted);
            for idx in meta.indexes.read().iter() {
                for (slot, row) in &reclaimed {
                    idx.index.remove(row, *slot);
                }
            }
            total += reclaimed.len();
        }
        total
    }

    // ---- catalog KV (upper-layer DDL persistence) --------------------------

    /// Persist an upper-layer catalog entry (stream/view/channel DDL text).
    pub fn catalog_put(&self, key: &str, value: &str) -> Result<()> {
        self.catalog.kv_put(key, value);
        let lsn = self.log_on(
            0,
            &WalRecord::CatalogPut {
                key: key.to_string(),
                value: value.to_string(),
            },
        )?;
        self.sync_domain_to(0, lsn)?;
        Ok(())
    }

    /// Persist a catalog entry atomically with transaction `xid`: on
    /// replay the entry applies only if `xid` committed. The in-memory
    /// value is set immediately (the caller commits or the whole operation
    /// fails). Durability rides on the transaction's commit sync.
    pub fn catalog_put_txn(&self, xid: TxnId, key: &str, value: &str) -> Result<()> {
        self.catalog.kv_put(key, value);
        self.log_on(
            self.txns.domain_of(xid) as usize,
            &WalRecord::CatalogPutTxn {
                xid,
                key: key.to_string(),
                value: value.to_string(),
            },
        )?;
        Ok(())
    }

    /// Read an upper-layer catalog entry.
    pub fn catalog_get(&self, key: &str) -> Option<String> {
        self.catalog.kv_get(key)
    }

    /// Delete an upper-layer catalog entry.
    pub fn catalog_del(&self, key: &str) -> Result<bool> {
        let existed = self.catalog.kv_del(key);
        if existed {
            let lsn = self.log_on(
                0,
                &WalRecord::CatalogDel {
                    key: key.to_string(),
                },
            )?;
            self.sync_domain_to(0, lsn)?;
        }
        Ok(existed)
    }

    /// Prefix scan over upper-layer catalog entries.
    pub fn catalog_scan(&self, prefix: &str) -> Vec<(String, String)> {
        self.catalog.kv_scan(prefix)
    }

    // ---- checkpoint / recovery ---------------------------------------------

    /// Write a checkpoint capturing all committed state, then truncate the
    /// WAL. Requires no in-flight transactions (callers quiesce first).
    pub fn checkpoint(&self) -> Result<()> {
        let dir = match &self.dir {
            Some(d) => d.clone(),
            None => return Err(Error::storage("in-memory engine cannot checkpoint")),
        };
        if self.txns.active_count() > 0 {
            return Err(Error::storage(
                "checkpoint requires quiescence (active transactions exist)",
            ));
        }
        let snap = self.snapshot();
        let aborted = |x: TxnId| self.txns.is_aborted(x);
        let new_epoch = *self.epoch.lock() + 1;

        let mut body = Vec::new();
        let tables = self.catalog.all_tables();
        codec::put_u64(&mut body, new_epoch);
        // Per-shard epoch expectations: every live commit domain is
        // about to be reset to `new_epoch`. A crash between the rename
        // below and an individual log's reset leaves that log stamped
        // with the *old* epoch — recovery discards exactly those.
        codec::put_u32(&mut body, self.wals.len() as u32);
        for shard in 0..self.wals.len() {
            codec::put_u32(&mut body, shard as u32);
            codec::put_u64(&mut body, new_epoch);
        }
        codec::put_u64(&mut body, snap.xmax);
        codec::put_u32(&mut body, tables.len() as u32);
        let mut images: Vec<(Arc<TableMeta>, Vec<Row>)> = Vec::with_capacity(tables.len());
        for meta in &tables {
            codec::put_u32(&mut body, meta.id);
            codec::put_str(&mut body, &meta.name);
            codec::encode_schema(&mut body, &meta.schema);
            let rows: Vec<Row> = meta
                .heap
                .scan(&snap, &aborted)
                .into_iter()
                .map(|(_, row)| row)
                .collect();
            codec::put_u64(&mut body, rows.len() as u64);
            for row in &rows {
                codec::encode_row(&mut body, row);
            }
            images.push((meta.clone(), rows));
        }
        let kv = self.catalog.kv_scan("");
        codec::put_u32(&mut body, kv.len() as u32);
        for (k, v) in kv {
            codec::put_str(&mut body, &k);
            codec::put_str(&mut body, &v);
        }

        let mut full = Vec::with_capacity(20 + body.len());
        full.extend_from_slice(CHECKPOINT_MAGIC);
        full.extend_from_slice(&(body.len() as u64).to_le_bytes());
        full.extend_from_slice(&crc32(&body).to_le_bytes());
        full.extend_from_slice(&body);
        self.io.replace(&dir.join(CHECKPOINT_FILE), &full)?;
        *self.epoch.lock() = new_epoch;
        // Renumber the live heap to exactly the image recovery will load
        // (compact slots 0..n, frozen visibility): records logged after
        // this point reference slots by the *image's* numbering, so a
        // later recovery's checkpoint-load + replay stays aligned. Safe
        // because checkpointing requires quiescence (no snapshots pinned,
        // no transactions in flight).
        for (meta, rows) in images {
            meta.heap.truncate();
            let indexes = meta.indexes.read();
            for idx in indexes.iter() {
                idx.index.clear();
            }
            for row in rows {
                let tid = meta.heap.insert(FROZEN_XID, row.clone());
                for idx in indexes.iter() {
                    idx.index.insert(&row, tid.slot);
                }
            }
        }
        for (shard_idx, shard) in self.wals.iter().enumerate() {
            let mut w = shard.wal.lock();
            // A crash between the atomic replace above and this reset
            // leaves this pre-checkpoint log on disk; its older epoch
            // stamp tells the next recovery to discard it (and only it)
            // rather than replay already-checkpointed records over
            // renumbered slots.
            w.reset()?;
            let lsn = self.next_lsn.fetch_add(1, Ordering::SeqCst);
            w.append(
                lsn,
                &WalRecord::Epoch {
                    epoch: new_epoch,
                    shard: shard_idx as u32,
                },
            )?;
            w.sync_commit()?;
            drop(w);
            let mut g = shard.group.lock();
            if lsn > g.durable_lsn {
                g.durable_lsn = lsn;
            }
            g.pending.clear();
        }
        self.txns.prune_below(snap.xmax);
        Ok(())
    }

    /// Load the checkpoint (if any); returns the per-shard epoch table
    /// recovery uses to judge each log's staleness independently.
    fn load_checkpoint(&self, path: &Path) -> Result<Vec<(u32, u64)>> {
        let data = match self.io.read(path)? {
            Some(d) => d,
            None => return Ok(Vec::new()),
        };
        if data.len() < 20 || &data[..8] != CHECKPOINT_MAGIC {
            return Err(Error::storage("bad checkpoint header"));
        }
        let len = data[8..16]
            .try_into()
            .map(u64::from_le_bytes)
            .map_err(|_| Error::storage("bad checkpoint header"))? as usize;
        let crc = data[16..20]
            .try_into()
            .map(u32::from_le_bytes)
            .map_err(|_| Error::storage("bad checkpoint header"))?;
        if data.len() < 20 + len {
            return Err(Error::storage("truncated checkpoint"));
        }
        let body = &data[20..20 + len];
        if crc32(body) != crc {
            return Err(Error::storage("checkpoint crc mismatch"));
        }
        let mut r = Reader::new(body);
        *self.epoch.lock() = r.u64()?;
        let nshards = r.u32()?;
        let mut shard_epochs = Vec::with_capacity(nshards as usize);
        for _ in 0..nshards {
            let shard = r.u32()?;
            let epoch = r.u64()?;
            shard_epochs.push((shard, epoch));
        }
        let next_xid = r.u64()?;
        let ntables = r.u32()?;
        for _ in 0..ntables {
            let id = r.u32()?;
            let name = r.str()?;
            let schema = codec::decode_schema(&mut r)?;
            let meta = self.catalog.create_table_with_id(id, &name, schema)?;
            let nrows = r.u64()?;
            for _ in 0..nrows {
                let row = codec::decode_row(&mut r)?;
                meta.heap.insert(FROZEN_XID, row);
            }
        }
        let nkv = r.u32()?;
        for _ in 0..nkv {
            let k = r.str()?;
            let v = r.str()?;
            self.catalog.kv_put(&k, &v);
        }
        self.txns.bump_next_xid(next_xid);
        Ok(shard_epochs)
    }

    fn apply_wal_records(&self, records: Vec<WalRecord>) -> Result<u64> {
        let n = records.len() as u64;
        let mut seen: HashMap<TxnId, TxnStatus> = HashMap::new();
        let mut max_xid = 0;
        // Transactional catalog entries apply only if their transaction
        // committed; buffer them until outcomes are known.
        let mut txn_puts: Vec<(TxnId, String, String)> = Vec::new();
        for rec in records {
            match rec {
                WalRecord::Begin { xid } => {
                    seen.insert(xid, TxnStatus::InProgress);
                    max_xid = max_xid.max(xid);
                }
                WalRecord::Insert {
                    xid,
                    table,
                    slot,
                    row,
                } => {
                    if let Ok(meta) = self.catalog.table_by_id(table) {
                        meta.heap.insert_at(xid, slot, row);
                    }
                    max_xid = max_xid.max(xid);
                }
                WalRecord::Delete { xid, table, slot } => {
                    if let Ok(meta) = self.catalog.table_by_id(table) {
                        meta.heap.delete(xid, slot, |_| true);
                    }
                    max_xid = max_xid.max(xid);
                }
                WalRecord::Commit { xid } => {
                    seen.insert(xid, TxnStatus::Committed);
                }
                WalRecord::Abort { xid } => {
                    seen.insert(xid, TxnStatus::Aborted);
                }
                WalRecord::CreateTable { id, name, schema } => {
                    self.catalog.create_table_with_id(id, &name, schema)?;
                }
                WalRecord::DropTable { id } => {
                    let _ = self.catalog.drop_table(id);
                }
                WalRecord::Truncate { table, .. } => {
                    if let Ok(meta) = self.catalog.table_by_id(table) {
                        meta.heap.truncate();
                    }
                }
                WalRecord::CatalogPut { key, value } => {
                    self.catalog.kv_put(&key, &value);
                }
                WalRecord::CatalogPutTxn { xid, key, value } => {
                    max_xid = max_xid.max(xid);
                    txn_puts.push((xid, key, value));
                }
                WalRecord::CatalogDel { key } => {
                    self.catalog.kv_del(&key);
                }
                // Epoch stamps only gate staleness at open; no state.
                WalRecord::Epoch { .. } => {}
            }
        }
        for (xid, key, value) in txn_puts {
            let committed = seen.get(&xid) == Some(&TxnStatus::Committed);
            if committed {
                self.catalog.kv_put(&key, &value);
            }
        }
        // Transactions with no commit record crashed in flight: aborted.
        for (xid, status) in seen {
            let final_status = if status == TxnStatus::InProgress {
                TxnStatus::Aborted
            } else {
                status
            };
            self.txns.set_status(xid, final_status);
        }
        self.txns.bump_next_xid(max_xid + 1);
        Ok(n)
    }

    fn rebuild_indexes(&self) {
        for meta in self.catalog.all_tables() {
            let defs: Vec<_> = self
                .catalog
                .kv_scan("__index.")
                .into_iter()
                .filter_map(|(k, v)| {
                    let name = k.strip_prefix("__index.")?.to_string();
                    let (tbl, cols) = v.split_once('|')?;
                    if tbl.eq_ignore_ascii_case(&meta.name) {
                        Some((
                            name,
                            cols.split(',').map(str::to_string).collect::<Vec<_>>(),
                        ))
                    } else {
                        None
                    }
                })
                .collect();
            for (name, cols) in defs {
                let positions: Option<Vec<usize>> =
                    cols.iter().map(|c| meta.schema.index_of(c).ok()).collect();
                let Some(positions) = positions else { continue };
                let idx = OrderedIndex::new(positions);
                for (slot, tv) in meta.heap.dump_versions() {
                    if let Some(row) = tv.row {
                        idx.insert(&row, slot);
                    }
                }
                meta.indexes
                    .write()
                    .push(Arc::new(NamedIndex { name, index: idx }));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamrel_types::{row, Column, DataType};

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "streamrel-engine-test-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn schema() -> Schema {
        Schema::new(vec![
            Column::not_null("url", DataType::Text),
            Column::new("hits", DataType::Int),
        ])
        .unwrap()
    }

    fn visible_rows(e: &StorageEngine, table: &str) -> Vec<Row> {
        let id = e.table_id(table).unwrap();
        let snap = e.snapshot();
        let mut rows: Vec<Row> = e
            .scan(id, &snap)
            .unwrap()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        rows.sort_by(|a, b| a[0].sort_cmp(&b[0]));
        rows
    }

    #[test]
    fn insert_commit_scan() {
        let e = StorageEngine::in_memory();
        let t = e.create_table("urls", schema()).unwrap();
        e.with_txn(|xid| {
            e.insert(xid, t, row!["/a", 1i64])?;
            e.insert(xid, t, row!["/b", 2i64])?;
            Ok(())
        })
        .unwrap();
        assert_eq!(
            visible_rows(&e, "urls"),
            vec![row!["/a", 1i64], row!["/b", 2i64]]
        );
    }

    #[test]
    fn failed_txn_leaves_no_trace() {
        let e = StorageEngine::in_memory();
        let t = e.create_table("urls", schema()).unwrap();
        let r: Result<()> = e.with_txn(|xid| {
            e.insert(xid, t, row!["/a", 1i64])?;
            Err(Error::analysis("boom"))
        });
        assert!(r.is_err());
        assert!(visible_rows(&e, "urls").is_empty());
        assert_eq!(e.stats().aborts, 1);
    }

    #[test]
    fn durable_recovery_replays_wal() {
        let dir = tmpdir("recovery");
        {
            let e = StorageEngine::open(&dir).unwrap();
            let t = e.create_table("urls", schema()).unwrap();
            e.with_txn(|xid| {
                e.insert(xid, t, row!["/a", 1i64])?;
                e.insert(xid, t, row!["/b", 2i64])
            })
            .unwrap();
            // Uncommitted transaction, lost on "crash".
            let xid = e.begin().unwrap();
            e.insert(xid, t, row!["/ghost", 9i64]).unwrap();
            e.sync_all_wals().unwrap();
            // Drop without commit = crash.
        }
        let e = StorageEngine::open(&dir).unwrap();
        assert_eq!(
            visible_rows(&e, "urls"),
            vec![row!["/a", 1i64], row!["/b", 2i64]],
            "committed rows survive, in-flight insert is aborted"
        );
        assert!(e.stats().replayed > 0);
    }

    #[test]
    fn checkpoint_then_recover() {
        let dir = tmpdir("checkpoint");
        {
            let e = StorageEngine::open(&dir).unwrap();
            let t = e.create_table("urls", schema()).unwrap();
            e.with_txn(|xid| e.insert(xid, t, row!["/a", 1i64]))
                .unwrap();
            e.checkpoint().unwrap();
            // Post-checkpoint WAL traffic.
            e.with_txn(|xid| e.insert(xid, t, row!["/b", 2i64]))
                .unwrap();
        }
        let e = StorageEngine::open(&dir).unwrap();
        assert_eq!(
            visible_rows(&e, "urls"),
            vec![row!["/a", 1i64], row!["/b", 2i64]]
        );
        // DDL after recovery still works (id allocator restored).
        e.create_table("more", schema()).unwrap();
    }

    #[test]
    fn checkpoint_requires_quiescence() {
        let dir = tmpdir("quiesce");
        let e = StorageEngine::open(&dir).unwrap();
        let _t = e.create_table("urls", schema()).unwrap();
        let xid = e.begin().unwrap();
        assert!(e.checkpoint().is_err());
        e.commit(xid).unwrap();
        e.checkpoint().unwrap();
    }

    #[test]
    fn transactional_catalog_put_respects_commit_outcome() {
        let dir = tmpdir("cputx");
        {
            let e = StorageEngine::open(&dir).unwrap();
            let t = e.create_table("arch", schema()).unwrap();
            // Committed: rows + watermark atomically.
            e.with_txn(|x| {
                e.insert(x, t, row!["/a", 1i64])?;
                e.catalog_put_txn(x, "cq_watermark.q", "100")
            })
            .unwrap();
            // In-flight at crash: rows + watermark must BOTH vanish.
            let x = e.begin().unwrap();
            e.insert(x, t, row!["/b", 2i64]).unwrap();
            e.catalog_put_txn(x, "cq_watermark.q", "200").unwrap();
            e.sync_all_wals().unwrap();
            // Crash without commit.
        }
        let e = StorageEngine::open(&dir).unwrap();
        assert_eq!(
            e.catalog_get("cq_watermark.q").as_deref(),
            Some("100"),
            "uncommitted watermark must not survive"
        );
        assert_eq!(visible_rows(&e, "arch"), vec![row!["/a", 1i64]]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn catalog_kv_survives_restart() {
        let dir = tmpdir("kv");
        {
            let e = StorageEngine::open(&dir).unwrap();
            e.catalog_put("stream.url_stream", "CREATE STREAM url_stream")
                .unwrap();
            e.catalog_put("view.v", "CREATE VIEW v").unwrap();
            e.catalog_del("view.v").unwrap();
        }
        let e = StorageEngine::open(&dir).unwrap();
        assert_eq!(
            e.catalog_get("stream.url_stream").as_deref(),
            Some("CREATE STREAM url_stream")
        );
        assert!(e.catalog_get("view.v").is_none());
    }

    #[test]
    fn index_accelerated_lookup_respects_visibility() {
        let e = StorageEngine::in_memory();
        let t = e.create_table("urls", schema()).unwrap();
        e.create_index("urls_by_url", "urls", &["url".into()])
            .unwrap();
        e.with_txn(|xid| {
            e.insert(xid, t, row!["/a", 1i64])?;
            e.insert(xid, t, row!["/a", 2i64])?;
            e.insert(xid, t, row!["/b", 3i64])
        })
        .unwrap();
        // Uncommitted row should not appear in index lookups.
        let pending = e.begin().unwrap();
        e.insert(pending, t, row!["/a", 99i64]).unwrap();
        let idx = e.index_on("urls", "url").unwrap();
        let snap = e.snapshot();
        let hits = e
            .index_lookup("urls", &idx, &IndexKey(row!["/a"]), &snap)
            .unwrap();
        assert_eq!(hits.len(), 2);
        e.commit(pending).unwrap();
        let snap = e.snapshot();
        let hits = e
            .index_lookup("urls", &idx, &IndexKey(row!["/a"]), &snap)
            .unwrap();
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn index_survives_restart() {
        let dir = tmpdir("idxrec");
        {
            let e = StorageEngine::open(&dir).unwrap();
            let t = e.create_table("urls", schema()).unwrap();
            e.create_index("by_url", "urls", &["url".into()]).unwrap();
            e.with_txn(|xid| e.insert(xid, t, row!["/a", 1i64]))
                .unwrap();
        }
        let e = StorageEngine::open(&dir).unwrap();
        let idx = e.index_on("urls", "url").expect("index rebuilt");
        let snap = e.snapshot();
        let hits = e
            .index_lookup("urls", &idx, &IndexKey(row!["/a"]), &snap)
            .unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn delete_all_visible_and_vacuum() {
        let e = StorageEngine::in_memory();
        let t = e.create_table("urls", schema()).unwrap();
        e.with_txn(|xid| {
            e.insert(xid, t, row!["/a", 1i64])?;
            e.insert(xid, t, row!["/b", 2i64])
        })
        .unwrap();
        e.with_txn(|xid| {
            let n = e.delete_all_visible(xid, t)?;
            assert_eq!(n, 2);
            e.insert(xid, t, row!["/c", 3i64])
        })
        .unwrap();
        assert_eq!(visible_rows(&e, "urls"), vec![row!["/c", 3i64]]);
        let reclaimed = e.vacuum();
        assert_eq!(reclaimed, 2);
        assert_eq!(visible_rows(&e, "urls"), vec![row!["/c", 3i64]]);
    }

    #[test]
    fn schema_enforced_on_insert() {
        let e = StorageEngine::in_memory();
        let t = e.create_table("urls", schema()).unwrap();
        let r = e.with_txn(|xid| e.insert(xid, t, row![1i64, "/a"]));
        assert!(r.is_err(), "swapped column types must be rejected");
        let r = e.with_txn(|xid| {
            e.insert(
                xid,
                t,
                vec![streamrel_types::Value::Null, streamrel_types::Value::Int(1)],
            )
        });
        assert!(r.is_err(), "NOT NULL violated");
    }

    #[test]
    fn truncate_clears() {
        let e = StorageEngine::in_memory();
        let t = e.create_table("urls", schema()).unwrap();
        e.with_txn(|xid| e.insert(xid, t, row!["/a", 1i64]))
            .unwrap();
        e.truncate(t).unwrap();
        assert!(visible_rows(&e, "urls").is_empty());
    }

    #[test]
    fn multi_domain_recovery_merges_logs_in_lsn_order() {
        let dir = tmpdir("multilog");
        {
            let e =
                StorageEngine::open_with_opts(&dir, SyncMode::Flush, StdIo::shared(), 3).unwrap();
            assert_eq!(e.wal_shards(), 3);
            let t = e.create_table("urls", schema()).unwrap();
            // Insert on domain 1, then delete the same tuple from a txn
            // on domain 2: without the global-LSN merge the delete could
            // replay before its insert and silently vanish.
            let tid = e
                .with_txn_on(1, |xid| e.insert(xid, t, row!["/a", 1i64]))
                .unwrap();
            e.with_txn_on(2, |xid| e.delete(xid, tid)).unwrap();
            e.with_txn_on(0, |xid| e.insert(xid, t, row!["/b", 2i64]))
                .unwrap();
        }
        for k in 0..3 {
            assert!(dir.join(format!("wal-{k}.log")).exists(), "log {k} exists");
        }
        let e = StorageEngine::open_with_opts(&dir, SyncMode::Flush, StdIo::shared(), 3).unwrap();
        assert_eq!(
            visible_rows(&e, "urls"),
            vec![row!["/b", 2i64]],
            "cross-domain delete replays after its insert"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopening_with_fewer_domains_keeps_all_records() {
        let dir = tmpdir("shrink");
        {
            let e =
                StorageEngine::open_with_opts(&dir, SyncMode::Flush, StdIo::shared(), 3).unwrap();
            let t = e.create_table("urls", schema()).unwrap();
            for d in 0..3 {
                e.with_txn_on(d, |xid| e.insert(xid, t, row![format!("/{d}"), d as i64]))
                    .unwrap();
            }
        }
        // Reopen with one domain: records in wal-1/wal-2 must still be
        // replayed (they stay on disk until a checkpoint stales them).
        let e = StorageEngine::open_with_opts(&dir, SyncMode::Flush, StdIo::shared(), 1).unwrap();
        assert_eq!(e.wal_shards(), 1);
        assert_eq!(visible_rows(&e, "urls").len(), 3);
        e.checkpoint().unwrap();
        drop(e);
        // After the checkpoint the extra logs carry a stale epoch; a
        // fresh open discards them without losing state.
        let e = StorageEngine::open_with_opts(&dir, SyncMode::Flush, StdIo::shared(), 1).unwrap();
        assert_eq!(visible_rows(&e, "urls").len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_batches_concurrent_commits() {
        let dir = tmpdir("group");
        let e = Arc::new(
            StorageEngine::open_with_opts(&dir, SyncMode::Fsync, StdIo::shared(), 2).unwrap(),
        );
        let t = e.create_table("urls", schema()).unwrap();
        let threads: Vec<_> = (0..4)
            .map(|i| {
                let e = Arc::clone(&e);
                std::thread::spawn(move || {
                    for j in 0..25 {
                        e.with_txn_on(i % 2, |xid| {
                            e.insert(xid, t, row![format!("/{i}/{j}"), j as i64])
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(e.stats().commits, 100);
        assert_eq!(visible_rows(&e, "urls").len(), 100);
        // Conservation: every acked commit was covered by exactly one
        // group-commit batch (registered under the wal lock, so no commit
        // can slip between a leader's target and its batch accounting).
        let batches = e.metrics().histogram("wal.group_commit.batch_size");
        assert_eq!(
            batches.sum(),
            100,
            "every acked commit is counted in exactly one batch"
        );
        assert!(batches.count() <= 100, "batches never exceed commits");
        drop(e);
        let e = StorageEngine::open_with_opts(&dir, SyncMode::Fsync, StdIo::shared(), 2).unwrap();
        assert_eq!(
            visible_rows(&e, "urls").len(),
            100,
            "every acked commit survives recovery"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drop_table_gone_after_restart() {
        let dir = tmpdir("drop");
        {
            let e = StorageEngine::open(&dir).unwrap();
            e.create_table("urls", schema()).unwrap();
            e.create_table("keep", schema()).unwrap();
            e.drop_table("urls").unwrap();
        }
        let e = StorageEngine::open(&dir).unwrap();
        assert!(!e.has_table("urls"));
        assert!(e.has_table("keep"));
    }
}
