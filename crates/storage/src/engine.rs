//! The storage engine: transactions + catalog + WAL + checkpoints.
//!
//! [`StorageEngine`] is the durable half of the stream-relational system.
//! It owns the transaction manager, the table catalog, the write-ahead log
//! and checkpointing. Everything above it (snapshot queries, channels,
//! Active Tables) goes through this API, so stored data really is "simply
//! streaming data that has been entered into persistent structures" (§2.3).

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use streamrel_obs::{Gauge, Histogram, Registry};
use streamrel_types::{Error, Result, Row, Schema};

use crate::catalog::{Catalog, NamedIndex, SchemaRef, TableMeta};
use crate::codec::{self, Reader};
use crate::crc::crc32;
use crate::heap::TupleId;
use crate::index::{IndexKey, OrderedIndex};
use crate::io::{Io, StdIo};
use crate::txn::{Snapshot, TxnId, TxnManager, TxnStatus, FROZEN_XID};
use crate::wal::{replay_bytes, Wal, WalRecord};

pub use crate::wal::SyncMode;

const CHECKPOINT_FILE: &str = "checkpoint.dat";
const WAL_FILE: &str = "wal.log";
const CHECKPOINT_MAGIC: &[u8; 8] = b"SRCHKPT2";

/// Counters exposed for tests, benchmarks and EXPERIMENTS.md tables.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// WAL records appended since open.
    pub wal_records: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Transactions aborted.
    pub aborts: u64,
    /// Rows inserted.
    pub inserts: u64,
    /// Rows deleted.
    pub deletes: u64,
    /// WAL records replayed at open (recovery work).
    pub replayed: u64,
}

// lock-order: epoch < wal < stats
//
// Commit paths append to the WAL and then bump the counters; never hold
// `stats` while taking `wal` (streamrel-lint enforces this per function).
// The checkpoint epoch is read before (and never while) holding `wal`.
/// The durable storage engine.
pub struct StorageEngine {
    dir: Option<PathBuf>,
    txns: TxnManager,
    catalog: Catalog,
    wal: Option<Mutex<Wal>>,
    /// All file traffic (WAL, checkpoints) goes through this seam; the
    /// fault-injection harness substitutes a simulated disk here.
    io: Arc<dyn Io>,
    /// Checkpoint generation. Bumped by every successful checkpoint and
    /// stamped into both the checkpoint body and the first WAL record so
    /// recovery can tell a stale WAL (crash between checkpoint rename and
    /// WAL reset) from a live one. See DESIGN.md §10.
    epoch: Mutex<u64>,
    stats: Mutex<EngineStats>,
    /// Engine-wide metrics registry; every layer above shares this handle.
    metrics: Arc<Registry>,
    /// Cached instruments so the hot commit path skips the registry map.
    commit_hist: Arc<Histogram>,
    wal_sync_hist: Arc<Histogram>,
    /// 0 = healthy, 1 = the WAL refused further writes after a failed
    /// flush/fsync (`Error::WalPoisoned`). Registered at open so the row
    /// is always present in `streamrel_metrics`.
    wal_poisoned: Arc<Gauge>,
}

impl StorageEngine {
    /// Open (or create) an engine rooted at `dir` with the default
    /// [`SyncMode::Flush`] durability.
    pub fn open(dir: impl Into<PathBuf>) -> Result<StorageEngine> {
        Self::open_with(dir, SyncMode::Flush)
    }

    /// Open with an explicit durability mode. Loads the checkpoint (if any)
    /// and replays the WAL: this is crash recovery for durable state.
    pub fn open_with(dir: impl Into<PathBuf>, sync: SyncMode) -> Result<StorageEngine> {
        Self::open_with_io(dir, sync, StdIo::shared())
    }

    /// Open against an explicit [`Io`] implementation. This is the seam
    /// the crash-recovery torture harness uses: `streamrel-faults` passes
    /// a simulated disk here and crashes the engine at every I/O operation
    /// in turn (DESIGN.md §10). Production paths use [`StdIo`].
    pub fn open_with_io(
        dir: impl Into<PathBuf>,
        sync: SyncMode,
        io: Arc<dyn Io>,
    ) -> Result<StorageEngine> {
        let dir = dir.into();
        io.create_dir_all(&dir)?;
        let metrics = Arc::new(Registry::default());
        io.bind_metrics(&metrics);
        let commit_hist = metrics.histogram("storage.commit_us");
        let wal_sync_hist = metrics.histogram("storage.wal_sync_us");
        let wal_poisoned = metrics.gauge("wal.poisoned");
        let engine = StorageEngine {
            dir: Some(dir.clone()),
            txns: TxnManager::new(),
            catalog: Catalog::new(),
            wal: None,
            io: io.clone(),
            epoch: Mutex::new(0),
            stats: Mutex::new(EngineStats::default()),
            metrics,
            commit_hist,
            wal_sync_hist,
            wal_poisoned,
        };
        engine.load_checkpoint(&dir.join(CHECKPOINT_FILE))?;
        let ck_epoch = *engine.epoch.lock();
        let wal_path = dir.join(WAL_FILE);
        let wal_bytes = io.read(&wal_path)?.unwrap_or_default();
        let (records, valid_len) = replay_bytes(&wal_bytes);
        // Every WAL opens with an `Epoch` stamp. One older than the
        // checkpoint we just loaded means the crash landed between the
        // checkpoint rename and the WAL reset: those records are already
        // in the checkpoint, and replaying them over its renumbered heap
        // slots would corrupt the image — discard instead.
        let wal_epoch = match records.first() {
            Some(WalRecord::Epoch { epoch }) => *epoch,
            _ => 0,
        };
        let stale = !records.is_empty() && wal_epoch < ck_epoch;
        let records = if stale { Vec::new() } else { records };
        if stale {
            io.truncate(&wal_path, 0)?;
        } else if (valid_len as usize) < wal_bytes.len() {
            // Torn tail from a mid-append crash: cut it so fresh appends
            // do not land behind a CRC-invalid region.
            io.truncate(&wal_path, valid_len)?;
        }
        let replayed = engine.apply_wal_records(records)?;
        engine.stats.lock().replayed = replayed;
        engine.rebuild_indexes();
        let mut wal = Wal::open_with_io(wal_path, sync, io)?;
        if stale || replayed == 0 {
            // Fresh (or just-discarded) log: stamp the current epoch so
            // the next recovery can trust its contents.
            wal.append(&WalRecord::Epoch { epoch: ck_epoch })?;
            wal.sync_commit()?;
        }
        let engine = StorageEngine {
            wal: Some(Mutex::new(wal)),
            ..engine
        };
        Ok(engine)
    }

    /// A purely in-memory engine (no WAL, no checkpoints). Used by
    /// baselines and benchmarks where durability is not under test.
    pub fn in_memory() -> StorageEngine {
        let metrics = Arc::new(Registry::default());
        let commit_hist = metrics.histogram("storage.commit_us");
        let wal_sync_hist = metrics.histogram("storage.wal_sync_us");
        let wal_poisoned = metrics.gauge("wal.poisoned");
        StorageEngine {
            dir: None,
            txns: TxnManager::new(),
            catalog: Catalog::new(),
            wal: None,
            io: StdIo::shared(),
            epoch: Mutex::new(0),
            stats: Mutex::new(EngineStats::default()),
            metrics,
            commit_hist,
            wal_sync_hist,
            wal_poisoned,
        }
    }

    /// The data directory, if durable.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Engine statistics snapshot.
    pub fn stats(&self) -> EngineStats {
        *self.stats.lock()
    }

    /// The engine-wide metrics registry. Layers above the storage engine
    /// register their own instruments here so one `SELECT * FROM
    /// streamrel_metrics` sees the whole stack.
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.metrics
    }

    /// The transaction manager (CQ layer pins snapshots through this).
    pub fn txns(&self) -> &TxnManager {
        &self.txns
    }

    fn log(&self, rec: &WalRecord) -> Result<()> {
        if let Some(wal) = &self.wal {
            let mut w = wal.lock();
            if let Err(e) = w.append(rec) {
                if w.is_poisoned() {
                    self.wal_poisoned.set(1);
                }
                return Err(e);
            }
            drop(w);
            self.stats.lock().wal_records += 1;
        }
        Ok(())
    }

    fn log_sync(&self) -> Result<()> {
        if let Some(wal) = &self.wal {
            let start = Instant::now();
            let mut w = wal.lock();
            if let Err(e) = w.sync_commit() {
                if w.is_poisoned() {
                    self.wal_poisoned.set(1);
                }
                return Err(e);
            }
            drop(w);
            self.wal_sync_hist.observe_from(start);
        }
        Ok(())
    }

    /// True once the WAL has refused writes after a failed flush/fsync.
    /// Mirrored as the `wal.poisoned` gauge in [`StorageEngine::metrics`].
    pub fn wal_poisoned(&self) -> bool {
        self.wal_poisoned.get() != 0
    }

    // ---- transactions ----------------------------------------------------

    /// Begin a transaction.
    pub fn begin(&self) -> Result<TxnId> {
        let xid = self.txns.begin();
        self.log(&WalRecord::Begin { xid })?;
        Ok(xid)
    }

    /// Commit: logs the commit record, makes it durable, then flips status.
    pub fn commit(&self, xid: TxnId) -> Result<()> {
        let start = Instant::now();
        self.log(&WalRecord::Commit { xid })?;
        self.log_sync()?;
        self.txns.commit(xid);
        self.stats.lock().commits += 1;
        self.commit_hist.observe_from(start);
        Ok(())
    }

    /// Abort: the transaction's inserts/deletes become permanently
    /// invisible (no physical undo needed under MVCC).
    pub fn abort(&self, xid: TxnId) -> Result<()> {
        self.log(&WalRecord::Abort { xid })?;
        self.txns.abort(xid);
        self.stats.lock().aborts += 1;
        Ok(())
    }

    /// Fresh read-only snapshot.
    pub fn snapshot(&self) -> Snapshot {
        self.txns.snapshot(None)
    }

    /// Snapshot owned by `xid` (sees its own writes).
    pub fn snapshot_for(&self, xid: TxnId) -> Snapshot {
        self.txns.snapshot(Some(xid))
    }

    /// Run `f` inside a fresh transaction, committing on `Ok` and aborting
    /// on `Err`.
    pub fn with_txn<T>(&self, f: impl FnOnce(TxnId) -> Result<T>) -> Result<T> {
        let xid = self.begin()?;
        match f(xid) {
            Ok(v) => {
                self.commit(xid)?;
                Ok(v)
            }
            Err(e) => {
                self.abort(xid)?;
                Err(e)
            }
        }
    }

    // ---- DDL ---------------------------------------------------------------

    /// Create a table; DDL is logged and durable immediately.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<u32> {
        let meta = self.catalog.create_table(name, schema)?;
        self.log(&WalRecord::CreateTable {
            id: meta.id,
            name: meta.name.clone(),
            schema: (*meta.schema).clone(),
        })?;
        self.log_sync()?;
        Ok(meta.id)
    }

    /// Drop a table and its indexes.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        let meta = self.catalog.table_by_name(name)?;
        self.catalog.drop_table(meta.id)?;
        self.log(&WalRecord::DropTable { id: meta.id })?;
        self.log_sync()?;
        Ok(())
    }

    /// Table id by name.
    pub fn table_id(&self, name: &str) -> Result<u32> {
        Ok(self.catalog.table_by_name(name)?.id)
    }

    /// True if the table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.catalog.has_table(name)
    }

    /// Table metadata by name.
    pub fn table(&self, name: &str) -> Result<Arc<TableMeta>> {
        self.catalog.table_by_name(name)
    }

    /// Table metadata by id.
    pub fn table_by_id(&self, id: u32) -> Result<Arc<TableMeta>> {
        self.catalog.table_by_id(id)
    }

    /// Schema of a table.
    pub fn table_schema(&self, name: &str) -> Result<SchemaRef> {
        Ok(self.catalog.table_by_name(name)?.schema.clone())
    }

    /// All table names, id-ordered.
    pub fn table_names(&self) -> Vec<String> {
        self.catalog
            .all_tables()
            .iter()
            .map(|t| t.name.clone())
            .collect()
    }

    /// Create a named index over `columns` of `table`. The index definition
    /// persists via the catalog KV area; entries are built from the current
    /// heap and maintained on every subsequent insert.
    pub fn create_index(&self, index_name: &str, table: &str, columns: &[String]) -> Result<()> {
        let meta = self.catalog.table_by_name(table)?;
        let mut cols = Vec::with_capacity(columns.len());
        for c in columns {
            cols.push(meta.schema.index_of(c)?);
        }
        {
            let indexes = meta.indexes.read();
            if indexes
                .iter()
                .any(|i| i.name.eq_ignore_ascii_case(index_name))
            {
                return Err(Error::catalog(format!(
                    "index `{index_name}` already exists"
                )));
            }
        }
        let idx = OrderedIndex::new(cols.clone());
        // Build from existing data: every version slot, visibility checked
        // at read time.
        for (slot, tv) in meta.heap.dump_versions() {
            if let Some(row) = tv.row {
                idx.insert(&row, slot);
            }
        }
        meta.indexes.write().push(Arc::new(NamedIndex {
            name: index_name.to_string(),
            index: idx,
        }));
        let spec = format!("{}|{}", table, columns.join(","));
        self.catalog_put(&format!("__index.{index_name}"), &spec)?;
        Ok(())
    }

    /// Drop a named index (searching every table). Returns false if no
    /// such index exists.
    pub fn drop_index(&self, index_name: &str) -> Result<bool> {
        let mut dropped = false;
        for meta in self.catalog.all_tables() {
            let mut indexes = meta.indexes.write();
            let before = indexes.len();
            indexes.retain(|i| !i.name.eq_ignore_ascii_case(index_name));
            if indexes.len() != before {
                dropped = true;
            }
        }
        if dropped {
            self.catalog_del(&format!("__index.{index_name}"))?;
        }
        Ok(dropped)
    }

    /// Find an index on `table` whose first key column is `column`.
    pub fn index_on(&self, table: &str, column: &str) -> Option<Arc<NamedIndex>> {
        let meta = self.catalog.table_by_name(table).ok()?;
        let col = meta.schema.index_of(column).ok()?;
        let indexes = meta.indexes.read();
        indexes
            .iter()
            .find(|i| i.index.key_columns().first() == Some(&col))
            .cloned()
    }

    // ---- DML ---------------------------------------------------------------

    /// Insert a row (coerced against the schema) under transaction `xid`.
    pub fn insert(&self, xid: TxnId, table_id: u32, row: Row) -> Result<TupleId> {
        let meta = self.catalog.table_by_id(table_id)?;
        let row = meta.schema.coerce_row(row)?;
        let tid = meta.heap.insert(xid, row.clone());
        for idx in meta.indexes.read().iter() {
            idx.index.insert(&row, tid.slot);
        }
        self.log(&WalRecord::Insert {
            xid,
            table: table_id,
            slot: tid.slot,
            row,
        })?;
        self.stats.lock().inserts += 1;
        Ok(tid)
    }

    /// Insert many rows in one transaction scope (amortizes lock traffic).
    pub fn insert_many(&self, xid: TxnId, table_id: u32, rows: Vec<Row>) -> Result<u64> {
        let mut n = 0;
        for row in rows {
            self.insert(xid, table_id, row)?;
            n += 1;
        }
        Ok(n)
    }

    /// Delete the tuple at `tid`, erroring on a write-write conflict with a
    /// concurrent (non-aborted) deleter.
    pub fn delete(&self, xid: TxnId, tid: TupleId) -> Result<()> {
        let meta = self.catalog.table_by_id(tid.table)?;
        let ok = meta
            .heap
            .delete(xid, tid.slot, |other| self.txns.is_aborted(other));
        if !ok {
            return Err(Error::TxnAborted(format!(
                "write-write conflict or missing tuple at {tid:?}"
            )));
        }
        self.log(&WalRecord::Delete {
            xid,
            table: tid.table,
            slot: tid.slot,
        })?;
        self.stats.lock().deletes += 1;
        Ok(())
    }

    /// Delete every row visible to `xid`'s snapshot (used by REPLACE
    /// channels and `DELETE FROM t` without a predicate).
    pub fn delete_all_visible(&self, xid: TxnId, table_id: u32) -> Result<u64> {
        let meta = self.catalog.table_by_id(table_id)?;
        let snap = self.snapshot_for(xid);
        let victims = meta.heap.scan(&snap, &|x| self.txns.is_aborted(x));
        let mut n = 0;
        for (tid, _) in victims {
            self.delete(xid, tid)?;
            n += 1;
        }
        Ok(n)
    }

    /// Non-MVCC bulk truncate (requires the caller to ensure quiescence;
    /// used by explicit `TRUNCATE` DDL, not by channels).
    pub fn truncate(&self, table_id: u32) -> Result<()> {
        let meta = self.catalog.table_by_id(table_id)?;
        meta.heap.truncate();
        for idx in meta.indexes.read().iter() {
            idx.index.clear();
        }
        self.log(&WalRecord::Truncate {
            table: table_id,
            xid: 0,
        })?;
        self.log_sync()?;
        Ok(())
    }

    /// Scan all rows of a table visible to `snap`.
    pub fn scan(&self, table_id: u32, snap: &Snapshot) -> Result<Vec<(TupleId, Row)>> {
        let meta = self.catalog.table_by_id(table_id)?;
        Ok(meta.heap.scan(snap, &|x| self.txns.is_aborted(x)))
    }

    /// Visit visible rows; callback returns false to stop (LIMIT pushdown).
    pub fn scan_visit(
        &self,
        table_id: u32,
        snap: &Snapshot,
        f: impl FnMut(TupleId, &Row) -> bool,
    ) -> Result<()> {
        let meta = self.catalog.table_by_id(table_id)?;
        meta.heap
            .for_each_visible(snap, &|x| self.txns.is_aborted(x), f);
        Ok(())
    }

    /// Equality lookup through a named index, returning visible rows.
    pub fn index_lookup(
        &self,
        table: &str,
        index: &NamedIndex,
        key: &IndexKey,
        snap: &Snapshot,
    ) -> Result<Vec<(TupleId, Row)>> {
        let meta = self.catalog.table_by_name(table)?;
        let mut out = Vec::new();
        for slot in index.index.lookup(key) {
            if let Some(row) = meta.heap.get(slot, snap, &|x| self.txns.is_aborted(x)) {
                out.push((
                    TupleId {
                        table: meta.id,
                        slot,
                    },
                    row,
                ));
            }
        }
        Ok(out)
    }

    /// Reclaim dead tuple versions across all tables; returns count.
    pub fn vacuum(&self) -> usize {
        let horizon = self.txns.snapshot(None).xmax;
        let committed = |x: TxnId| self.txns.status(x) == TxnStatus::Committed;
        let aborted = |x: TxnId| self.txns.is_aborted(x);
        let mut total = 0;
        for meta in self.catalog.all_tables() {
            let reclaimed = meta.heap.vacuum(horizon, &committed, &aborted);
            for idx in meta.indexes.read().iter() {
                for (slot, row) in &reclaimed {
                    idx.index.remove(row, *slot);
                }
            }
            total += reclaimed.len();
        }
        total
    }

    // ---- catalog KV (upper-layer DDL persistence) --------------------------

    /// Persist an upper-layer catalog entry (stream/view/channel DDL text).
    pub fn catalog_put(&self, key: &str, value: &str) -> Result<()> {
        self.catalog.kv_put(key, value);
        self.log(&WalRecord::CatalogPut {
            key: key.to_string(),
            value: value.to_string(),
        })?;
        self.log_sync()?;
        Ok(())
    }

    /// Persist a catalog entry atomically with transaction `xid`: on
    /// replay the entry applies only if `xid` committed. The in-memory
    /// value is set immediately (the caller commits or the whole operation
    /// fails). Durability rides on the transaction's commit sync.
    pub fn catalog_put_txn(&self, xid: TxnId, key: &str, value: &str) -> Result<()> {
        self.catalog.kv_put(key, value);
        self.log(&WalRecord::CatalogPutTxn {
            xid,
            key: key.to_string(),
            value: value.to_string(),
        })?;
        Ok(())
    }

    /// Read an upper-layer catalog entry.
    pub fn catalog_get(&self, key: &str) -> Option<String> {
        self.catalog.kv_get(key)
    }

    /// Delete an upper-layer catalog entry.
    pub fn catalog_del(&self, key: &str) -> Result<bool> {
        let existed = self.catalog.kv_del(key);
        if existed {
            self.log(&WalRecord::CatalogDel {
                key: key.to_string(),
            })?;
            self.log_sync()?;
        }
        Ok(existed)
    }

    /// Prefix scan over upper-layer catalog entries.
    pub fn catalog_scan(&self, prefix: &str) -> Vec<(String, String)> {
        self.catalog.kv_scan(prefix)
    }

    // ---- checkpoint / recovery ---------------------------------------------

    /// Write a checkpoint capturing all committed state, then truncate the
    /// WAL. Requires no in-flight transactions (callers quiesce first).
    pub fn checkpoint(&self) -> Result<()> {
        let dir = match &self.dir {
            Some(d) => d.clone(),
            None => return Err(Error::storage("in-memory engine cannot checkpoint")),
        };
        if self.txns.active_count() > 0 {
            return Err(Error::storage(
                "checkpoint requires quiescence (active transactions exist)",
            ));
        }
        let snap = self.snapshot();
        let aborted = |x: TxnId| self.txns.is_aborted(x);
        let new_epoch = *self.epoch.lock() + 1;

        let mut body = Vec::new();
        let tables = self.catalog.all_tables();
        codec::put_u64(&mut body, new_epoch);
        codec::put_u64(&mut body, snap.xmax);
        codec::put_u32(&mut body, tables.len() as u32);
        let mut images: Vec<(Arc<TableMeta>, Vec<Row>)> = Vec::with_capacity(tables.len());
        for meta in &tables {
            codec::put_u32(&mut body, meta.id);
            codec::put_str(&mut body, &meta.name);
            codec::encode_schema(&mut body, &meta.schema);
            let rows: Vec<Row> = meta
                .heap
                .scan(&snap, &aborted)
                .into_iter()
                .map(|(_, row)| row)
                .collect();
            codec::put_u64(&mut body, rows.len() as u64);
            for row in &rows {
                codec::encode_row(&mut body, row);
            }
            images.push((meta.clone(), rows));
        }
        let kv = self.catalog.kv_scan("");
        codec::put_u32(&mut body, kv.len() as u32);
        for (k, v) in kv {
            codec::put_str(&mut body, &k);
            codec::put_str(&mut body, &v);
        }

        let mut full = Vec::with_capacity(20 + body.len());
        full.extend_from_slice(CHECKPOINT_MAGIC);
        full.extend_from_slice(&(body.len() as u64).to_le_bytes());
        full.extend_from_slice(&crc32(&body).to_le_bytes());
        full.extend_from_slice(&body);
        self.io.replace(&dir.join(CHECKPOINT_FILE), &full)?;
        *self.epoch.lock() = new_epoch;
        // Renumber the live heap to exactly the image recovery will load
        // (compact slots 0..n, frozen visibility): records logged after
        // this point reference slots by the *image's* numbering, so a
        // later recovery's checkpoint-load + replay stays aligned. Safe
        // because checkpointing requires quiescence (no snapshots pinned,
        // no transactions in flight).
        for (meta, rows) in images {
            meta.heap.truncate();
            let indexes = meta.indexes.read();
            for idx in indexes.iter() {
                idx.index.clear();
            }
            for row in rows {
                let tid = meta.heap.insert(FROZEN_XID, row.clone());
                for idx in indexes.iter() {
                    idx.index.insert(&row, tid.slot);
                }
            }
        }
        if let Some(wal) = &self.wal {
            let mut w = wal.lock();
            // A crash between the atomic replace above and this reset
            // leaves the pre-checkpoint WAL on disk; its older epoch
            // stamp tells the next recovery to discard it rather than
            // replay already-checkpointed records over renumbered slots.
            w.reset()?;
            w.append(&WalRecord::Epoch { epoch: new_epoch })?;
            w.sync_commit()?;
        }
        self.txns.prune_below(snap.xmax);
        Ok(())
    }

    fn load_checkpoint(&self, path: &Path) -> Result<()> {
        let data = match self.io.read(path)? {
            Some(d) => d,
            None => return Ok(()),
        };
        if data.len() < 20 || &data[..8] != CHECKPOINT_MAGIC {
            return Err(Error::storage("bad checkpoint header"));
        }
        let len = data[8..16]
            .try_into()
            .map(u64::from_le_bytes)
            .map_err(|_| Error::storage("bad checkpoint header"))? as usize;
        let crc = data[16..20]
            .try_into()
            .map(u32::from_le_bytes)
            .map_err(|_| Error::storage("bad checkpoint header"))?;
        if data.len() < 20 + len {
            return Err(Error::storage("truncated checkpoint"));
        }
        let body = &data[20..20 + len];
        if crc32(body) != crc {
            return Err(Error::storage("checkpoint crc mismatch"));
        }
        let mut r = Reader::new(body);
        *self.epoch.lock() = r.u64()?;
        let next_xid = r.u64()?;
        let ntables = r.u32()?;
        for _ in 0..ntables {
            let id = r.u32()?;
            let name = r.str()?;
            let schema = codec::decode_schema(&mut r)?;
            let meta = self.catalog.create_table_with_id(id, &name, schema)?;
            let nrows = r.u64()?;
            for _ in 0..nrows {
                let row = codec::decode_row(&mut r)?;
                meta.heap.insert(FROZEN_XID, row);
            }
        }
        let nkv = r.u32()?;
        for _ in 0..nkv {
            let k = r.str()?;
            let v = r.str()?;
            self.catalog.kv_put(&k, &v);
        }
        self.txns.bump_next_xid(next_xid);
        Ok(())
    }

    fn apply_wal_records(&self, records: Vec<WalRecord>) -> Result<u64> {
        let n = records.len() as u64;
        let mut seen: HashMap<TxnId, TxnStatus> = HashMap::new();
        let mut max_xid = 0;
        // Transactional catalog entries apply only if their transaction
        // committed; buffer them until outcomes are known.
        let mut txn_puts: Vec<(TxnId, String, String)> = Vec::new();
        for rec in records {
            match rec {
                WalRecord::Begin { xid } => {
                    seen.insert(xid, TxnStatus::InProgress);
                    max_xid = max_xid.max(xid);
                }
                WalRecord::Insert {
                    xid,
                    table,
                    slot,
                    row,
                } => {
                    if let Ok(meta) = self.catalog.table_by_id(table) {
                        meta.heap.insert_at(xid, slot, row);
                    }
                    max_xid = max_xid.max(xid);
                }
                WalRecord::Delete { xid, table, slot } => {
                    if let Ok(meta) = self.catalog.table_by_id(table) {
                        meta.heap.delete(xid, slot, |_| true);
                    }
                    max_xid = max_xid.max(xid);
                }
                WalRecord::Commit { xid } => {
                    seen.insert(xid, TxnStatus::Committed);
                }
                WalRecord::Abort { xid } => {
                    seen.insert(xid, TxnStatus::Aborted);
                }
                WalRecord::CreateTable { id, name, schema } => {
                    self.catalog.create_table_with_id(id, &name, schema)?;
                }
                WalRecord::DropTable { id } => {
                    let _ = self.catalog.drop_table(id);
                }
                WalRecord::Truncate { table, .. } => {
                    if let Ok(meta) = self.catalog.table_by_id(table) {
                        meta.heap.truncate();
                    }
                }
                WalRecord::CatalogPut { key, value } => {
                    self.catalog.kv_put(&key, &value);
                }
                WalRecord::CatalogPutTxn { xid, key, value } => {
                    max_xid = max_xid.max(xid);
                    txn_puts.push((xid, key, value));
                }
                WalRecord::CatalogDel { key } => {
                    self.catalog.kv_del(&key);
                }
                // Epoch stamps only gate staleness at open; no state.
                WalRecord::Epoch { .. } => {}
            }
        }
        for (xid, key, value) in txn_puts {
            let committed = seen.get(&xid) == Some(&TxnStatus::Committed);
            if committed {
                self.catalog.kv_put(&key, &value);
            }
        }
        // Transactions with no commit record crashed in flight: aborted.
        for (xid, status) in seen {
            let final_status = if status == TxnStatus::InProgress {
                TxnStatus::Aborted
            } else {
                status
            };
            self.txns.set_status(xid, final_status);
        }
        self.txns.bump_next_xid(max_xid + 1);
        Ok(n)
    }

    fn rebuild_indexes(&self) {
        for meta in self.catalog.all_tables() {
            let defs: Vec<_> = self
                .catalog
                .kv_scan("__index.")
                .into_iter()
                .filter_map(|(k, v)| {
                    let name = k.strip_prefix("__index.")?.to_string();
                    let (tbl, cols) = v.split_once('|')?;
                    if tbl.eq_ignore_ascii_case(&meta.name) {
                        Some((
                            name,
                            cols.split(',').map(str::to_string).collect::<Vec<_>>(),
                        ))
                    } else {
                        None
                    }
                })
                .collect();
            for (name, cols) in defs {
                let positions: Option<Vec<usize>> =
                    cols.iter().map(|c| meta.schema.index_of(c).ok()).collect();
                let Some(positions) = positions else { continue };
                let idx = OrderedIndex::new(positions);
                for (slot, tv) in meta.heap.dump_versions() {
                    if let Some(row) = tv.row {
                        idx.insert(&row, slot);
                    }
                }
                meta.indexes
                    .write()
                    .push(Arc::new(NamedIndex { name, index: idx }));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamrel_types::{row, Column, DataType};

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "streamrel-engine-test-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn schema() -> Schema {
        Schema::new(vec![
            Column::not_null("url", DataType::Text),
            Column::new("hits", DataType::Int),
        ])
        .unwrap()
    }

    fn visible_rows(e: &StorageEngine, table: &str) -> Vec<Row> {
        let id = e.table_id(table).unwrap();
        let snap = e.snapshot();
        let mut rows: Vec<Row> = e
            .scan(id, &snap)
            .unwrap()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        rows.sort_by(|a, b| a[0].sort_cmp(&b[0]));
        rows
    }

    #[test]
    fn insert_commit_scan() {
        let e = StorageEngine::in_memory();
        let t = e.create_table("urls", schema()).unwrap();
        e.with_txn(|xid| {
            e.insert(xid, t, row!["/a", 1i64])?;
            e.insert(xid, t, row!["/b", 2i64])?;
            Ok(())
        })
        .unwrap();
        assert_eq!(
            visible_rows(&e, "urls"),
            vec![row!["/a", 1i64], row!["/b", 2i64]]
        );
    }

    #[test]
    fn failed_txn_leaves_no_trace() {
        let e = StorageEngine::in_memory();
        let t = e.create_table("urls", schema()).unwrap();
        let r: Result<()> = e.with_txn(|xid| {
            e.insert(xid, t, row!["/a", 1i64])?;
            Err(Error::analysis("boom"))
        });
        assert!(r.is_err());
        assert!(visible_rows(&e, "urls").is_empty());
        assert_eq!(e.stats().aborts, 1);
    }

    #[test]
    fn durable_recovery_replays_wal() {
        let dir = tmpdir("recovery");
        {
            let e = StorageEngine::open(&dir).unwrap();
            let t = e.create_table("urls", schema()).unwrap();
            e.with_txn(|xid| {
                e.insert(xid, t, row!["/a", 1i64])?;
                e.insert(xid, t, row!["/b", 2i64])
            })
            .unwrap();
            // Uncommitted transaction, lost on "crash".
            let xid = e.begin().unwrap();
            e.insert(xid, t, row!["/ghost", 9i64]).unwrap();
            if let Some(w) = &e.wal {
                w.lock().sync_commit().unwrap();
            }
            // Drop without commit = crash.
        }
        let e = StorageEngine::open(&dir).unwrap();
        assert_eq!(
            visible_rows(&e, "urls"),
            vec![row!["/a", 1i64], row!["/b", 2i64]],
            "committed rows survive, in-flight insert is aborted"
        );
        assert!(e.stats().replayed > 0);
    }

    #[test]
    fn checkpoint_then_recover() {
        let dir = tmpdir("checkpoint");
        {
            let e = StorageEngine::open(&dir).unwrap();
            let t = e.create_table("urls", schema()).unwrap();
            e.with_txn(|xid| e.insert(xid, t, row!["/a", 1i64]))
                .unwrap();
            e.checkpoint().unwrap();
            // Post-checkpoint WAL traffic.
            e.with_txn(|xid| e.insert(xid, t, row!["/b", 2i64]))
                .unwrap();
        }
        let e = StorageEngine::open(&dir).unwrap();
        assert_eq!(
            visible_rows(&e, "urls"),
            vec![row!["/a", 1i64], row!["/b", 2i64]]
        );
        // DDL after recovery still works (id allocator restored).
        e.create_table("more", schema()).unwrap();
    }

    #[test]
    fn checkpoint_requires_quiescence() {
        let dir = tmpdir("quiesce");
        let e = StorageEngine::open(&dir).unwrap();
        let _t = e.create_table("urls", schema()).unwrap();
        let xid = e.begin().unwrap();
        assert!(e.checkpoint().is_err());
        e.commit(xid).unwrap();
        e.checkpoint().unwrap();
    }

    #[test]
    fn transactional_catalog_put_respects_commit_outcome() {
        let dir = tmpdir("cputx");
        {
            let e = StorageEngine::open(&dir).unwrap();
            let t = e.create_table("arch", schema()).unwrap();
            // Committed: rows + watermark atomically.
            e.with_txn(|x| {
                e.insert(x, t, row!["/a", 1i64])?;
                e.catalog_put_txn(x, "cq_watermark.q", "100")
            })
            .unwrap();
            // In-flight at crash: rows + watermark must BOTH vanish.
            let x = e.begin().unwrap();
            e.insert(x, t, row!["/b", 2i64]).unwrap();
            e.catalog_put_txn(x, "cq_watermark.q", "200").unwrap();
            if let Some(w) = &e.wal {
                w.lock().sync_commit().unwrap();
            }
            // Crash without commit.
        }
        let e = StorageEngine::open(&dir).unwrap();
        assert_eq!(
            e.catalog_get("cq_watermark.q").as_deref(),
            Some("100"),
            "uncommitted watermark must not survive"
        );
        assert_eq!(visible_rows(&e, "arch"), vec![row!["/a", 1i64]]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn catalog_kv_survives_restart() {
        let dir = tmpdir("kv");
        {
            let e = StorageEngine::open(&dir).unwrap();
            e.catalog_put("stream.url_stream", "CREATE STREAM url_stream")
                .unwrap();
            e.catalog_put("view.v", "CREATE VIEW v").unwrap();
            e.catalog_del("view.v").unwrap();
        }
        let e = StorageEngine::open(&dir).unwrap();
        assert_eq!(
            e.catalog_get("stream.url_stream").as_deref(),
            Some("CREATE STREAM url_stream")
        );
        assert!(e.catalog_get("view.v").is_none());
    }

    #[test]
    fn index_accelerated_lookup_respects_visibility() {
        let e = StorageEngine::in_memory();
        let t = e.create_table("urls", schema()).unwrap();
        e.create_index("urls_by_url", "urls", &["url".into()])
            .unwrap();
        e.with_txn(|xid| {
            e.insert(xid, t, row!["/a", 1i64])?;
            e.insert(xid, t, row!["/a", 2i64])?;
            e.insert(xid, t, row!["/b", 3i64])
        })
        .unwrap();
        // Uncommitted row should not appear in index lookups.
        let pending = e.begin().unwrap();
        e.insert(pending, t, row!["/a", 99i64]).unwrap();
        let idx = e.index_on("urls", "url").unwrap();
        let snap = e.snapshot();
        let hits = e
            .index_lookup("urls", &idx, &IndexKey(row!["/a"]), &snap)
            .unwrap();
        assert_eq!(hits.len(), 2);
        e.commit(pending).unwrap();
        let snap = e.snapshot();
        let hits = e
            .index_lookup("urls", &idx, &IndexKey(row!["/a"]), &snap)
            .unwrap();
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn index_survives_restart() {
        let dir = tmpdir("idxrec");
        {
            let e = StorageEngine::open(&dir).unwrap();
            let t = e.create_table("urls", schema()).unwrap();
            e.create_index("by_url", "urls", &["url".into()]).unwrap();
            e.with_txn(|xid| e.insert(xid, t, row!["/a", 1i64]))
                .unwrap();
        }
        let e = StorageEngine::open(&dir).unwrap();
        let idx = e.index_on("urls", "url").expect("index rebuilt");
        let snap = e.snapshot();
        let hits = e
            .index_lookup("urls", &idx, &IndexKey(row!["/a"]), &snap)
            .unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn delete_all_visible_and_vacuum() {
        let e = StorageEngine::in_memory();
        let t = e.create_table("urls", schema()).unwrap();
        e.with_txn(|xid| {
            e.insert(xid, t, row!["/a", 1i64])?;
            e.insert(xid, t, row!["/b", 2i64])
        })
        .unwrap();
        e.with_txn(|xid| {
            let n = e.delete_all_visible(xid, t)?;
            assert_eq!(n, 2);
            e.insert(xid, t, row!["/c", 3i64])
        })
        .unwrap();
        assert_eq!(visible_rows(&e, "urls"), vec![row!["/c", 3i64]]);
        let reclaimed = e.vacuum();
        assert_eq!(reclaimed, 2);
        assert_eq!(visible_rows(&e, "urls"), vec![row!["/c", 3i64]]);
    }

    #[test]
    fn schema_enforced_on_insert() {
        let e = StorageEngine::in_memory();
        let t = e.create_table("urls", schema()).unwrap();
        let r = e.with_txn(|xid| e.insert(xid, t, row![1i64, "/a"]));
        assert!(r.is_err(), "swapped column types must be rejected");
        let r = e.with_txn(|xid| {
            e.insert(
                xid,
                t,
                vec![streamrel_types::Value::Null, streamrel_types::Value::Int(1)],
            )
        });
        assert!(r.is_err(), "NOT NULL violated");
    }

    #[test]
    fn truncate_clears() {
        let e = StorageEngine::in_memory();
        let t = e.create_table("urls", schema()).unwrap();
        e.with_txn(|xid| e.insert(xid, t, row!["/a", 1i64]))
            .unwrap();
        e.truncate(t).unwrap();
        assert!(visible_rows(&e, "urls").is_empty());
    }

    #[test]
    fn drop_table_gone_after_restart() {
        let dir = tmpdir("drop");
        {
            let e = StorageEngine::open(&dir).unwrap();
            e.create_table("urls", schema()).unwrap();
            e.create_table("keep", schema()).unwrap();
            e.drop_table("urls").unwrap();
        }
        let e = StorageEngine::open(&dir).unwrap();
        assert!(!e.has_table("urls"));
        assert!(e.has_table("keep"));
    }
}
