//! Binary encoding of values, rows and schemas for the WAL and checkpoints.
//!
//! Format (little-endian throughout):
//! - `Value`: 1 tag byte, then a fixed or length-prefixed payload.
//! - `Row`: `u32` column count, then each value.
//! - `Schema`: `u32` column count, then per column `(name, type tag,
//!   nullable)` with strings as `u32` length + UTF-8 bytes.
//!
//! Decoding is defensive: every read checks remaining length and returns
//! `Error::Storage` on truncation or unknown tags, so a corrupt WAL tail is
//! reported rather than panicking.

use streamrel_types::{Column, DataType, Error, Result, Row, Schema, Value};

/// Append a `u32` (LE).
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` (LE).
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append an `i64` (LE).
pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Cursor over an encoded byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a slice for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::storage(format!(
                "truncated record: wanted {n} bytes, have {}",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read exactly `N` bytes as an array.
    fn take_arr<const N: usize>(&mut self) -> Result<[u8; N]> {
        self.take(N)?
            .try_into()
            .map_err(|_| Error::storage("short read in record decode"))
    }

    /// Read a `u32` (LE).
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take_arr()?))
    }

    /// Read a `u64` (LE).
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take_arr()?))
    }

    /// Read an `i64` (LE).
    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take_arr()?))
    }

    /// Read a length-prefixed string.
    pub fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| Error::storage("invalid UTF-8 in record"))
    }
}

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_FLOAT: u8 = 3;
const TAG_TEXT: u8 = 4;
const TAG_TS: u8 = 5;
const TAG_IV: u8 = 6;

/// Encode a value.
pub fn encode_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(TAG_NULL),
        Value::Bool(b) => {
            buf.push(TAG_BOOL);
            buf.push(*b as u8);
        }
        Value::Int(i) => {
            buf.push(TAG_INT);
            put_i64(buf, *i);
        }
        Value::Float(f) => {
            buf.push(TAG_FLOAT);
            buf.extend_from_slice(&f.to_le_bytes());
        }
        Value::Text(s) => {
            buf.push(TAG_TEXT);
            put_str(buf, s);
        }
        Value::Timestamp(t) => {
            buf.push(TAG_TS);
            put_i64(buf, *t);
        }
        Value::Interval(i) => {
            buf.push(TAG_IV);
            put_i64(buf, *i);
        }
    }
}

/// Decode a value.
pub fn decode_value(r: &mut Reader<'_>) -> Result<Value> {
    match r.u8()? {
        TAG_NULL => Ok(Value::Null),
        TAG_BOOL => Ok(Value::Bool(r.u8()? != 0)),
        TAG_INT => Ok(Value::Int(r.i64()?)),
        TAG_FLOAT => {
            let bits = r.u64()?;
            Ok(Value::Float(f64::from_bits(bits)))
        }
        TAG_TEXT => Ok(Value::text(r.str()?)),
        TAG_TS => Ok(Value::Timestamp(r.i64()?)),
        TAG_IV => Ok(Value::Interval(r.i64()?)),
        t => Err(Error::storage(format!("unknown value tag {t}"))),
    }
}

/// Encode a row.
pub fn encode_row(buf: &mut Vec<u8>, row: &Row) {
    put_u32(buf, row.len() as u32);
    for v in row {
        encode_value(buf, v);
    }
}

/// Decode a row.
pub fn decode_row(r: &mut Reader<'_>) -> Result<Row> {
    let n = r.u32()? as usize;
    // Sanity bound: no legitimate row has more columns than bytes remaining.
    if n > r.remaining() {
        return Err(Error::storage(format!("implausible row arity {n}")));
    }
    let mut row = Vec::with_capacity(n);
    for _ in 0..n {
        row.push(decode_value(r)?);
    }
    Ok(row)
}

fn type_tag(ty: DataType) -> u8 {
    match ty {
        DataType::Bool => TAG_BOOL,
        DataType::Int => TAG_INT,
        DataType::Float => TAG_FLOAT,
        DataType::Text => TAG_TEXT,
        DataType::Timestamp => TAG_TS,
        DataType::Interval => TAG_IV,
    }
}

fn tag_type(tag: u8) -> Result<DataType> {
    match tag {
        TAG_BOOL => Ok(DataType::Bool),
        TAG_INT => Ok(DataType::Int),
        TAG_FLOAT => Ok(DataType::Float),
        TAG_TEXT => Ok(DataType::Text),
        TAG_TS => Ok(DataType::Timestamp),
        TAG_IV => Ok(DataType::Interval),
        t => Err(Error::storage(format!("unknown type tag {t}"))),
    }
}

/// Encode a schema.
pub fn encode_schema(buf: &mut Vec<u8>, schema: &Schema) {
    put_u32(buf, schema.len() as u32);
    for c in schema.columns() {
        put_str(buf, &c.name);
        buf.push(type_tag(c.ty));
        buf.push(c.nullable as u8);
    }
}

/// Decode a schema.
pub fn decode_schema(r: &mut Reader<'_>) -> Result<Schema> {
    let n = r.u32()? as usize;
    if n > r.remaining() {
        return Err(Error::storage(format!("implausible column count {n}")));
    }
    let mut cols = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str()?;
        let ty = tag_type(r.u8()?)?;
        let nullable = r.u8()? != 0;
        cols.push(Column { name, ty, nullable });
    }
    Ok(Schema::new_unchecked(cols))
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamrel_types::row;

    fn roundtrip_value(v: Value) {
        let mut buf = Vec::new();
        encode_value(&mut buf, &v);
        let mut r = Reader::new(&buf);
        let got = decode_value(&mut r).unwrap();
        assert_eq!(r.remaining(), 0);
        // NaN != NaN under ==? Our PartialEq uses group_eq → sort_cmp →
        // total_cmp, so NaN == NaN holds. Plain assert_eq is fine.
        assert_eq!(got, v);
    }

    #[test]
    fn value_roundtrips() {
        roundtrip_value(Value::Null);
        roundtrip_value(Value::Bool(true));
        roundtrip_value(Value::Int(-42));
        roundtrip_value(Value::Float(3.5));
        roundtrip_value(Value::Float(f64::NAN));
        roundtrip_value(Value::text("héllo wörld"));
        roundtrip_value(Value::Timestamp(1_230_000_000_000_000));
        roundtrip_value(Value::Interval(-5_000_000));
    }

    #[test]
    fn row_roundtrips() {
        let r0 = row!["/a", 7i64, 2.5f64];
        let mut buf = Vec::new();
        encode_row(&mut buf, &r0);
        let mut rd = Reader::new(&buf);
        assert_eq!(decode_row(&mut rd).unwrap(), r0);
    }

    #[test]
    fn schema_roundtrips() {
        let s = Schema::new(vec![
            Column::not_null("url", DataType::Text),
            Column::new("atime", DataType::Timestamp),
        ])
        .unwrap();
        let mut buf = Vec::new();
        encode_schema(&mut buf, &s);
        let mut rd = Reader::new(&buf);
        let got = decode_schema(&mut rd).unwrap();
        assert_eq!(got, s);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        encode_row(&mut buf, &row!["abcdefg", 1i64]);
        for cut in 0..buf.len() {
            let mut rd = Reader::new(&buf[..cut]);
            assert!(decode_row(&mut rd).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn unknown_tag_is_an_error() {
        let buf = vec![99u8];
        let mut rd = Reader::new(&buf);
        assert!(decode_value(&mut rd).is_err());
    }
}
