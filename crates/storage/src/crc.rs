//! CRC-32 (IEEE 802.3 polynomial) for WAL record integrity.
//!
//! Hand-rolled table-driven implementation so the storage layer has no
//! external checksum dependency and the WAL format is fully specified by
//! this crate.

/// Lazily built 256-entry lookup table for the reflected IEEE polynomial.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    })
}

/// Compute the CRC-32 of `data` (same algorithm as zlib's `crc32`).
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vector for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"hello world, this is a wal record".to_vec();
        let orig = crc32(&data);
        data[7] ^= 0x01;
        assert_ne!(crc32(&data), orig);
    }
}
