//! Versioned in-memory heap tables.
//!
//! A heap table is an append-only vector of tuple *versions*; MVCC stamps
//! (`xmin`/`xmax`) plus a [`Snapshot`] decide which versions a reader sees.
//! Updates are delete + insert (new version), as in PostgreSQL. Dead
//! versions are reclaimed by [`HeapTable::vacuum`].

use parking_lot::RwLock;
use streamrel_types::Row;

use crate::txn::{Snapshot, TxnId};

/// Identifies one tuple version: table id plus slot in the heap vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleId {
    /// Owning table.
    pub table: u32,
    /// Slot within the table's heap.
    pub slot: u64,
}

/// One stored version of a row.
#[derive(Debug, Clone)]
pub struct TupleVersion {
    /// Inserting transaction.
    pub xmin: TxnId,
    /// Deleting transaction, or 0 if live.
    pub xmax: TxnId,
    /// The row payload. `None` after vacuum reclaims a dead version.
    pub row: Option<Row>,
}

/// A single versioned table.
///
/// Interior mutability via one `RwLock`: scans take the read lock and clone
/// visible rows out (analytics operators want owned rows anyway), writers
/// take the write lock briefly per tuple.
pub struct HeapTable {
    id: u32,
    versions: RwLock<Vec<TupleVersion>>,
}

impl HeapTable {
    /// New empty heap for table `id`.
    pub fn new(id: u32) -> HeapTable {
        HeapTable {
            id,
            versions: RwLock::new(Vec::new()),
        }
    }

    /// The owning table id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Insert a row stamped with `xid`; returns its TupleId.
    pub fn insert(&self, xid: TxnId, row: Row) -> TupleId {
        let mut v = self.versions.write();
        let slot = v.len() as u64;
        v.push(TupleVersion {
            xmin: xid,
            xmax: 0,
            row: Some(row),
        });
        TupleId {
            table: self.id,
            slot,
        }
    }

    /// Insert at a specific slot (used only by WAL replay so replayed
    /// TupleIds keep their original identity). Intermediate slots are
    /// filled with dead placeholders if the log skipped them.
    pub fn insert_at(&self, xid: TxnId, slot: u64, row: Row) {
        let mut v = self.versions.write();
        while (v.len() as u64) < slot {
            v.push(TupleVersion {
                xmin: 0,
                xmax: 0,
                row: None,
            });
        }
        if (v.len() as u64) == slot {
            v.push(TupleVersion {
                xmin: xid,
                xmax: 0,
                row: Some(row),
            });
        } else {
            v[slot as usize] = TupleVersion {
                xmin: xid,
                xmax: 0,
                row: Some(row),
            };
        }
    }

    /// Mark the version at `slot` deleted by `xid`. Returns false if the
    /// slot is missing or already deleted by a *different committed* txn —
    /// the engine layer turns that into a write-write conflict.
    pub fn delete(&self, xid: TxnId, slot: u64, conflict_ok: impl Fn(TxnId) -> bool) -> bool {
        let mut v = self.versions.write();
        match v.get_mut(slot as usize) {
            Some(tv) if tv.row.is_some() => {
                if tv.xmax != 0 && tv.xmax != xid && !conflict_ok(tv.xmax) {
                    return false;
                }
                tv.xmax = xid;
                true
            }
            _ => false,
        }
    }

    /// Undo a delete stamp (used when the deleting transaction aborts).
    pub fn undelete(&self, xid: TxnId, slot: u64) {
        let mut v = self.versions.write();
        if let Some(tv) = v.get_mut(slot as usize) {
            if tv.xmax == xid {
                tv.xmax = 0;
            }
        }
    }

    /// Number of version slots (live + dead).
    pub fn version_count(&self) -> usize {
        self.versions.read().len()
    }

    /// Scan all versions visible to `snap`, returning `(TupleId, Row)`.
    pub fn scan(&self, snap: &Snapshot, aborted: &dyn Fn(TxnId) -> bool) -> Vec<(TupleId, Row)> {
        let v = self.versions.read();
        let mut out = Vec::new();
        for (slot, tv) in v.iter().enumerate() {
            if let Some(row) = &tv.row {
                if self.version_visible(tv, snap, aborted) {
                    out.push((
                        TupleId {
                            table: self.id,
                            slot: slot as u64,
                        },
                        row.clone(),
                    ));
                }
            }
        }
        out
    }

    /// Visit visible rows without materializing the whole result. The
    /// callback returns `false` to stop early (LIMIT pushdown).
    pub fn for_each_visible(
        &self,
        snap: &Snapshot,
        aborted: &dyn Fn(TxnId) -> bool,
        mut f: impl FnMut(TupleId, &Row) -> bool,
    ) {
        let v = self.versions.read();
        for (slot, tv) in v.iter().enumerate() {
            if let Some(row) = &tv.row {
                if self.version_visible(tv, snap, aborted)
                    && !f(
                        TupleId {
                            table: self.id,
                            slot: slot as u64,
                        },
                        row,
                    )
                {
                    break;
                }
            }
        }
    }

    /// Fetch one row by slot if visible.
    pub fn get(&self, slot: u64, snap: &Snapshot, aborted: &dyn Fn(TxnId) -> bool) -> Option<Row> {
        let v = self.versions.read();
        let tv = v.get(slot as usize)?;
        let row = tv.row.as_ref()?;
        if self.version_visible(tv, snap, aborted) {
            Some(row.clone())
        } else {
            None
        }
    }

    fn version_visible(
        &self,
        tv: &TupleVersion,
        snap: &Snapshot,
        aborted: &dyn Fn(TxnId) -> bool,
    ) -> bool {
        if tv.xmin == 0 || !snap.sees(tv.xmin, aborted) {
            return false;
        }
        // Inserted visibly; check the delete stamp.
        if tv.xmax != 0 && snap.sees(tv.xmax, aborted) {
            return false;
        }
        true
    }

    /// Reclaim versions dead to every possible snapshot: deleted by a
    /// transaction committed before `horizon` (oldest snapshot xmax), or
    /// inserted by an aborted transaction. Returns the reclaimed
    /// `(slot, row)` pairs so callers can unlink index entries.
    pub fn vacuum(
        &self,
        horizon: TxnId,
        committed: &dyn Fn(TxnId) -> bool,
        aborted: &dyn Fn(TxnId) -> bool,
    ) -> Vec<(u64, Row)> {
        let mut v = self.versions.write();
        let mut reclaimed = Vec::new();
        for (slot, tv) in v.iter_mut().enumerate() {
            if tv.row.is_none() {
                continue;
            }
            let insert_dead = aborted(tv.xmin);
            let delete_final = tv.xmax != 0 && tv.xmax < horizon && committed(tv.xmax);
            if insert_dead || delete_final {
                if let Some(row) = tv.row.take() {
                    reclaimed.push((slot as u64, row));
                }
            }
        }
        reclaimed
    }

    /// Snapshot of the raw version vector (used by checkpointing). Dead
    /// slots are skipped.
    pub fn dump_versions(&self) -> Vec<(u64, TupleVersion)> {
        self.versions
            .read()
            .iter()
            .enumerate()
            .filter(|(_, tv)| tv.row.is_some())
            .map(|(i, tv)| (i as u64, tv.clone()))
            .collect()
    }

    /// Truncate: drop every version (DDL-level operation, caller logs it).
    pub fn truncate(&self) {
        self.versions.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::TxnManager;
    use streamrel_types::row;

    fn scan_rows(h: &HeapTable, m: &TxnManager) -> Vec<Row> {
        let snap = m.snapshot(None);
        h.scan(&snap, &|x| m.is_aborted(x))
            .into_iter()
            .map(|(_, r)| r)
            .collect()
    }

    #[test]
    fn committed_insert_is_visible() {
        let m = TxnManager::new();
        let h = HeapTable::new(0);
        let x = m.begin();
        h.insert(x, row![1i64]);
        assert!(scan_rows(&h, &m).is_empty(), "uncommitted invisible");
        m.commit(x);
        assert_eq!(scan_rows(&h, &m), vec![row![1i64]]);
    }

    #[test]
    fn own_uncommitted_writes_visible_to_self() {
        let m = TxnManager::new();
        let h = HeapTable::new(0);
        let x = m.begin();
        h.insert(x, row![1i64]);
        let snap = m.snapshot(Some(x));
        assert_eq!(h.scan(&snap, &|i| m.is_aborted(i)).len(), 1);
    }

    #[test]
    fn aborted_insert_invisible() {
        let m = TxnManager::new();
        let h = HeapTable::new(0);
        let x = m.begin();
        h.insert(x, row![1i64]);
        m.abort(x);
        assert!(scan_rows(&h, &m).is_empty());
    }

    #[test]
    fn delete_hides_row_after_commit() {
        let m = TxnManager::new();
        let h = HeapTable::new(0);
        let x = m.begin();
        let tid = h.insert(x, row![1i64]);
        m.commit(x);
        let y = m.begin();
        assert!(h.delete(y, tid.slot, |_| false));
        assert_eq!(scan_rows(&h, &m).len(), 1, "delete not yet committed");
        m.commit(y);
        assert!(scan_rows(&h, &m).is_empty());
    }

    #[test]
    fn aborted_delete_resurrects() {
        let m = TxnManager::new();
        let h = HeapTable::new(0);
        let x = m.begin();
        let tid = h.insert(x, row![1i64]);
        m.commit(x);
        let y = m.begin();
        h.delete(y, tid.slot, |_| false);
        m.abort(y);
        assert_eq!(scan_rows(&h, &m).len(), 1, "aborted delete is no delete");
    }

    #[test]
    fn snapshot_isolation_reader_does_not_see_later_commit() {
        let m = TxnManager::new();
        let h = HeapTable::new(0);
        let snap = m.snapshot(None); // early snapshot
        let x = m.begin();
        h.insert(x, row![1i64]);
        m.commit(x);
        assert!(h.scan(&snap, &|i| m.is_aborted(i)).is_empty());
        assert_eq!(scan_rows(&h, &m).len(), 1, "fresh snapshot sees it");
    }

    #[test]
    fn write_write_conflict_detected() {
        let m = TxnManager::new();
        let h = HeapTable::new(0);
        let x = m.begin();
        let tid = h.insert(x, row![1i64]);
        m.commit(x);
        let y = m.begin();
        let z = m.begin();
        assert!(h.delete(y, tid.slot, |i| m.is_aborted(i)));
        assert!(
            !h.delete(z, tid.slot, |i| m.is_aborted(i)),
            "second deleter must conflict"
        );
    }

    #[test]
    fn vacuum_reclaims_dead_versions() {
        let m = TxnManager::new();
        let h = HeapTable::new(0);
        let x = m.begin();
        let tid = h.insert(x, row![1i64]);
        h.insert(x, row![2i64]);
        m.commit(x);
        let y = m.begin();
        h.delete(y, tid.slot, |_| false);
        m.commit(y);
        let horizon = m.snapshot(None).xmax;
        let n = h.vacuum(
            horizon,
            &|i| m.status(i) == crate::txn::TxnStatus::Committed,
            &|i| m.is_aborted(i),
        );
        assert_eq!(n.len(), 1);
        assert_eq!(n[0].1, row![1i64]);
        assert_eq!(scan_rows(&h, &m), vec![row![2i64]]);
    }

    #[test]
    fn insert_at_replays_sparse_slots() {
        let m = TxnManager::new();
        let h = HeapTable::new(0);
        h.insert_at(crate::txn::FROZEN_XID, 3, row![9i64]);
        assert_eq!(h.version_count(), 4);
        assert_eq!(scan_rows(&h, &m), vec![row![9i64]]);
    }

    #[test]
    fn early_exit_scan() {
        let m = TxnManager::new();
        let h = HeapTable::new(0);
        let x = m.begin();
        for i in 0..100i64 {
            h.insert(x, row![i]);
        }
        m.commit(x);
        let snap = m.snapshot(None);
        let mut seen = 0;
        h.for_each_visible(&snap, &|i| m.is_aborted(i), |_, _| {
            seen += 1;
            seen < 5
        });
        assert_eq!(seen, 5);
    }
}
