//! Transactions, snapshots and MVCC visibility.
//!
//! streamrel uses PostgreSQL-style multi-version concurrency control: every
//! tuple version carries the inserting transaction id (`xmin`) and, once
//! deleted, the deleting transaction id (`xmax`). A [`Snapshot`] captures
//! which transactions were committed at a point in time; visibility checks
//! compare tuple stamps against the snapshot.
//!
//! The paper leans on exactly this mechanism (§4): "the isolation mechanisms
//! of some RDBMSs, such as multi-version concurrency control, can be extended
//! to provide continuous isolation semantics" — the CQ layer pins one
//! snapshot per window to get *window consistency*.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

/// Transaction identifier. Zero is reserved ("no transaction"); one is the
/// frozen bootstrap transaction that owns checkpointed tuples.
pub type TxnId = u64;

/// The id stamped on tuples restored from a checkpoint: always visible.
pub const FROZEN_XID: TxnId = 1;

/// Commit state of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnStatus {
    /// Still running.
    InProgress,
    /// Durably committed.
    Committed,
    /// Rolled back (its tuples are invisible to everyone).
    Aborted,
}

/// A consistent view of the database at a point in time.
///
/// A transaction `x` is *visible* to the snapshot iff `x` committed before
/// the snapshot was taken: `x < xmax` and `x` was not in the active set and
/// `x` did not later abort.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The id of the snapshot-owning transaction, if any (its own writes are
    /// visible to itself).
    pub own_xid: Option<TxnId>,
    /// First unassigned transaction id at snapshot time.
    pub xmax: TxnId,
    /// Transactions in progress at snapshot time.
    pub active: HashSet<TxnId>,
}

impl Snapshot {
    /// Whether transaction `xid`'s effects are visible in this snapshot.
    /// `aborted` answers "did xid abort?" for ids below `xmax`.
    pub fn sees(&self, xid: TxnId, aborted: &dyn Fn(TxnId) -> bool) -> bool {
        if Some(xid) == self.own_xid {
            return true;
        }
        if xid == FROZEN_XID {
            return true;
        }
        if xid >= self.xmax {
            return false;
        }
        if self.active.contains(&xid) {
            return false;
        }
        !aborted(xid)
    }
}

/// Allocates transaction ids and tracks commit state.
///
/// The status map retains aborted ids forever (they are rare) and committed
/// ids until a checkpoint freezes them; this keeps visibility checks exact
/// without a full commit-log file.
pub struct TxnManager {
    next_xid: AtomicU64,
    inner: RwLock<TxnTables>,
}

struct TxnTables {
    active: HashSet<TxnId>,
    status: HashMap<TxnId, TxnStatus>,
    /// Commit domain (WAL shard) each live transaction logs to. A txn is
    /// confined to one domain for its whole life so its records — and in
    /// particular its Commit — land in a single log, keeping commit
    /// atomicity a single-file property. Entries are dropped on
    /// commit/abort; absent means domain 0.
    domains: HashMap<TxnId, u32>,
}

impl Default for TxnManager {
    fn default() -> Self {
        Self::new()
    }
}

impl TxnManager {
    /// Fresh manager; first user transaction gets id 2 (1 is frozen).
    pub fn new() -> TxnManager {
        TxnManager {
            next_xid: AtomicU64::new(FROZEN_XID + 1),
            inner: RwLock::new(TxnTables {
                active: HashSet::new(),
                status: HashMap::new(),
                domains: HashMap::new(),
            }),
        }
    }

    /// Begin a transaction: allocate an id and mark it active (domain 0).
    pub fn begin(&self) -> TxnId {
        self.begin_on(0)
    }

    /// Begin a transaction pinned to commit domain (WAL shard) `domain`.
    pub fn begin_on(&self, domain: u32) -> TxnId {
        let xid = self.next_xid.fetch_add(1, Ordering::SeqCst);
        let mut t = self.inner.write();
        t.active.insert(xid);
        t.status.insert(xid, TxnStatus::InProgress);
        if domain != 0 {
            t.domains.insert(xid, domain);
        }
        xid
    }

    /// Commit domain `xid` was begun on (0 for unknown/finished ids).
    pub fn domain_of(&self, xid: TxnId) -> u32 {
        self.inner.read().domains.get(&xid).copied().unwrap_or(0)
    }

    /// Mark `xid` committed.
    pub fn commit(&self, xid: TxnId) {
        let mut t = self.inner.write();
        t.active.remove(&xid);
        t.status.insert(xid, TxnStatus::Committed);
        t.domains.remove(&xid);
    }

    /// Mark `xid` aborted.
    pub fn abort(&self, xid: TxnId) {
        let mut t = self.inner.write();
        t.active.remove(&xid);
        t.status.insert(xid, TxnStatus::Aborted);
        t.domains.remove(&xid);
    }

    /// Commit state of `xid`. Unknown ids below the next id are treated as
    /// committed (their status was frozen away by a checkpoint).
    pub fn status(&self, xid: TxnId) -> TxnStatus {
        let t = self.inner.read();
        t.status.get(&xid).copied().unwrap_or(TxnStatus::Committed)
    }

    /// True if `xid` is known to have aborted.
    pub fn is_aborted(&self, xid: TxnId) -> bool {
        self.status(xid) == TxnStatus::Aborted
    }

    /// Take a snapshot, optionally owned by `own_xid`.
    pub fn snapshot(&self, own_xid: Option<TxnId>) -> Snapshot {
        let t = self.inner.read();
        Snapshot {
            own_xid,
            xmax: self.next_xid.load(Ordering::SeqCst),
            active: t.active.clone(),
        }
    }

    /// Number of in-progress transactions.
    pub fn active_count(&self) -> usize {
        self.inner.read().active.len()
    }

    /// Restore the id allocator after recovery so new transactions do not
    /// collide with ids replayed from the WAL.
    pub fn bump_next_xid(&self, min_next: TxnId) {
        let mut cur = self.next_xid.load(Ordering::SeqCst);
        while cur < min_next {
            match self
                .next_xid
                .compare_exchange(cur, min_next, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Record a replayed transaction outcome during WAL recovery.
    pub fn set_status(&self, xid: TxnId, status: TxnStatus) {
        let mut t = self.inner.write();
        match status {
            TxnStatus::InProgress => {
                t.active.insert(xid);
            }
            _ => {
                t.active.remove(&xid);
            }
        }
        t.status.insert(xid, status);
    }

    /// Drop committed statuses below `horizon` (called after a checkpoint —
    /// every surviving tuple was rewritten with the frozen xid).
    pub fn prune_below(&self, horizon: TxnId) {
        let mut t = self.inner.write();
        t.status
            .retain(|&xid, &mut st| xid >= horizon || st == TxnStatus::Aborted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_monotonic() {
        let m = TxnManager::new();
        let a = m.begin();
        let b = m.begin();
        assert!(b > a);
        assert!(a > FROZEN_XID);
    }

    #[test]
    fn snapshot_excludes_active_and_later() {
        let m = TxnManager::new();
        let a = m.begin();
        m.commit(a);
        let b = m.begin(); // still active
        let snap = m.snapshot(None);
        let c = m.begin(); // after snapshot
        m.commit(b);
        m.commit(c);
        let aborted = |x: TxnId| m.is_aborted(x);
        assert!(snap.sees(a, &aborted), "committed-before is visible");
        assert!(!snap.sees(b, &aborted), "active-at-snapshot is invisible");
        assert!(!snap.sees(c, &aborted), "started-after is invisible");
    }

    #[test]
    fn own_writes_visible() {
        let m = TxnManager::new();
        let a = m.begin();
        let snap = m.snapshot(Some(a));
        let aborted = |x: TxnId| m.is_aborted(x);
        assert!(snap.sees(a, &aborted));
    }

    #[test]
    fn aborted_never_visible() {
        let m = TxnManager::new();
        let a = m.begin();
        m.abort(a);
        let snap = m.snapshot(None);
        let aborted = |x: TxnId| m.is_aborted(x);
        assert!(!snap.sees(a, &aborted));
    }

    #[test]
    fn frozen_always_visible() {
        let m = TxnManager::new();
        let snap = m.snapshot(None);
        let aborted = |x: TxnId| m.is_aborted(x);
        assert!(snap.sees(FROZEN_XID, &aborted));
    }

    #[test]
    fn bump_is_idempotent_and_monotonic() {
        let m = TxnManager::new();
        m.bump_next_xid(100);
        m.bump_next_xid(50); // no-op
        let a = m.begin();
        assert!(a >= 100);
    }

    #[test]
    fn domains_track_live_txns_only() {
        let m = TxnManager::new();
        let a = m.begin_on(3);
        let b = m.begin();
        assert_eq!(m.domain_of(a), 3);
        assert_eq!(m.domain_of(b), 0);
        m.commit(a);
        m.abort(b);
        assert_eq!(m.domain_of(a), 0, "finished txns fall back to domain 0");
        assert_eq!(m.domain_of(b), 0);
    }

    #[test]
    fn prune_keeps_aborted() {
        let m = TxnManager::new();
        let a = m.begin();
        m.abort(a);
        let b = m.begin();
        m.commit(b);
        m.prune_below(1_000);
        assert_eq!(m.status(a), TxnStatus::Aborted);
        // b's committed record pruned; unknown == committed.
        assert_eq!(m.status(b), TxnStatus::Committed);
    }
}
