//! Ordered secondary indexes.
//!
//! A B-tree (std `BTreeMap`) mapping composite key values to heap slots.
//! The paper notes that Active Tables "are simply SQL tables, \[so] indexes
//! can be defined over them to further improve query performance" (§3.3) —
//! E1's active-table lookup path uses exactly this.
//!
//! Indexes are *version-oblivious*: they reference every heap slot whose
//! version carried the key; readers re-check MVCC visibility against the
//! heap. Vacuumed slots are removed lazily on lookup or eagerly by
//! [`OrderedIndex::remove`].

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::ops::Bound;

use parking_lot::RwLock;
use streamrel_types::{Row, Value};

/// Composite key wrapper giving `Vec<Value>` a total order (NULLs last,
/// numeric cross-type comparison, per [`Value::sort_cmp`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexKey(pub Vec<Value>);

impl PartialOrd for IndexKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IndexKey {
    fn cmp(&self, other: &Self) -> Ordering {
        for (a, b) in self.0.iter().zip(&other.0) {
            match a.sort_cmp(b) {
                Ordering::Equal => continue,
                o => return o,
            }
        }
        self.0.len().cmp(&other.0.len())
    }
}

/// One secondary index over a table.
pub struct OrderedIndex {
    /// Column positions forming the key.
    key_columns: Vec<usize>,
    tree: RwLock<BTreeMap<IndexKey, Vec<u64>>>,
}

impl OrderedIndex {
    /// New index over the given column positions.
    pub fn new(key_columns: Vec<usize>) -> OrderedIndex {
        OrderedIndex {
            key_columns,
            tree: RwLock::new(BTreeMap::new()),
        }
    }

    /// The key column positions.
    pub fn key_columns(&self) -> &[usize] {
        &self.key_columns
    }

    /// Extract this index's key from a full row.
    pub fn key_of(&self, row: &Row) -> IndexKey {
        IndexKey(self.key_columns.iter().map(|&i| row[i].clone()).collect())
    }

    /// Register a heap slot under the row's key.
    pub fn insert(&self, row: &Row, slot: u64) {
        let key = self.key_of(row);
        self.tree.write().entry(key).or_default().push(slot);
    }

    /// Remove a slot (after vacuum or aborted insert cleanup).
    pub fn remove(&self, row: &Row, slot: u64) {
        let key = self.key_of(row);
        let mut t = self.tree.write();
        if let Some(slots) = t.get_mut(&key) {
            slots.retain(|&s| s != slot);
            if slots.is_empty() {
                t.remove(&key);
            }
        }
    }

    /// Heap slots whose versions carried exactly `key`.
    pub fn lookup(&self, key: &IndexKey) -> Vec<u64> {
        self.tree.read().get(key).cloned().unwrap_or_default()
    }

    /// Heap slots for keys within `[lo, hi]` bounds.
    pub fn range(&self, lo: Bound<IndexKey>, hi: Bound<IndexKey>) -> Vec<u64> {
        let t = self.tree.read();
        t.range((lo, hi))
            .flat_map(|(_, v)| v.iter().copied())
            .collect()
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.tree.read().len()
    }

    /// Drop all entries (table truncate).
    pub fn clear(&self) {
        self.tree.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamrel_types::row;

    #[test]
    fn key_ordering_follows_sort_cmp() {
        let a = IndexKey(row![1i64, "a"]);
        let b = IndexKey(row![1i64, "b"]);
        let c = IndexKey(row![2i64, "a"]);
        assert!(a < b);
        assert!(b < c);
        let null_key = IndexKey(vec![Value::Null]);
        let int_key = IndexKey(row![5i64]);
        assert!(int_key < null_key, "NULLs sort last");
    }

    #[test]
    fn prefix_keys_sort_before_extensions() {
        let short = IndexKey(row![1i64]);
        let long = IndexKey(row![1i64, 0i64]);
        assert!(short < long);
    }

    #[test]
    fn insert_lookup_remove() {
        let idx = OrderedIndex::new(vec![0]);
        let r1 = row!["alpha", 1i64];
        let r2 = row!["alpha", 2i64];
        let r3 = row!["beta", 3i64];
        idx.insert(&r1, 10);
        idx.insert(&r2, 11);
        idx.insert(&r3, 12);
        assert_eq!(idx.lookup(&IndexKey(row!["alpha"])), vec![10, 11]);
        assert_eq!(idx.lookup(&IndexKey(row!["beta"])), vec![12]);
        assert!(idx.lookup(&IndexKey(row!["gamma"])).is_empty());
        idx.remove(&r1, 10);
        assert_eq!(idx.lookup(&IndexKey(row!["alpha"])), vec![11]);
        assert_eq!(idx.key_count(), 2);
    }

    #[test]
    fn range_scan() {
        let idx = OrderedIndex::new(vec![0]);
        for i in 0..10i64 {
            idx.insert(&row![i], i as u64);
        }
        let slots = idx.range(
            Bound::Included(IndexKey(row![3i64])),
            Bound::Excluded(IndexKey(row![7i64])),
        );
        assert_eq!(slots, vec![3, 4, 5, 6]);
        let all = idx.range(Bound::Unbounded, Bound::Unbounded);
        assert_eq!(all.len(), 10);
    }

    #[test]
    fn composite_key_extraction() {
        let idx = OrderedIndex::new(vec![2, 0]);
        let r = row!["x", 1i64, 100i64];
        assert_eq!(idx.key_of(&r), IndexKey(row![100i64, "x"]));
    }

    #[test]
    fn clear_empties() {
        let idx = OrderedIndex::new(vec![0]);
        idx.insert(&row![1i64], 0);
        idx.clear();
        assert_eq!(idx.key_count(), 0);
    }
}
