//! Property-based tests: the accumulator merge law (the invariant the
//! entire shared-slice design rests on) and executor algebraic identities.

use proptest::prelude::*;
use streamrel_exec::expr::{eval, EvalContext};
use streamrel_exec::Accumulator;
use streamrel_sql::plan::{AggFunc, BinaryOp, BoundExpr};
use streamrel_types::Value;

fn arb_vals() -> impl Strategy<Value = Vec<Option<i64>>> {
    prop::collection::vec(prop::option::of(-1000i64..1000), 0..60)
}

fn feed(acc: &mut Accumulator, vals: &[Option<i64>]) {
    for v in vals {
        match v {
            Some(x) => acc.update(Some(&Value::Int(*x))).unwrap(),
            None => acc.update(Some(&Value::Null)).unwrap(),
        }
    }
}

proptest! {
    /// Merge law: for every aggregate and every split of the input,
    /// merging partials equals aggregating the whole. This is exactly why
    /// slice-composed windows (shared mode) match raw re-aggregation.
    #[test]
    fn accumulator_merge_law(
        vals in arb_vals(),
        split in 0usize..60,
        distinct in any::<bool>(),
    ) {
        let split = split.min(vals.len());
        for func in [AggFunc::Count, AggFunc::Sum, AggFunc::Avg, AggFunc::Min, AggFunc::Max] {
            let mut whole = Accumulator::for_func(func, distinct, false);
            feed(&mut whole, &vals);
            let mut left = Accumulator::for_func(func, distinct, false);
            let mut right = Accumulator::for_func(func, distinct, false);
            feed(&mut left, &vals[..split]);
            feed(&mut right, &vals[split..]);
            left.merge(&right).unwrap();
            prop_assert_eq!(
                left.finish(), whole.finish(),
                "{:?} distinct={} split={} vals={:?}", func, distinct, split, vals
            );
        }
    }

    /// Merge is associative: ((a+b)+c) == (a+(b+c)).
    #[test]
    fn accumulator_merge_associative(
        a in arb_vals(), b in arb_vals(), c in arb_vals()
    ) {
        for func in [AggFunc::Count, AggFunc::Sum, AggFunc::Avg, AggFunc::Min, AggFunc::Max] {
            let mk = |vals: &[Option<i64>]| {
                let mut acc = Accumulator::for_func(func, false, false);
                feed(&mut acc, vals);
                acc
            };
            let mut left_assoc = mk(&a);
            left_assoc.merge(&mk(&b)).unwrap();
            left_assoc.merge(&mk(&c)).unwrap();
            let mut bc = mk(&b);
            bc.merge(&mk(&c)).unwrap();
            let mut right_assoc = mk(&a);
            right_assoc.merge(&bc).unwrap();
            prop_assert_eq!(left_assoc.finish(), right_assoc.finish(), "{:?}", func);
        }
    }

    /// Comparison operators are coherent: exactly one of <, =, > holds for
    /// non-null ints, and `a < b` iff `b > a`.
    #[test]
    fn comparison_coherence(a in any::<i64>(), b in any::<i64>()) {
        let ctx = EvalContext::default();
        let bin = |op, l: i64, r: i64| {
            let e = BoundExpr::Binary {
                op,
                left: Box::new(BoundExpr::Literal(Value::Int(l))),
                right: Box::new(BoundExpr::Literal(Value::Int(r))),
                ty: streamrel_types::DataType::Bool,
            };
            eval(&e, &[], &ctx).unwrap() == Value::Bool(true)
        };
        let lt = bin(BinaryOp::Lt, a, b);
        let eq = bin(BinaryOp::Eq, a, b);
        let gt = bin(BinaryOp::Gt, a, b);
        prop_assert_eq!(lt as u8 + eq as u8 + gt as u8, 1);
        prop_assert_eq!(lt, bin(BinaryOp::Gt, b, a));
        prop_assert_eq!(bin(BinaryOp::Le, a, b), lt || eq);
    }

    /// LIKE with only `%`/`_`-free patterns is string equality.
    #[test]
    fn like_without_wildcards_is_equality(
        s in "[a-z]{0,12}",
        p in "[a-z]{0,12}",
    ) {
        prop_assert_eq!(streamrel_exec::expr::like_match(&s, &p), s == p);
    }

    /// `x LIKE x` always holds for wildcard-free strings, and `%` matches
    /// every string.
    #[test]
    fn like_reflexive_and_percent(s in "[a-z0-9 ]{0,16}") {
        prop_assert!(streamrel_exec::expr::like_match(&s, &s));
        prop_assert!(streamrel_exec::expr::like_match(&s, "%"));
    }
}
