//! Plan executor: runs a logical plan over finite relations.
//!
//! One function, [`execute`], serves both query classes of §3.1:
//! - **Snapshot query (SQ)**: no `StreamScan` in the plan; table scans pull
//!   from the [`RelationSource`] and the result is the final relation.
//! - **Continuous query (CQ)**: the CQ runtime calls `execute` once per
//!   window with [`ExecContext::stream_input`] set to that window's
//!   relation and `cq_close` set to the window boundary; the concatenated
//!   per-window results form the output stream (RSTREAM, Figure 1).

use std::collections::HashMap;
use std::sync::Arc;

use streamrel_types::{Error, Relation, Result, Row, Timestamp, Value};

use streamrel_sql::plan::{AggSpec, BoundExpr, LogicalPlan, SortKey};

use crate::agg::Accumulator;
use crate::expr::{eval, eval_predicate, EvalContext};
use crate::join;
use crate::source::RelationSource;

/// Cached executor instruments. Registered once per engine (the registry
/// lookup happens at registration, not per plan execution).
pub struct ExecMetrics {
    /// Plans run to completion (snapshot queries + per-window CQ steps).
    pub plans_run: Arc<streamrel_obs::Counter>,
    /// Result rows produced by completed plans.
    pub rows_out: Arc<streamrel_obs::Counter>,
}

impl ExecMetrics {
    /// Register (or re-attach to) the executor instruments in `registry`.
    pub fn register(registry: &streamrel_obs::Registry) -> ExecMetrics {
        ExecMetrics {
            plans_run: registry.counter("exec.plans_run"),
            rows_out: registry.counter("exec.rows_out"),
        }
    }
}

/// Everything `execute` needs besides the plan.
pub struct ExecContext<'a> {
    /// Table provider (MVCC scans live behind this).
    pub source: &'a dyn RelationSource,
    /// The current window's rows for the plan's single `StreamScan`, if
    /// this is one step of a CQ. Keyed by stream name (lower case).
    pub stream_input: Option<(&'a str, &'a Relation)>,
    /// Window close timestamp for `cq_close(*)`.
    pub cq_close: Option<Timestamp>,
    /// Optional executor instruments, bumped once per completed plan.
    pub metrics: Option<&'a ExecMetrics>,
}

impl<'a> ExecContext<'a> {
    /// Context for a snapshot query.
    pub fn snapshot(source: &'a dyn RelationSource) -> ExecContext<'a> {
        ExecContext {
            source,
            stream_input: None,
            cq_close: None,
            metrics: None,
        }
    }

    /// Context for one window of a CQ.
    pub fn window(
        source: &'a dyn RelationSource,
        stream: &'a str,
        rows: &'a Relation,
        close: Timestamp,
    ) -> ExecContext<'a> {
        ExecContext {
            source,
            stream_input: Some((stream, rows)),
            cq_close: Some(close),
            metrics: None,
        }
    }

    /// Attach executor instruments (builder style).
    pub fn with_metrics(mut self, metrics: &'a ExecMetrics) -> ExecContext<'a> {
        self.metrics = Some(metrics);
        self
    }

    fn eval_ctx(&self) -> EvalContext {
        EvalContext {
            cq_close: self.cq_close,
        }
    }
}

/// Execute a plan to a materialized relation.
pub fn execute(plan: &LogicalPlan, ctx: &ExecContext<'_>) -> Result<Relation> {
    let rel = execute_node(plan, ctx)?;
    if let Some(m) = ctx.metrics {
        m.plans_run.inc();
        m.rows_out.add(rel.len() as u64);
    }
    Ok(rel)
}

/// Recursive worker: executes one plan node (metrics are observed only at
/// the top level, by [`execute`]).
fn execute_node(plan: &LogicalPlan, ctx: &ExecContext<'_>) -> Result<Relation> {
    let ectx = ctx.eval_ctx();
    match plan {
        LogicalPlan::OneRow => {
            let mut rel = Relation::empty(plan.schema());
            rel.push(Vec::new());
            Ok(rel)
        }
        LogicalPlan::TableScan { table, .. } => ctx.source.scan_table(table),
        LogicalPlan::StreamScan { stream, .. } => match ctx.stream_input {
            Some((name, rel)) if name.eq_ignore_ascii_case(stream) => Ok((*rel).clone()),
            Some((name, _)) => Err(Error::stream(format!(
                "executor was given window input for `{name}` but the plan scans `{stream}`"
            ))),
            None => Err(Error::stream(format!(
                "continuous plan over `{stream}` executed without window input \
                 (run it through the CQ runtime)"
            ))),
        },
        LogicalPlan::Filter { input, predicate } => {
            let rel = execute_node(input, ctx)?;
            let mut out = Relation::empty(rel.schema().clone());
            for row in rel.rows() {
                if eval_predicate(predicate, row, &ectx)? {
                    out.push(row.clone());
                }
            }
            Ok(out)
        }
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => {
            let rel = execute_node(input, ctx)?;
            let mut out = Relation::empty(schema.clone());
            for row in rel.rows() {
                let mut new_row = Vec::with_capacity(exprs.len());
                for e in exprs {
                    new_row.push(eval(e, row, &ectx)?);
                }
                out.push(new_row);
            }
            Ok(out)
        }
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            aggs,
            schema,
        } => {
            let rel = execute_node(input, ctx)?;
            aggregate(&rel, group_exprs, aggs, schema.clone(), &ectx)
        }
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            schema,
        } => {
            let l = execute_node(left, ctx)?;
            // No left rows → no output rows for INNER/LEFT/CROSS; skip
            // materializing the right side entirely. This matters for CQs:
            // empty windows would otherwise re-scan joined tables (e.g.
            // Example 5's archive) once per idle ADVANCE.
            if l.is_empty() {
                return Ok(Relation::empty(schema.clone()));
            }
            // Index nested-loop: when the right side is a table scan with
            // a usable index on an equi-join column, probe the index per
            // left row instead of materializing + hashing the table.
            if let Some(rel) = try_index_join(&l, right, *kind, on.as_ref(), schema, ctx)? {
                return Ok(rel);
            }
            let r = execute_node(right, ctx)?;
            join::join(&l, &r, *kind, on.as_ref(), schema.clone(), &ectx)
        }
        LogicalPlan::Sort { input, keys } => {
            let mut rel = execute_node(input, ctx)?;
            sort_relation(&mut rel, keys, &ectx)?;
            Ok(rel)
        }
        LogicalPlan::Limit { input, n } => {
            let rel = execute_node(input, ctx)?;
            let schema = rel.schema().clone();
            let mut rows = rel.into_rows();
            rows.truncate(*n as usize);
            Ok(Relation::new(schema, rows))
        }
        LogicalPlan::Distinct { input } => {
            let rel = execute_node(input, ctx)?;
            let schema = rel.schema().clone();
            let mut seen: std::collections::HashSet<Row> = std::collections::HashSet::new();
            let mut out = Relation::empty(schema);
            for row in rel.into_rows() {
                if seen.insert(row.clone()) {
                    out.push(row);
                }
            }
            Ok(out)
        }
    }
}

/// Attempt an index nested-loop join. Engages when the right child is a
/// bare `TableScan`, the ON clause has an equi-condition whose right side
/// is a plain column, and the source reports an index on that column.
/// Returns `Ok(None)` to fall back to hash/nested-loop join.
fn try_index_join(
    left: &Relation,
    right_plan: &LogicalPlan,
    kind: streamrel_sql::plan::JoinKind,
    on: Option<&BoundExpr>,
    out_schema: &streamrel_sql::plan::SchemaRef,
    ctx: &ExecContext<'_>,
) -> Result<Option<Relation>> {
    use streamrel_sql::plan::JoinKind;
    // Accept a bare TableScan or a pushed-down Filter(TableScan); the
    // filter predicate (over the right row alone) applies per candidate.
    let (table, right_schema, right_filter) = match right_plan {
        LogicalPlan::TableScan { table, schema } => (table, schema, None),
        LogicalPlan::Filter { input, predicate } => match input.as_ref() {
            LogicalPlan::TableScan { table, schema } => (table, schema, Some(predicate)),
            _ => return Ok(None),
        },
        _ => return Ok(None),
    };
    let Some(on) = on else { return Ok(None) };
    let left_width = left.schema().len();
    let Some(keys) = join::extract_keys(on, left_width) else {
        return Ok(None);
    };
    // Pick the first key pair whose right side is a plain column with an
    // index; the remaining key pairs become residual equality checks.
    let mut probe: Option<(usize, String)> = None; // (key idx, column name)
    for (i, r) in keys.right.iter().enumerate() {
        if let BoundExpr::Column { index, .. } = r {
            let col = &right_schema.column(*index).name;
            // Cheap existence probe: ask for a lookup of a sentinel; a
            // `None` answer means no index on this column.
            if ctx.source.index_lookup(table, col, &Value::Null)?.is_some() {
                probe = Some((i, col.clone()));
                break;
            }
        }
    }
    let Some((key_idx, column)) = probe else {
        return Ok(None);
    };
    let ectx = ctx.eval_ctx();
    let right_width = right_schema.len();
    let mut out = Relation::empty(out_schema.clone());
    for l in left.rows() {
        let key = eval(&keys.left[key_idx], l, &ectx)?;
        let mut matched = false;
        if !key.is_null() {
            let candidates = ctx
                .source
                .index_lookup(table, &column, &key)?
                .unwrap_or_default();
            'cand: for r in candidates {
                // Pushed-down right-side filter first.
                if let Some(f) = right_filter {
                    if !eval_predicate(f, &r, &ectx)? {
                        continue 'cand;
                    }
                }
                // Verify the remaining equi keys and residual predicates.
                for (i, (lk, rk)) in keys.left.iter().zip(&keys.right).enumerate() {
                    if i == key_idx {
                        continue;
                    }
                    let lv = eval(lk, l, &ectx)?;
                    let rv = eval(rk, &r, &ectx)?;
                    if lv.sql_eq(&rv) != Some(true) {
                        continue 'cand;
                    }
                }
                let combined = streamrel_types::row::concat(l, &r);
                for p in &keys.residual {
                    if !eval_predicate(p, &combined, &ectx)? {
                        continue 'cand;
                    }
                }
                matched = true;
                out.push(combined);
            }
        }
        if !matched && kind == JoinKind::Left {
            let mut combined = l.clone();
            combined.extend(std::iter::repeat_n(Value::Null, right_width));
            out.push(combined);
        }
    }
    Ok(Some(out))
}

/// Hash aggregation over a materialized relation. Exposed so the CQ
/// sharing layer can reuse it for per-slice partials.
pub fn aggregate(
    input: &Relation,
    group_exprs: &[BoundExpr],
    aggs: &[AggSpec],
    out_schema: streamrel_sql::plan::SchemaRef,
    ectx: &EvalContext,
) -> Result<Relation> {
    let mut groups: HashMap<Vec<Value>, Vec<Accumulator>> = HashMap::new();
    // Preserve first-seen group order for deterministic output.
    let mut order: Vec<Vec<Value>> = Vec::new();
    for row in input.rows() {
        let key: Vec<Value> = group_exprs
            .iter()
            .map(|e| eval(e, row, ectx))
            .collect::<Result<_>>()?;
        let accs = match groups.get_mut(&key) {
            Some(a) => a,
            None => {
                order.push(key.clone());
                groups
                    .entry(key.clone())
                    .or_insert_with(|| aggs.iter().map(Accumulator::new).collect())
            }
        };
        for (acc, spec) in accs.iter_mut().zip(aggs) {
            match &spec.arg {
                Some(arg_expr) => {
                    let v = eval(arg_expr, row, ectx)?;
                    acc.update(Some(&v))?;
                }
                None => acc.update(None)?,
            }
        }
    }
    let mut out = Relation::empty(out_schema);
    if groups.is_empty() && group_exprs.is_empty() {
        // Global aggregate over empty input: one row of defaults.
        let accs: Vec<Accumulator> = aggs.iter().map(Accumulator::new).collect();
        let row: Row = accs.iter().map(Accumulator::finish).collect();
        out.push(row);
        return Ok(out);
    }
    for key in order {
        let accs = &groups[&key];
        let mut row = key;
        row.extend(accs.iter().map(Accumulator::finish));
        out.push(row);
    }
    Ok(out)
}

/// Stable multi-key sort (NULLs last per `Value::sort_cmp`).
pub fn sort_relation(rel: &mut Relation, keys: &[SortKey], ectx: &EvalContext) -> Result<()> {
    // Precompute key tuples to avoid re-evaluating during comparisons.
    let mut keyed: Vec<(Vec<Value>, Row)> = Vec::with_capacity(rel.len());
    let schema = rel.schema().clone();
    for row in std::mem::take(rel.rows_mut()) {
        let k: Vec<Value> = keys
            .iter()
            .map(|s| eval(&s.expr, &row, ectx))
            .collect::<Result<_>>()?;
        keyed.push((k, row));
    }
    keyed.sort_by(|(ka, _), (kb, _)| {
        for (i, s) in keys.iter().enumerate() {
            let ord = ka[i].sort_cmp(&kb[i]);
            let ord = if s.asc { ord } else { ord.reverse() };
            if !ord.is_eq() {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    *rel = Relation::new(schema, keyed.into_iter().map(|(_, r)| r).collect());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::MapSource;
    use std::collections::HashMap as StdHashMap;
    use std::sync::Arc;
    use streamrel_sql::analyzer::{Analyzer, RelKind, SchemaProvider};
    use streamrel_sql::ast::Statement;
    use streamrel_sql::parser::parse_statement;
    use streamrel_sql::plan::SchemaRef;
    use streamrel_types::{row, Column, DataType, Schema};

    struct Fixture {
        rels: StdHashMap<String, (SchemaRef, RelKind)>,
        source: MapSource,
    }

    impl SchemaProvider for Fixture {
        fn relation(&self, name: &str) -> Option<(SchemaRef, RelKind)> {
            self.rels.get(&name.to_ascii_lowercase()).cloned()
        }
    }

    fn fixture() -> Fixture {
        let orders_schema = Arc::new(
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("cust", DataType::Text),
                Column::new("amount", DataType::Float),
                Column::new("region", DataType::Text),
            ])
            .unwrap(),
        );
        let orders = Relation::new(
            orders_schema.clone(),
            vec![
                row![1i64, "alice", 10.0, "west"],
                row![2i64, "bob", 20.0, "east"],
                row![3i64, "alice", 30.0, "west"],
                row![4i64, "carol", 5.0, "east"],
                row![5i64, "alice", 1.0, "east"],
            ],
        );
        let cust_schema = Arc::new(
            Schema::new(vec![
                Column::new("name", DataType::Text),
                Column::new("tier", DataType::Text),
            ])
            .unwrap(),
        );
        let customers = Relation::new(
            cust_schema.clone(),
            vec![row!["alice", "gold"], row!["bob", "silver"]],
        );
        let mut rels = StdHashMap::new();
        rels.insert("orders".into(), (orders_schema, RelKind::Table));
        rels.insert("customers".into(), (cust_schema, RelKind::Table));
        let source = MapSource::new()
            .with("orders", orders)
            .with("customers", customers);
        Fixture { rels, source }
    }

    fn run(fx: &Fixture, sql: &str) -> Relation {
        let Statement::Select(q) = parse_statement(sql).unwrap() else {
            panic!("not select");
        };
        let analyzed = Analyzer::new(fx).analyze(&q).unwrap();
        execute(&analyzed.plan, &ExecContext::snapshot(&fx.source)).unwrap()
    }

    #[test]
    fn select_star() {
        let fx = fixture();
        let out = run(&fx, "select * from orders");
        assert_eq!(out.len(), 5);
        assert_eq!(out.schema().len(), 4);
    }

    #[test]
    fn filter_and_project() {
        let fx = fixture();
        let out = run(
            &fx,
            "select cust, amount * 2 dbl from orders where amount >= 10",
        );
        assert_eq!(out.len(), 3);
        assert_eq!(out.rows()[0], row!["alice", 20.0]);
        assert_eq!(out.schema().column(1).name, "dbl");
    }

    #[test]
    fn group_by_with_having_and_order() {
        let fx = fixture();
        let out = run(
            &fx,
            "select cust, count(*) n, sum(amount) total from orders \
             group by cust having count(*) > 1 order by total desc",
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0], row!["alice", 3i64, 41.0]);
    }

    #[test]
    fn global_aggregate_empty_input() {
        let fx = fixture();
        let out = run(
            &fx,
            "select count(*) n, sum(amount) s from orders where id > 100",
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0], vec![Value::Int(0), Value::Null]);
    }

    #[test]
    fn join_with_projection() {
        let fx = fixture();
        let out = run(
            &fx,
            "select o.cust, c.tier, o.amount from orders o \
             join customers c on o.cust = c.name \
             where o.amount > 5 order by o.amount",
        );
        assert_eq!(out.len(), 3);
        assert_eq!(out.rows()[0], row!["alice", "gold", 10.0]);
    }

    #[test]
    fn left_join_keeps_unmatched() {
        let fx = fixture();
        let out = run(
            &fx,
            "select o.cust, c.tier from orders o \
             left join customers c on o.cust = c.name \
             where o.id = 4",
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0], vec![Value::text("carol"), Value::Null]);
    }

    #[test]
    fn order_by_limit_top_n() {
        let fx = fixture();
        let out = run(
            &fx,
            "select cust, amount from orders order by amount desc limit 2",
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out.rows()[0], row!["alice", 30.0]);
        assert_eq!(out.rows()[1], row!["bob", 20.0]);
    }

    #[test]
    fn distinct_rows() {
        let fx = fixture();
        let out = run(&fx, "select distinct region from orders order by region");
        assert_eq!(out.len(), 2);
        assert_eq!(out.rows()[0], row!["east"]);
    }

    #[test]
    fn subquery_in_from() {
        let fx = fixture();
        let out = run(
            &fx,
            "select t.cust, t.total from \
             (select cust, sum(amount) total from orders group by cust) t \
             where t.total > 15 order by t.total desc",
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out.rows()[0], row!["alice", 41.0]);
        assert_eq!(out.rows()[1], row!["bob", 20.0]);
    }

    #[test]
    fn select_without_from() {
        let fx = fixture();
        let out = run(&fx, "select 2 + 3 five");
        assert_eq!(out.rows(), &[row![5i64]]);
    }

    #[test]
    fn case_and_in_execute() {
        let fx = fixture();
        let out = run(
            &fx,
            "select cust, case when amount > 15 then 'big' else 'small' end sz \
             from orders where region in ('west') order by id",
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out.rows()[0], row!["alice", "small"]);
        assert_eq!(out.rows()[1], row!["alice", "big"]);
    }

    #[test]
    fn aggregate_group_order_is_first_seen() {
        let fx = fixture();
        let out = run(&fx, "select region, count(*) c from orders group by region");
        assert_eq!(out.rows()[0][0], Value::text("west"));
        assert_eq!(out.rows()[1][0], Value::text("east"));
    }

    #[test]
    fn count_distinct() {
        let fx = fixture();
        let out = run(&fx, "select count(distinct cust) from orders");
        assert_eq!(out.rows()[0], row![3i64]);
    }

    #[test]
    fn stream_scan_without_runtime_errors() {
        let mut fx = fixture();
        let s = Arc::new(
            Schema::new(vec![
                Column::new("x", DataType::Int),
                Column::not_null("ts", DataType::Timestamp),
            ])
            .unwrap(),
        );
        fx.rels
            .insert("s".into(), (s, RelKind::Stream { cqtime: Some(1) }));
        let Statement::Select(q) =
            parse_statement("select count(*) from s <tumbling '1 minute'>").unwrap()
        else {
            panic!()
        };
        let analyzed = Analyzer::new(&fx).analyze(&q).unwrap();
        let err = execute(&analyzed.plan, &ExecContext::snapshot(&fx.source)).unwrap_err();
        assert!(err.to_string().contains("CQ runtime"), "{err}");
    }

    #[test]
    fn stream_scan_with_window_input() {
        let mut fx = fixture();
        let s_schema = Arc::new(
            Schema::new(vec![
                Column::new("url", DataType::Text),
                Column::not_null("ts", DataType::Timestamp),
            ])
            .unwrap(),
        );
        fx.rels.insert(
            "url_stream".into(),
            (s_schema.clone(), RelKind::Stream { cqtime: Some(1) }),
        );
        let Statement::Select(q) = parse_statement(
            "select url, count(*) c, cq_close(*) w from url_stream \
             <tumbling '1 minute'> group by url order by c desc",
        )
        .unwrap() else {
            panic!()
        };
        let analyzed = Analyzer::new(&fx).analyze(&q).unwrap();
        let window_rows = Relation::new(
            s_schema,
            vec![
                row!["/a", Value::Timestamp(1)],
                row!["/b", Value::Timestamp(2)],
                row!["/a", Value::Timestamp(3)],
            ],
        );
        let ctx = ExecContext::window(&fx.source, "url_stream", &window_rows, 60_000_000);
        let out = execute(&analyzed.plan, &ctx).unwrap();
        assert_eq!(
            out.rows()[0],
            row!["/a", 2i64, Value::Timestamp(60_000_000)]
        );
        assert_eq!(
            out.rows()[1],
            row!["/b", 1i64, Value::Timestamp(60_000_000)]
        );
    }
}

#[cfg(test)]
mod index_join_tests {
    use super::*;
    use crate::source::MapSource;
    use std::collections::HashMap as StdMap;
    use std::sync::Arc;
    use streamrel_sql::plan::{BinaryOp, JoinKind};
    use streamrel_types::{row, Column, DataType, Schema};

    /// A MapSource wrapper that serves index lookups for one column and
    /// counts how often the base scan vs the index was used.
    struct IndexedSource {
        inner: MapSource,
        indexed: StdMap<String, usize>, // table -> key column
        scans: std::cell::Cell<u32>,
        lookups: std::cell::Cell<u32>,
    }

    impl RelationSource for IndexedSource {
        fn scan_table(&self, table: &str) -> Result<Relation> {
            self.scans.set(self.scans.get() + 1);
            self.inner.scan_table(table)
        }
        fn index_lookup(&self, table: &str, column: &str, key: &Value) -> Result<Option<Vec<Row>>> {
            let Some(&col) = self.indexed.get(&table.to_ascii_lowercase()) else {
                return Ok(None);
            };
            let rel = self.inner.scan_table(table)?;
            if !rel.schema().column(col).name.eq_ignore_ascii_case(column) {
                return Ok(None);
            }
            if key.is_null() {
                return Ok(Some(vec![]));
            }
            self.lookups.set(self.lookups.get() + 1);
            Ok(Some(
                rel.rows()
                    .iter()
                    .filter(|r| r[col].sql_eq(key) == Some(true))
                    .cloned()
                    .collect(),
            ))
        }
    }

    fn schema(cols: &[(&str, DataType)]) -> streamrel_sql::plan::SchemaRef {
        Arc::new(Schema::new_unchecked(
            cols.iter().map(|(n, t)| Column::new(*n, *t)).collect(),
        ))
    }

    fn join_plan(on: BoundExpr, kind: JoinKind) -> LogicalPlan {
        let left = LogicalPlan::TableScan {
            table: "l".into(),
            schema: schema(&[("k", DataType::Int), ("a", DataType::Text)]),
        };
        let right = LogicalPlan::TableScan {
            table: "r".into(),
            schema: schema(&[("k", DataType::Int), ("b", DataType::Text)]),
        };
        let out = Arc::new(left.schema().join(&right.schema()));
        LogicalPlan::Join {
            left: Box::new(left),
            right: Box::new(right),
            kind,
            on: Some(on),
            schema: out,
        }
    }

    fn eq_on() -> BoundExpr {
        BoundExpr::Binary {
            op: BinaryOp::Eq,
            left: Box::new(BoundExpr::Column {
                index: 0,
                ty: DataType::Int,
            }),
            right: Box::new(BoundExpr::Column {
                index: 2,
                ty: DataType::Int,
            }),
            ty: DataType::Bool,
        }
    }

    fn source(index_right: bool) -> IndexedSource {
        let l = Relation::new(
            schema(&[("k", DataType::Int), ("a", DataType::Text)]),
            vec![row![1i64, "x"], row![2i64, "y"], row![9i64, "z"]],
        );
        let r = Relation::new(
            schema(&[("k", DataType::Int), ("b", DataType::Text)]),
            vec![row![1i64, "one"], row![2i64, "two"], row![2i64, "deux"]],
        );
        let mut indexed = StdMap::new();
        if index_right {
            indexed.insert("r".to_string(), 0usize);
        }
        IndexedSource {
            inner: MapSource::new().with("l", l).with("r", r),
            indexed,
            scans: Default::default(),
            lookups: Default::default(),
        }
    }

    #[test]
    fn index_join_engages_and_matches_hash_join() {
        let plan = join_plan(eq_on(), JoinKind::Inner);
        let with_idx = source(true);
        let idx_out = execute(&plan, &ExecContext::snapshot(&with_idx)).unwrap();
        assert!(with_idx.lookups.get() > 0, "index path engaged");
        // r is never fully scanned by the join (only l).
        let without = source(false);
        let hash_out = execute(&plan, &ExecContext::snapshot(&without)).unwrap();
        assert_eq!(without.lookups.get(), 0, "fallback used no index");
        let norm = |rel: &Relation| {
            let mut v: Vec<String> = rel.rows().iter().map(|r| format!("{r:?}")).collect();
            v.sort();
            v
        };
        assert_eq!(norm(&idx_out), norm(&hash_out));
        assert_eq!(idx_out.len(), 3); // 1-one, 2-two, 2-deux
    }

    #[test]
    fn index_left_join_pads_unmatched() {
        let plan = join_plan(eq_on(), JoinKind::Left);
        let src = source(true);
        let out = execute(&plan, &ExecContext::snapshot(&src)).unwrap();
        assert_eq!(out.len(), 4);
        let unmatched: Vec<_> = out.rows().iter().filter(|r| r[2].is_null()).collect();
        assert_eq!(unmatched.len(), 1);
        assert_eq!(unmatched[0][0], Value::Int(9));
    }

    #[test]
    fn pushed_filter_respected_by_index_path() {
        // Join with a right-side filter below (as the optimizer produces).
        let left = LogicalPlan::TableScan {
            table: "l".into(),
            schema: schema(&[("k", DataType::Int), ("a", DataType::Text)]),
        };
        let right = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::TableScan {
                table: "r".into(),
                schema: schema(&[("k", DataType::Int), ("b", DataType::Text)]),
            }),
            predicate: BoundExpr::Binary {
                op: BinaryOp::Eq,
                left: Box::new(BoundExpr::Column {
                    index: 1,
                    ty: DataType::Text,
                }),
                right: Box::new(BoundExpr::Literal(Value::text("two"))),
                ty: DataType::Bool,
            },
        };
        let out_schema = Arc::new(left.schema().join(&right.schema()));
        let plan = LogicalPlan::Join {
            left: Box::new(left),
            right: Box::new(right),
            kind: JoinKind::Inner,
            on: Some(eq_on()),
            schema: out_schema,
        };
        let src = source(true);
        let out = execute(&plan, &ExecContext::snapshot(&src)).unwrap();
        assert!(src.lookups.get() > 0);
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][3], Value::text("two"));
    }
}
