//! Scalar expression evaluation over a single row.

use streamrel_types::{DataType, Error, Result, Timestamp, Value};

use streamrel_sql::plan::{BinaryOp, BoundExpr, ScalarFunc, UnaryOp};

/// Per-evaluation context: values the expression tree cannot get from the
/// row itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct EvalContext {
    /// The close timestamp of the current window (`cq_close(*)`), set by
    /// the CQ runtime. `None` in snapshot queries.
    pub cq_close: Option<Timestamp>,
}

impl EvalContext {
    /// Context for one window close.
    pub fn for_window(close: Timestamp) -> EvalContext {
        EvalContext {
            cq_close: Some(close),
        }
    }
}

/// Evaluate a bound expression against a row.
pub fn eval(expr: &BoundExpr, row: &[Value], ctx: &EvalContext) -> Result<Value> {
    match expr {
        BoundExpr::Literal(v) => Ok(v.clone()),
        BoundExpr::Column { index, .. } => row
            .get(*index)
            .cloned()
            .ok_or_else(|| Error::analysis(format!("column index {index} out of range"))),
        BoundExpr::CqClose => ctx
            .cq_close
            .map(Value::Timestamp)
            .ok_or_else(|| Error::stream("cq_close(*) outside a window evaluation")),
        BoundExpr::Unary { op, expr } => {
            let v = eval(expr, row, ctx)?;
            eval_unary(*op, v)
        }
        BoundExpr::Binary {
            op, left, right, ..
        } => {
            // Short-circuit AND / OR with SQL three-valued logic.
            match op {
                BinaryOp::And => {
                    let l = eval(left, row, ctx)?.as_bool()?;
                    if l == Some(false) {
                        return Ok(Value::Bool(false));
                    }
                    let r = eval(right, row, ctx)?.as_bool()?;
                    Ok(match (l, r) {
                        (Some(true), Some(true)) => Value::Bool(true),
                        (_, Some(false)) => Value::Bool(false),
                        _ => Value::Null,
                    })
                }
                BinaryOp::Or => {
                    let l = eval(left, row, ctx)?.as_bool()?;
                    if l == Some(true) {
                        return Ok(Value::Bool(true));
                    }
                    let r = eval(right, row, ctx)?.as_bool()?;
                    Ok(match (l, r) {
                        (Some(false), Some(false)) => Value::Bool(false),
                        (_, Some(true)) => Value::Bool(true),
                        _ => Value::Null,
                    })
                }
                _ => {
                    let l = eval(left, row, ctx)?;
                    let r = eval(right, row, ctx)?;
                    eval_binary(*op, l, r)
                }
            }
        }
        BoundExpr::Cast { expr, ty } => eval(expr, row, ctx)?.cast(*ty),
        BoundExpr::IsNull { expr, negated } => {
            let v = eval(expr, row, ctx)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        BoundExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval(expr, row, ctx)?;
            let p = eval(pattern, row, ctx)?;
            if v.is_null() || p.is_null() {
                return Ok(Value::Null);
            }
            let matched = like_match(v.as_text()?, p.as_text()?);
            Ok(Value::Bool(matched != *negated))
        }
        BoundExpr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(expr, row, ctx)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let iv = eval(item, row, ctx)?;
                match v.sql_eq(&iv) {
                    Some(true) => return Ok(Value::Bool(!*negated)),
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(*negated))
            }
        }
        BoundExpr::Case {
            operand,
            whens,
            else_expr,
            ..
        } => {
            let op_val = operand.as_ref().map(|e| eval(e, row, ctx)).transpose()?;
            for (cond, result) in whens {
                let hit = match &op_val {
                    Some(v) => {
                        let c = eval(cond, row, ctx)?;
                        v.sql_eq(&c) == Some(true)
                    }
                    None => eval(cond, row, ctx)?.as_bool()? == Some(true),
                };
                if hit {
                    return eval(result, row, ctx);
                }
            }
            match else_expr {
                Some(e) => eval(e, row, ctx),
                None => Ok(Value::Null),
            }
        }
        BoundExpr::ScalarFunc { func, args, .. } => {
            let vals: Vec<Value> = args
                .iter()
                .map(|a| eval(a, row, ctx))
                .collect::<Result<_>>()?;
            eval_scalar(*func, vals)
        }
    }
}

/// Evaluate a predicate to a definite boolean: NULL counts as false (SQL
/// WHERE semantics).
pub fn eval_predicate(expr: &BoundExpr, row: &[Value], ctx: &EvalContext) -> Result<bool> {
    Ok(eval(expr, row, ctx)?.as_bool()?.unwrap_or(false))
}

fn eval_unary(op: UnaryOp, v: Value) -> Result<Value> {
    if v.is_null() {
        return Ok(Value::Null);
    }
    match op {
        UnaryOp::Not => Ok(Value::Bool(!v.as_bool()?.unwrap())),
        UnaryOp::Neg => match v {
            Value::Int(i) => i
                .checked_neg()
                .map(Value::Int)
                .ok_or_else(|| Error::Arithmetic("integer negation overflow".into())),
            Value::Float(f) => Ok(Value::Float(-f)),
            Value::Interval(i) => Ok(Value::Interval(-i)),
            other => Err(Error::type_err(format!("cannot negate {other}"))),
        },
    }
}

fn eval_binary(op: BinaryOp, l: Value, r: Value) -> Result<Value> {
    use BinaryOp::*;
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match op {
        Eq | Neq | Lt | Le | Gt | Ge => {
            let ord = l.sort_cmp(&r);
            let b = match op {
                Eq => ord.is_eq(),
                Neq => ord.is_ne(),
                Lt => ord.is_lt(),
                Le => ord.is_le(),
                Gt => ord.is_gt(),
                Ge => ord.is_ge(),
                _ => unreachable!(),
            };
            Ok(Value::Bool(b))
        }
        Concat => {
            let ls = l.cast(DataType::Text)?;
            let rs = r.cast(DataType::Text)?;
            Ok(Value::text(format!("{}{}", ls.as_text()?, rs.as_text()?)))
        }
        Add | Sub | Mul | Div | Mod => eval_arith(op, l, r),
        And | Or => unreachable!("short-circuited in eval()"),
    }
}

fn eval_arith(op: BinaryOp, l: Value, r: Value) -> Result<Value> {
    use BinaryOp::*;
    use Value::*;
    let div0 = || Error::Arithmetic("division by zero".into());
    let overflow = || Error::Arithmetic("integer overflow".into());
    match (&l, &r) {
        (Int(a), Int(b)) => match op {
            Add => a.checked_add(*b).map(Int).ok_or_else(overflow),
            Sub => a.checked_sub(*b).map(Int).ok_or_else(overflow),
            Mul => a.checked_mul(*b).map(Int).ok_or_else(overflow),
            Div => {
                if *b == 0 {
                    Err(div0())
                } else {
                    Ok(Int(a / b))
                }
            }
            Mod => {
                if *b == 0 {
                    Err(div0())
                } else {
                    Ok(Int(a % b))
                }
            }
            _ => unreachable!(),
        },
        // Mixed numeric → float arithmetic.
        (Int(_) | Float(_), Int(_) | Float(_)) => {
            let a = l.as_float()?;
            let b = r.as_float()?;
            let v = match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => {
                    if b == 0.0 {
                        return Err(div0());
                    }
                    a / b
                }
                Mod => {
                    if b == 0.0 {
                        return Err(div0());
                    }
                    a % b
                }
                _ => unreachable!(),
            };
            Ok(Float(v))
        }
        (Timestamp(t), Interval(iv)) => match op {
            Add => t.checked_add(*iv).map(Timestamp).ok_or_else(overflow),
            Sub => t.checked_sub(*iv).map(Timestamp).ok_or_else(overflow),
            _ => Err(type_mismatch(op, &l, &r)),
        },
        (Interval(iv), Timestamp(t)) if op == Add => {
            t.checked_add(*iv).map(Timestamp).ok_or_else(overflow)
        }
        (Timestamp(a), Timestamp(b)) if op == Sub => {
            a.checked_sub(*b).map(Interval).ok_or_else(overflow)
        }
        (Interval(a), Interval(b)) => match op {
            Add => a.checked_add(*b).map(Interval).ok_or_else(overflow),
            Sub => a.checked_sub(*b).map(Interval).ok_or_else(overflow),
            _ => Err(type_mismatch(op, &l, &r)),
        },
        (Interval(a), Int(b)) => match op {
            Mul => a.checked_mul(*b).map(Interval).ok_or_else(overflow),
            Div => {
                if *b == 0 {
                    Err(div0())
                } else {
                    Ok(Interval(a / b))
                }
            }
            _ => Err(type_mismatch(op, &l, &r)),
        },
        (Int(a), Interval(b)) if op == Mul => b.checked_mul(*a).map(Interval).ok_or_else(overflow),
        (Interval(a), Float(b)) if op == Mul || op == Div => {
            let v = if op == Mul {
                *a as f64 * b
            } else {
                if *b == 0.0 {
                    return Err(div0());
                }
                *a as f64 / b
            };
            Ok(Interval(v.round() as i64))
        }
        (Float(a), Interval(b)) if op == Mul => Ok(Interval((a * *b as f64).round() as i64)),
        _ => Err(type_mismatch(op, &l, &r)),
    }
}

fn type_mismatch(op: BinaryOp, l: &Value, r: &Value) -> Error {
    Error::type_err(format!("operator {op:?} cannot combine {l} and {r}"))
}

/// SQL LIKE: `%` matches any run, `_` matches one character. Backslash
/// escapes the next pattern character.
pub fn like_match(text: &str, pattern: &str) -> bool {
    fn go(t: &[char], p: &[char]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some('%') => {
                // Try every split point (including empty).
                (0..=t.len()).any(|k| go(&t[k..], &p[1..]))
            }
            Some('_') => !t.is_empty() && go(&t[1..], &p[1..]),
            Some('\\') if p.len() > 1 => !t.is_empty() && t[0] == p[1] && go(&t[1..], &p[2..]),
            Some(c) => !t.is_empty() && t[0] == *c && go(&t[1..], &p[1..]),
        }
    }
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    go(&t, &p)
}

fn eval_scalar(func: ScalarFunc, mut args: Vec<Value>) -> Result<Value> {
    use ScalarFunc::*;
    match func {
        Abs => {
            let v = args.remove(0);
            match v {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(i.abs())),
                Value::Float(f) => Ok(Value::Float(f.abs())),
                Value::Interval(i) => Ok(Value::Interval(i.abs())),
                other => Err(Error::type_err(format!("abs({other})"))),
            }
        }
        Lower | Upper => {
            let v = args.remove(0);
            if v.is_null() {
                return Ok(Value::Null);
            }
            let s = v.cast(DataType::Text)?;
            let s = s.as_text()?;
            Ok(Value::text(if func == Lower {
                s.to_lowercase()
            } else {
                s.to_uppercase()
            }))
        }
        Length => {
            let v = args.remove(0);
            if v.is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::Int(v.as_text()?.chars().count() as i64))
        }
        Round | Floor | Ceil => {
            let v = args.remove(0);
            match v {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(i)),
                Value::Float(f) => Ok(Value::Float(match func {
                    Round => f.round(),
                    Floor => f.floor(),
                    Ceil => f.ceil(),
                    _ => unreachable!(),
                })),
                other => Err(Error::type_err(format!("{func:?}({other})"))),
            }
        }
        Coalesce => {
            for v in args {
                if !v.is_null() {
                    return Ok(v);
                }
            }
            Ok(Value::Null)
        }
        NullIf => {
            let b = args.pop().unwrap();
            let a = args.pop().unwrap();
            if a.sql_eq(&b) == Some(true) {
                Ok(Value::Null)
            } else {
                Ok(a)
            }
        }
        Greatest | Least => {
            let mut best: Option<Value> = None;
            for v in args {
                if v.is_null() {
                    continue;
                }
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let keep_new = if func == Greatest {
                            v.sort_cmp(&b).is_gt()
                        } else {
                            v.sort_cmp(&b).is_lt()
                        };
                        if keep_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.unwrap_or(Value::Null))
        }
        Substr => {
            let (s, start, len) = match args.len() {
                2 => (args[0].clone(), args[1].clone(), None),
                3 => (args[0].clone(), args[1].clone(), Some(args[2].clone())),
                _ => return Err(Error::analysis("substr arity")),
            };
            if s.is_null() || start.is_null() {
                return Ok(Value::Null);
            }
            let text = s.as_text()?;
            let start = (start.as_int()?.max(1) - 1) as usize;
            let chars: Vec<char> = text.chars().collect();
            let end = match len {
                Some(l) => {
                    if l.is_null() {
                        return Ok(Value::Null);
                    }
                    (start + l.as_int()?.max(0) as usize).min(chars.len())
                }
                None => chars.len(),
            };
            let start = start.min(chars.len());
            Ok(Value::text(chars[start..end].iter().collect::<String>()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamrel_types::row;
    use streamrel_types::time::{HOURS, WEEKS};

    fn lit(v: Value) -> BoundExpr {
        BoundExpr::Literal(v)
    }

    fn bin(op: BinaryOp, l: BoundExpr, r: BoundExpr) -> BoundExpr {
        BoundExpr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
            ty: DataType::Bool, // ty unused at runtime
        }
    }

    fn ev(e: &BoundExpr) -> Value {
        eval(e, &[], &EvalContext::default()).unwrap()
    }

    #[test]
    fn arithmetic() {
        assert_eq!(
            ev(&bin(BinaryOp::Add, lit(Value::Int(2)), lit(Value::Int(3)))),
            Value::Int(5)
        );
        assert_eq!(
            ev(&bin(
                BinaryOp::Mul,
                lit(Value::Int(2)),
                lit(Value::Float(1.5))
            )),
            Value::Float(3.0)
        );
        assert!(eval(
            &bin(BinaryOp::Div, lit(Value::Int(1)), lit(Value::Int(0))),
            &[],
            &EvalContext::default()
        )
        .is_err());
        assert!(eval(
            &bin(BinaryOp::Add, lit(Value::Int(i64::MAX)), lit(Value::Int(1))),
            &[],
            &EvalContext::default()
        )
        .is_err());
    }

    #[test]
    fn temporal_arithmetic() {
        // timestamp - interval = timestamp (Example 5's historical offset).
        let e = bin(
            BinaryOp::Sub,
            lit(Value::Timestamp(10 * WEEKS)),
            lit(Value::Interval(WEEKS)),
        );
        assert_eq!(ev(&e), Value::Timestamp(9 * WEEKS));
        // timestamp - timestamp = interval
        let e = bin(
            BinaryOp::Sub,
            lit(Value::Timestamp(3 * HOURS)),
            lit(Value::Timestamp(HOURS)),
        );
        assert_eq!(ev(&e), Value::Interval(2 * HOURS));
        // interval * 2
        let e = bin(
            BinaryOp::Mul,
            lit(Value::Interval(HOURS)),
            lit(Value::Int(2)),
        );
        assert_eq!(ev(&e), Value::Interval(2 * HOURS));
    }

    #[test]
    fn null_propagation() {
        let e = bin(BinaryOp::Add, lit(Value::Null), lit(Value::Int(1)));
        assert_eq!(ev(&e), Value::Null);
        let e = bin(BinaryOp::Eq, lit(Value::Null), lit(Value::Null));
        assert_eq!(ev(&e), Value::Null);
    }

    #[test]
    fn three_valued_and_or() {
        let t = || lit(Value::Bool(true));
        let f = || lit(Value::Bool(false));
        let n = || lit(Value::Null);
        assert_eq!(ev(&bin(BinaryOp::And, f(), n())), Value::Bool(false));
        assert_eq!(ev(&bin(BinaryOp::And, n(), f())), Value::Bool(false));
        assert_eq!(ev(&bin(BinaryOp::And, t(), n())), Value::Null);
        assert_eq!(ev(&bin(BinaryOp::Or, t(), n())), Value::Bool(true));
        assert_eq!(ev(&bin(BinaryOp::Or, n(), t())), Value::Bool(true));
        assert_eq!(ev(&bin(BinaryOp::Or, f(), n())), Value::Null);
    }

    #[test]
    fn predicate_null_is_false() {
        let e = bin(BinaryOp::Eq, lit(Value::Null), lit(Value::Int(1)));
        assert!(!eval_predicate(&e, &[], &EvalContext::default()).unwrap());
    }

    #[test]
    fn cq_close_requires_context() {
        let e = BoundExpr::CqClose;
        assert!(eval(&e, &[], &EvalContext::default()).is_err());
        assert_eq!(
            eval(&e, &[], &EvalContext::for_window(42)).unwrap(),
            Value::Timestamp(42)
        );
    }

    #[test]
    fn column_access() {
        let row = row![10i64, "x"];
        let e = BoundExpr::Column {
            index: 1,
            ty: DataType::Text,
        };
        assert_eq!(
            eval(&e, &row, &EvalContext::default()).unwrap(),
            Value::text("x")
        );
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("hello", "hello"));
        assert!(like_match("hello", "h%"));
        assert!(like_match("hello", "%llo"));
        assert!(like_match("hello", "h_llo"));
        assert!(like_match("hello", "%"));
        assert!(!like_match("hello", "h_"));
        assert!(!like_match("hello", "world%"));
        assert!(like_match("50%", "50\\%"));
        assert!(!like_match("500", "50\\%"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
    }

    #[test]
    fn case_expressions() {
        // Searched CASE.
        let e = BoundExpr::Case {
            operand: None,
            whens: vec![(
                bin(BinaryOp::Gt, lit(Value::Int(5)), lit(Value::Int(3))),
                lit(Value::text("big")),
            )],
            else_expr: Some(Box::new(lit(Value::text("small")))),
            ty: DataType::Text,
        };
        assert_eq!(ev(&e), Value::text("big"));
        // Simple CASE with operand.
        let e = BoundExpr::Case {
            operand: Some(Box::new(lit(Value::Int(2)))),
            whens: vec![
                (lit(Value::Int(1)), lit(Value::text("one"))),
                (lit(Value::Int(2)), lit(Value::text("two"))),
            ],
            else_expr: None,
            ty: DataType::Text,
        };
        assert_eq!(ev(&e), Value::text("two"));
    }

    #[test]
    fn in_list_three_valued() {
        let e = BoundExpr::InList {
            expr: Box::new(lit(Value::Int(1))),
            list: vec![lit(Value::Int(2)), lit(Value::Null)],
            negated: false,
        };
        assert_eq!(ev(&e), Value::Null, "not found but NULL present");
        let e = BoundExpr::InList {
            expr: Box::new(lit(Value::Int(2))),
            list: vec![lit(Value::Int(2)), lit(Value::Null)],
            negated: false,
        };
        assert_eq!(ev(&e), Value::Bool(true));
    }

    #[test]
    fn scalar_functions() {
        let f = |func, args: Vec<Value>| eval_scalar(func, args).unwrap();
        assert_eq!(f(ScalarFunc::Abs, vec![Value::Int(-3)]), Value::Int(3));
        assert_eq!(
            f(ScalarFunc::Upper, vec![Value::text("abc")]),
            Value::text("ABC")
        );
        assert_eq!(
            f(ScalarFunc::Length, vec![Value::text("héllo")]),
            Value::Int(5)
        );
        assert_eq!(
            f(
                ScalarFunc::Coalesce,
                vec![Value::Null, Value::Int(7), Value::Int(9)]
            ),
            Value::Int(7)
        );
        assert_eq!(
            f(ScalarFunc::NullIf, vec![Value::Int(1), Value::Int(1)]),
            Value::Null
        );
        assert_eq!(
            f(
                ScalarFunc::Greatest,
                vec![Value::Int(1), Value::Int(9), Value::Int(4)]
            ),
            Value::Int(9)
        );
        assert_eq!(
            f(
                ScalarFunc::Substr,
                vec![Value::text("continuous"), Value::Int(1), Value::Int(4)]
            ),
            Value::text("cont")
        );
        assert_eq!(
            f(ScalarFunc::Round, vec![Value::Float(2.5)]),
            Value::Float(3.0)
        );
    }

    #[test]
    fn concat_casts_operands() {
        let e = bin(BinaryOp::Concat, lit(Value::Int(5)), lit(Value::text("x")));
        assert_eq!(ev(&e), Value::text("5x"));
    }

    #[test]
    fn is_null_checks() {
        let e = BoundExpr::IsNull {
            expr: Box::new(lit(Value::Null)),
            negated: false,
        };
        assert_eq!(ev(&e), Value::Bool(true));
        let e = BoundExpr::IsNull {
            expr: Box::new(lit(Value::Int(1))),
            negated: true,
        };
        assert_eq!(ev(&e), Value::Bool(true));
    }
}
