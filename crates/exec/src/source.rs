//! Data-source abstraction for the executor.

use streamrel_types::{Relation, Result, Row, Value};

/// Supplies table contents to the executor.
///
/// Implemented by the engine layer over the MVCC storage (a scan under a
/// pinned snapshot — which snapshot is exactly the *window consistency*
/// question of §4: snapshot queries use a fresh snapshot, CQs use the one
/// pinned at the window boundary).
pub trait RelationSource {
    /// Materialize the visible rows of `table`.
    fn scan_table(&self, table: &str) -> Result<Relation>;

    /// Equality lookup through a secondary index on `column`, if one
    /// exists. `Ok(None)` means "no usable index — fall back to a scan".
    ///
    /// This is the §3.3 payoff of Active Tables being plain tables:
    /// "indexes can be defined over them to further improve query
    /// performance" — stream-table joins (Example 5) use this to avoid
    /// rescanning the archive at every window close.
    fn index_lookup(&self, table: &str, column: &str, key: &Value) -> Result<Option<Vec<Row>>> {
        let _ = (table, column, key);
        Ok(None)
    }
}

/// A trivial source over pre-materialized relations (tests, baselines).
pub struct MapSource {
    tables: std::collections::HashMap<String, Relation>,
}

impl MapSource {
    /// Empty source.
    pub fn new() -> MapSource {
        MapSource {
            tables: std::collections::HashMap::new(),
        }
    }

    /// Register a relation under a name.
    pub fn with(mut self, name: &str, rel: Relation) -> MapSource {
        self.tables.insert(name.to_ascii_lowercase(), rel);
        self
    }
}

impl Default for MapSource {
    fn default() -> Self {
        Self::new()
    }
}

impl RelationSource for MapSource {
    fn scan_table(&self, table: &str) -> Result<Relation> {
        self.tables
            .get(&table.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| streamrel_types::Error::catalog(format!("table `{table}` not found")))
    }
}
