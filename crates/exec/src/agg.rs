//! Aggregate accumulators.
//!
//! Accumulators are explicitly **mergeable**: `update` folds one input in,
//! `merge` combines two partial states. Mergeability is what enables the
//! paper's shared "Jellybean" processing (§2.2, refs [4, 12]): the CQ layer
//! keeps one partial accumulator per time slice and composes windows by
//! merging slices, instead of re-aggregating raw rows per window per query.

use std::collections::HashSet;

use streamrel_types::{Error, Result, Value};

use streamrel_sql::plan::{AggFunc, AggSpec};

/// Partial state of one aggregate.
#[derive(Debug, Clone)]
enum State {
    Count(i64),
    SumInt {
        sum: i64,
        any: bool,
    },
    SumFloat {
        sum: f64,
        any: bool,
    },
    Avg {
        sum: f64,
        n: i64,
    },
    /// Variance/stddev via mergeable (n, sum, sum of squares).
    Var {
        n: i64,
        sum: f64,
        sumsq: f64,
        stddev: bool,
    },
    MinMax {
        best: Option<Value>,
        is_min: bool,
    },
    Distinct {
        seen: HashSet<Value>,
        func: AggFunc,
    },
}

/// A running aggregate computation.
#[derive(Debug, Clone)]
pub struct Accumulator {
    state: State,
}

impl Accumulator {
    /// Fresh accumulator for an aggregate spec.
    pub fn new(spec: &AggSpec) -> Accumulator {
        Accumulator::for_func(
            spec.func,
            spec.distinct,
            spec.arg.is_some() && {
                matches!(
                    spec.arg.as_ref().map(|a| a.ty()),
                    Some(streamrel_types::DataType::Float)
                )
            },
        )
    }

    /// Fresh accumulator by function; `float_arg` selects float summation.
    pub fn for_func(func: AggFunc, distinct: bool, float_arg: bool) -> Accumulator {
        let state = if distinct {
            State::Distinct {
                seen: HashSet::new(),
                func,
            }
        } else {
            match func {
                AggFunc::Count => State::Count(0),
                AggFunc::Sum if float_arg => State::SumFloat {
                    sum: 0.0,
                    any: false,
                },
                AggFunc::Sum => State::SumInt { sum: 0, any: false },
                AggFunc::Avg => State::Avg { sum: 0.0, n: 0 },
                AggFunc::Variance => State::Var {
                    n: 0,
                    sum: 0.0,
                    sumsq: 0.0,
                    stddev: false,
                },
                AggFunc::Stddev => State::Var {
                    n: 0,
                    sum: 0.0,
                    sumsq: 0.0,
                    stddev: true,
                },
                AggFunc::Min => State::MinMax {
                    best: None,
                    is_min: true,
                },
                AggFunc::Max => State::MinMax {
                    best: None,
                    is_min: false,
                },
            }
        };
        Accumulator { state }
    }

    /// Fold one input value in. `None` means a `count(*)` row (no
    /// argument); `Some(Null)` is skipped per SQL aggregate semantics.
    pub fn update(&mut self, arg: Option<&Value>) -> Result<()> {
        match (&mut self.state, arg) {
            (State::Count(n), None) => *n += 1,
            (State::Count(n), Some(v)) => {
                if !v.is_null() {
                    *n += 1;
                }
            }
            (_, None) => {
                return Err(Error::analysis("aggregate requires an argument"));
            }
            (State::SumInt { sum, any }, Some(v)) => {
                if !v.is_null() {
                    *sum = sum
                        .checked_add(v.as_int()?)
                        .ok_or_else(|| Error::Arithmetic("sum() integer overflow".into()))?;
                    *any = true;
                }
            }
            (State::SumFloat { sum, any }, Some(v)) => {
                if !v.is_null() {
                    *sum += v.as_float()?;
                    *any = true;
                }
            }
            (State::Avg { sum, n }, Some(v)) => {
                if !v.is_null() {
                    *sum += v.as_float()?;
                    *n += 1;
                }
            }
            (State::Var { n, sum, sumsq, .. }, Some(v)) => {
                if !v.is_null() {
                    let x = v.as_float()?;
                    *n += 1;
                    *sum += x;
                    *sumsq += x * x;
                }
            }
            (State::MinMax { best, is_min }, Some(v)) => {
                if !v.is_null() {
                    let replace = match best {
                        None => true,
                        Some(b) => {
                            if *is_min {
                                v.sort_cmp(b).is_lt()
                            } else {
                                v.sort_cmp(b).is_gt()
                            }
                        }
                    };
                    if replace {
                        *best = Some(v.clone());
                    }
                }
            }
            (State::Distinct { seen, .. }, Some(v)) => {
                if !v.is_null() {
                    seen.insert(v.clone());
                }
            }
        }
        Ok(())
    }

    /// Merge another partial state into this one (slice composition).
    pub fn merge(&mut self, other: &Accumulator) -> Result<()> {
        match (&mut self.state, &other.state) {
            (State::Count(a), State::Count(b)) => *a += b,
            (State::SumInt { sum: a, any: aa }, State::SumInt { sum: b, any: ba }) => {
                *a = a
                    .checked_add(*b)
                    .ok_or_else(|| Error::Arithmetic("sum() integer overflow".into()))?;
                *aa |= ba;
            }
            (State::SumFloat { sum: a, any: aa }, State::SumFloat { sum: b, any: ba }) => {
                *a += b;
                *aa |= ba;
            }
            (State::Avg { sum: a, n: an }, State::Avg { sum: b, n: bn }) => {
                *a += b;
                *an += bn;
            }
            (
                State::Var {
                    n: an,
                    sum: asum,
                    sumsq: asq,
                    ..
                },
                State::Var {
                    n: bn,
                    sum: bsum,
                    sumsq: bsq,
                    ..
                },
            ) => {
                *an += bn;
                *asum += bsum;
                *asq += bsq;
            }
            (State::MinMax { best: a, is_min }, State::MinMax { best: b, .. }) => {
                if let Some(bv) = b {
                    let replace = match a {
                        None => true,
                        Some(av) => {
                            if *is_min {
                                bv.sort_cmp(av).is_lt()
                            } else {
                                bv.sort_cmp(av).is_gt()
                            }
                        }
                    };
                    if replace {
                        *a = Some(bv.clone());
                    }
                }
            }
            (State::Distinct { seen: a, .. }, State::Distinct { seen: b, .. }) => {
                a.extend(b.iter().cloned());
            }
            _ => {
                return Err(Error::analysis(
                    "cannot merge accumulators of different kinds",
                ))
            }
        }
        Ok(())
    }

    /// Scale the partial as if every contributing input row had occurred
    /// `m` times. The IVM join path uses this: a stream-side partial built
    /// once per tuple is multiplied by the tuple's table-match count, which
    /// is exactly what re-evaluating the join would have produced (each
    /// match repeats the left row's aggregate contribution). Min/max and
    /// DISTINCT states are repetition-invariant and unchanged.
    pub fn scale(&mut self, m: i64) -> Result<()> {
        debug_assert!(m >= 1, "scale factor must be a positive match count");
        let overflow = || Error::Arithmetic("aggregate scale overflow".into());
        match &mut self.state {
            State::Count(n) => *n = n.checked_mul(m).ok_or_else(overflow)?,
            State::SumInt { sum, .. } => *sum = sum.checked_mul(m).ok_or_else(overflow)?,
            State::SumFloat { sum, .. } => *sum *= m as f64,
            State::Avg { sum, n } => {
                *sum *= m as f64;
                *n = n.checked_mul(m).ok_or_else(overflow)?;
            }
            State::Var { n, sum, sumsq, .. } => {
                *n = n.checked_mul(m).ok_or_else(overflow)?;
                *sum *= m as f64;
                *sumsq *= m as f64;
            }
            State::MinMax { .. } | State::Distinct { .. } => {}
        }
        Ok(())
    }

    /// Final value: SQL semantics (`sum`/`min`/`max`/`avg` over nothing is
    /// NULL; `count` over nothing is 0).
    pub fn finish(&self) -> Value {
        match &self.state {
            State::Count(n) => Value::Int(*n),
            State::SumInt { sum, any } => {
                if *any {
                    Value::Int(*sum)
                } else {
                    Value::Null
                }
            }
            State::SumFloat { sum, any } => {
                if *any {
                    Value::Float(*sum)
                } else {
                    Value::Null
                }
            }
            State::Avg { sum, n } => {
                if *n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / *n as f64)
                }
            }
            State::Var {
                n,
                sum,
                sumsq,
                stddev,
            } => {
                if *n < 2 {
                    Value::Null
                } else {
                    let nf = *n as f64;
                    let var = ((sumsq - sum * sum / nf) / (nf - 1.0)).max(0.0);
                    Value::Float(if *stddev { var.sqrt() } else { var })
                }
            }
            State::MinMax { best, .. } => best.clone().unwrap_or(Value::Null),
            State::Distinct { seen, func } => match func {
                AggFunc::Count => Value::Int(seen.len() as i64),
                AggFunc::Sum => {
                    if seen.is_empty() {
                        return Value::Null;
                    }
                    let mut int_sum = 0i64;
                    let mut float_sum = 0.0f64;
                    let mut is_float = false;
                    for v in seen {
                        match v {
                            Value::Int(i) => {
                                int_sum = int_sum.wrapping_add(*i);
                                float_sum += *i as f64;
                            }
                            Value::Float(f) => {
                                is_float = true;
                                float_sum += f;
                            }
                            _ => return Value::Null,
                        }
                    }
                    if is_float {
                        Value::Float(float_sum)
                    } else {
                        Value::Int(int_sum)
                    }
                }
                AggFunc::Avg => {
                    if seen.is_empty() {
                        Value::Null
                    } else {
                        let sum: f64 = seen.iter().filter_map(|v| v.as_float().ok()).sum();
                        Value::Float(sum / seen.len() as f64)
                    }
                }
                AggFunc::Variance | AggFunc::Stddev => {
                    if seen.len() < 2 {
                        return Value::Null;
                    }
                    let xs: Vec<f64> = seen.iter().filter_map(|v| v.as_float().ok()).collect();
                    let n = xs.len() as f64;
                    let sum: f64 = xs.iter().sum();
                    let sumsq: f64 = xs.iter().map(|x| x * x).sum();
                    let var = ((sumsq - sum * sum / n) / (n - 1.0)).max(0.0);
                    Value::Float(if *func == AggFunc::Stddev {
                        var.sqrt()
                    } else {
                        var
                    })
                }
                AggFunc::Min => seen
                    .iter()
                    .min_by(|a, b| a.sort_cmp(b))
                    .cloned()
                    .unwrap_or(Value::Null),
                AggFunc::Max => seen
                    .iter()
                    .max_by(|a, b| a.sort_cmp(b))
                    .cloned()
                    .unwrap_or(Value::Null),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(func: AggFunc) -> Accumulator {
        Accumulator::for_func(func, false, false)
    }

    #[test]
    fn count_star_and_count_col() {
        let mut a = acc(AggFunc::Count);
        a.update(None).unwrap();
        a.update(None).unwrap();
        assert_eq!(a.finish(), Value::Int(2));
        let mut b = acc(AggFunc::Count);
        b.update(Some(&Value::Int(1))).unwrap();
        b.update(Some(&Value::Null)).unwrap();
        assert_eq!(b.finish(), Value::Int(1), "count(col) skips NULLs");
    }

    #[test]
    fn sum_skips_null_and_empty_is_null() {
        let mut a = acc(AggFunc::Sum);
        assert_eq!(a.finish(), Value::Null);
        a.update(Some(&Value::Int(5))).unwrap();
        a.update(Some(&Value::Null)).unwrap();
        a.update(Some(&Value::Int(7))).unwrap();
        assert_eq!(a.finish(), Value::Int(12));
    }

    #[test]
    fn sum_overflow_detected() {
        let mut a = acc(AggFunc::Sum);
        a.update(Some(&Value::Int(i64::MAX))).unwrap();
        assert!(a.update(Some(&Value::Int(1))).is_err());
    }

    #[test]
    fn avg() {
        let mut a = acc(AggFunc::Avg);
        for v in [1, 2, 3, 4] {
            a.update(Some(&Value::Int(v))).unwrap();
        }
        assert_eq!(a.finish(), Value::Float(2.5));
        assert_eq!(acc(AggFunc::Avg).finish(), Value::Null);
    }

    #[test]
    fn min_max() {
        let mut mn = acc(AggFunc::Min);
        let mut mx = acc(AggFunc::Max);
        for v in ["pear", "apple", "zoo"] {
            mn.update(Some(&Value::text(v))).unwrap();
            mx.update(Some(&Value::text(v))).unwrap();
        }
        assert_eq!(mn.finish(), Value::text("apple"));
        assert_eq!(mx.finish(), Value::text("zoo"));
    }

    #[test]
    fn merge_equals_sequential() {
        // Property: splitting the input across two accumulators and merging
        // gives the same result as one accumulator (core slice-sharing
        // invariant).
        for func in [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
        ] {
            let vals: Vec<Value> = (0..10).map(Value::Int).collect();
            let mut whole = acc(func);
            for v in &vals {
                whole.update(Some(v)).unwrap();
            }
            let mut left = acc(func);
            let mut right = acc(func);
            for v in &vals[..4] {
                left.update(Some(v)).unwrap();
            }
            for v in &vals[4..] {
                right.update(Some(v)).unwrap();
            }
            left.merge(&right).unwrap();
            assert_eq!(left.finish(), whole.finish(), "{func:?}");
        }
    }

    #[test]
    fn distinct_count_dedups_across_merge() {
        let mut a = Accumulator::for_func(AggFunc::Count, true, false);
        let mut b = Accumulator::for_func(AggFunc::Count, true, false);
        for v in [1, 2, 2, 3] {
            a.update(Some(&Value::Int(v))).unwrap();
        }
        for v in [3, 4] {
            b.update(Some(&Value::Int(v))).unwrap();
        }
        a.merge(&b).unwrap();
        assert_eq!(a.finish(), Value::Int(4));
    }

    #[test]
    fn distinct_sum_avg() {
        let mut s = Accumulator::for_func(AggFunc::Sum, true, false);
        for v in [2, 2, 3] {
            s.update(Some(&Value::Int(v))).unwrap();
        }
        assert_eq!(s.finish(), Value::Int(5));
        let mut av = Accumulator::for_func(AggFunc::Avg, true, false);
        for v in [2, 2, 4] {
            av.update(Some(&Value::Int(v))).unwrap();
        }
        assert_eq!(av.finish(), Value::Float(3.0));
    }

    #[test]
    fn scale_equals_repeated_updates() {
        // Property behind the IVM join path: scaling a partial by m equals
        // updating it m times with the same inputs.
        for func in [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
        ] {
            let vals: Vec<Value> = [3i64, 7, 7, 11].iter().map(|&v| Value::Int(v)).collect();
            let m = 3;
            let mut scaled = acc(func);
            for v in &vals {
                scaled.update(Some(v)).unwrap();
            }
            scaled.scale(m).unwrap();
            let mut repeated = acc(func);
            for _ in 0..m {
                for v in &vals {
                    repeated.update(Some(v)).unwrap();
                }
            }
            assert_eq!(scaled.finish(), repeated.finish(), "{func:?}");
        }
    }

    #[test]
    fn scale_overflow_detected() {
        let mut a = acc(AggFunc::Sum);
        a.update(Some(&Value::Int(i64::MAX / 2))).unwrap();
        assert!(a.scale(3).is_err());
    }

    #[test]
    fn mismatched_merge_rejected() {
        let mut a = acc(AggFunc::Count);
        let b = acc(AggFunc::Sum);
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn float_sum() {
        let mut a = Accumulator::for_func(AggFunc::Sum, false, true);
        a.update(Some(&Value::Float(1.5))).unwrap();
        a.update(Some(&Value::Int(2))).unwrap();
        assert_eq!(a.finish(), Value::Float(3.5));
    }
}
