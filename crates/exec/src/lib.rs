//! Relational execution for streamrel.
//!
//! Executes a bound [`LogicalPlan`](streamrel_sql::LogicalPlan) over finite
//! relations. The same operators serve both halves of the paper's
//! stream-relational merger (§4): a snapshot query runs the plan once over
//! table scans; the CQ runtime (`streamrel-cq`) runs the identical plan once
//! per window, supplying the window relation for the plan's `StreamScan`
//! leaf and the `cq_close` timestamp for the evaluator.

#![deny(unsafe_code)]

pub mod agg;
pub mod executor;
pub mod expr;
pub mod join;
pub mod source;

pub use agg::Accumulator;
pub use executor::{execute, ExecContext, ExecMetrics};
pub use expr::{eval, eval_predicate, EvalContext};
pub use source::RelationSource;
