//! Join execution: hash join on extracted equi-keys, nested-loop fallback.

use std::collections::HashMap;

use streamrel_types::{Relation, Result, Row, Value};

use streamrel_sql::plan::{BinaryOp, BoundExpr, JoinKind, SchemaRef};

use crate::expr::{eval, eval_predicate, EvalContext};

/// Equi-join keys extracted from an ON / WHERE conjunction: expressions
/// over the left row paired with expressions over the right row, plus any
/// residual predicate evaluated over the concatenated row.
pub struct JoinKeys {
    /// Key expressions evaluated against left rows.
    pub left: Vec<BoundExpr>,
    /// Key expressions evaluated against right rows (indexes already
    /// relative to the right row).
    pub right: Vec<BoundExpr>,
    /// Remaining non-equi conjuncts (over the concatenated row).
    pub residual: Vec<BoundExpr>,
}

/// Split `on` into hash-joinable equi-conditions and a residual, given the
/// width of the left input. Returns `None` if no equi-condition exists
/// (nested loop required).
pub fn extract_keys(on: &BoundExpr, left_width: usize) -> Option<JoinKeys> {
    let mut conjuncts = Vec::new();
    flatten_and(on, &mut conjuncts);
    let mut keys = JoinKeys {
        left: Vec::new(),
        right: Vec::new(),
        residual: Vec::new(),
    };
    for c in conjuncts {
        if let BoundExpr::Binary {
            op: BinaryOp::Eq,
            left,
            right,
            ..
        } = &c
        {
            match (side_of(left, left_width), side_of(right, left_width)) {
                (Side::Left, Side::Right) => {
                    keys.left.push((**left).clone());
                    let mut r = (**right).clone();
                    shift_down(&mut r, left_width);
                    keys.right.push(r);
                    continue;
                }
                (Side::Right, Side::Left) => {
                    keys.left.push((**right).clone());
                    let mut r = (**left).clone();
                    shift_down(&mut r, left_width);
                    keys.right.push(r);
                    continue;
                }
                _ => {}
            }
        }
        keys.residual.push(c);
    }
    if keys.left.is_empty() {
        None
    } else {
        Some(keys)
    }
}

/// Flatten a conjunction tree into its conjuncts (a non-AND expression
/// yields itself). Shared with the IVM lowering pass, which classifies
/// WHERE conjuncts by join side the same way the hash join does.
pub fn flatten_and(e: &BoundExpr, out: &mut Vec<BoundExpr>) {
    if let BoundExpr::Binary {
        op: BinaryOp::And,
        left,
        right,
        ..
    } = e
    {
        flatten_and(left, out);
        flatten_and(right, out);
    } else {
        out.push(e.clone());
    }
}

#[derive(PartialEq, Clone, Copy)]
enum Side {
    Left,
    Right,
    Both,
    Neither,
}

fn side_of(e: &BoundExpr, left_width: usize) -> Side {
    let mut cols = Vec::new();
    e.referenced_columns(&mut cols);
    if cols.is_empty() {
        return Side::Neither;
    }
    let all_left = cols.iter().all(|&c| c < left_width);
    let all_right = cols.iter().all(|&c| c >= left_width);
    match (all_left, all_right) {
        (true, _) => Side::Left,
        (_, true) => Side::Right,
        _ => Side::Both,
    }
}

/// Rebase an expression bound over the concatenated row so it can run over
/// a right row alone.
pub fn shift_down(e: &mut BoundExpr, left_width: usize) {
    match e {
        BoundExpr::Column { index, .. } => *index -= left_width,
        BoundExpr::Literal(_) | BoundExpr::CqClose => {}
        BoundExpr::Unary { expr, .. }
        | BoundExpr::Cast { expr, .. }
        | BoundExpr::IsNull { expr, .. } => shift_down(expr, left_width),
        BoundExpr::Binary { left, right, .. } => {
            shift_down(left, left_width);
            shift_down(right, left_width);
        }
        BoundExpr::Like { expr, pattern, .. } => {
            shift_down(expr, left_width);
            shift_down(pattern, left_width);
        }
        BoundExpr::InList { expr, list, .. } => {
            shift_down(expr, left_width);
            for i in list {
                shift_down(i, left_width);
            }
        }
        BoundExpr::Case {
            operand,
            whens,
            else_expr,
            ..
        } => {
            if let Some(o) = operand {
                shift_down(o, left_width);
            }
            for (c, r) in whens {
                shift_down(c, left_width);
                shift_down(r, left_width);
            }
            if let Some(el) = else_expr {
                shift_down(el, left_width);
            }
        }
        BoundExpr::ScalarFunc { args, .. } => {
            for a in args {
                shift_down(a, left_width);
            }
        }
    }
}

/// Execute a join between two materialized relations.
pub fn join(
    left: &Relation,
    right: &Relation,
    kind: JoinKind,
    on: Option<&BoundExpr>,
    out_schema: SchemaRef,
    ctx: &EvalContext,
) -> Result<Relation> {
    let left_width = left.schema().len();
    let right_width = right.schema().len();
    let keys = on.and_then(|e| extract_keys(e, left_width));
    let mut out = Relation::empty(out_schema);
    match keys {
        Some(k) => {
            // Hash join: build on right, probe from left.
            let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
            for (i, r) in right.rows().iter().enumerate() {
                let key: Vec<Value> = k
                    .right
                    .iter()
                    .map(|e| eval(e, r, ctx))
                    .collect::<Result<_>>()?;
                // NULL keys never join.
                if key.iter().any(Value::is_null) {
                    continue;
                }
                table.entry(key).or_default().push(i);
            }
            for l in left.rows() {
                let key: Vec<Value> = k
                    .left
                    .iter()
                    .map(|e| eval(e, l, ctx))
                    .collect::<Result<_>>()?;
                let mut matched = false;
                if !key.iter().any(Value::is_null) {
                    if let Some(candidates) = table.get(&key) {
                        for &ri in candidates {
                            let combined = streamrel_types::row::concat(l, &right.rows()[ri]);
                            let ok = k
                                .residual
                                .iter()
                                .map(|p| eval_predicate(p, &combined, ctx))
                                .collect::<Result<Vec<bool>>>()?
                                .into_iter()
                                .all(|b| b);
                            if ok {
                                matched = true;
                                out.push(combined);
                            }
                        }
                    }
                }
                if !matched && kind == JoinKind::Left {
                    let mut combined = l.clone();
                    combined.extend(std::iter::repeat_n(Value::Null, right_width));
                    out.push(combined);
                }
            }
        }
        None => {
            // Nested loop.
            for l in left.rows() {
                let mut matched = false;
                for r in right.rows() {
                    let combined = streamrel_types::row::concat(l, r);
                    let ok = match on {
                        Some(p) => eval_predicate(p, &combined, ctx)?,
                        None => true,
                    };
                    if ok {
                        matched = true;
                        out.push(combined);
                    }
                }
                if !matched && kind == JoinKind::Left {
                    let mut combined = l.clone();
                    combined.extend(std::iter::repeat_n(Value::Null, right_width));
                    out.push(combined);
                }
            }
        }
    }
    let _ = right_width;
    Ok(out)
}

/// Helper exported for tests and the CQ layer: concatenate rows.
pub fn concat_rows(l: &Row, r: &Row) -> Row {
    streamrel_types::row::concat(l, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use streamrel_types::{row, Column, DataType, Schema};

    fn rel(cols: &[(&str, DataType)], rows: Vec<Row>) -> Relation {
        let schema = Arc::new(Schema::new_unchecked(
            cols.iter().map(|(n, t)| Column::new(*n, *t)).collect(),
        ));
        Relation::new(schema, rows)
    }

    fn eq_on(li: usize, ri: usize, lty: DataType) -> BoundExpr {
        BoundExpr::Binary {
            op: BinaryOp::Eq,
            left: Box::new(BoundExpr::Column { index: li, ty: lty }),
            right: Box::new(BoundExpr::Column { index: ri, ty: lty }),
            ty: DataType::Bool,
        }
    }

    fn out_schema(l: &Relation, r: &Relation) -> SchemaRef {
        Arc::new(l.schema().join(r.schema()))
    }

    #[test]
    fn inner_hash_join() {
        let l = rel(
            &[("k", DataType::Int), ("a", DataType::Text)],
            vec![row![1i64, "x"], row![2i64, "y"], row![3i64, "z"]],
        );
        let r = rel(
            &[("k", DataType::Int), ("b", DataType::Text)],
            vec![row![2i64, "B"], row![3i64, "C"], row![3i64, "C2"]],
        );
        let on = eq_on(0, 2, DataType::Int);
        let out = join(
            &l,
            &r,
            JoinKind::Inner,
            Some(&on),
            out_schema(&l, &r),
            &EvalContext::default(),
        )
        .unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.rows()[0], row![2i64, "y", 2i64, "B"]);
    }

    #[test]
    fn left_join_pads_nulls() {
        let l = rel(&[("k", DataType::Int)], vec![row![1i64], row![2i64]]);
        let r = rel(&[("k", DataType::Int)], vec![row![2i64]]);
        let on = eq_on(0, 1, DataType::Int);
        let out = join(
            &l,
            &r,
            JoinKind::Left,
            Some(&on),
            out_schema(&l, &r),
            &EvalContext::default(),
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.rows()[0], vec![Value::Int(1), Value::Null]);
    }

    #[test]
    fn null_keys_never_match() {
        let l = rel(&[("k", DataType::Int)], vec![vec![Value::Null]]);
        let r = rel(&[("k", DataType::Int)], vec![vec![Value::Null]]);
        let on = eq_on(0, 1, DataType::Int);
        let out = join(
            &l,
            &r,
            JoinKind::Inner,
            Some(&on),
            out_schema(&l, &r),
            &EvalContext::default(),
        )
        .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn expression_keys_join() {
        // Join on l.ts - interval = r.ts (Example 5's shape).
        let week = streamrel_types::time::WEEKS;
        let l = rel(
            &[("ts", DataType::Timestamp)],
            vec![row![Value::Timestamp(10 * week)]],
        );
        let r = rel(
            &[("ts", DataType::Timestamp)],
            vec![
                row![Value::Timestamp(9 * week)],
                row![Value::Timestamp(8 * week)],
            ],
        );
        let on = BoundExpr::Binary {
            op: BinaryOp::Eq,
            left: Box::new(BoundExpr::Binary {
                op: BinaryOp::Sub,
                left: Box::new(BoundExpr::Column {
                    index: 0,
                    ty: DataType::Timestamp,
                }),
                right: Box::new(BoundExpr::Literal(Value::Interval(week))),
                ty: DataType::Timestamp,
            }),
            right: Box::new(BoundExpr::Column {
                index: 1,
                ty: DataType::Timestamp,
            }),
            ty: DataType::Bool,
        };
        let out = join(
            &l,
            &r,
            JoinKind::Inner,
            Some(&on),
            out_schema(&l, &r),
            &EvalContext::default(),
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(
            out.rows()[0],
            vec![Value::Timestamp(10 * week), Value::Timestamp(9 * week)]
        );
    }

    #[test]
    fn non_equi_falls_back_to_nested_loop() {
        let l = rel(&[("a", DataType::Int)], vec![row![1i64], row![5i64]]);
        let r = rel(&[("b", DataType::Int)], vec![row![3i64]]);
        let on = BoundExpr::Binary {
            op: BinaryOp::Gt,
            left: Box::new(BoundExpr::Column {
                index: 0,
                ty: DataType::Int,
            }),
            right: Box::new(BoundExpr::Column {
                index: 1,
                ty: DataType::Int,
            }),
            ty: DataType::Bool,
        };
        assert!(extract_keys(&on, 1).is_none());
        let out = join(
            &l,
            &r,
            JoinKind::Inner,
            Some(&on),
            out_schema(&l, &r),
            &EvalContext::default(),
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0], row![5i64, 3i64]);
    }

    #[test]
    fn residual_predicates_filter_hash_matches() {
        let l = rel(
            &[("k", DataType::Int), ("v", DataType::Int)],
            vec![row![1i64, 10i64], row![1i64, 1i64]],
        );
        let r = rel(
            &[("k", DataType::Int), ("w", DataType::Int)],
            vec![row![1i64, 5i64]],
        );
        // ON l.k = r.k AND l.v > r.w
        let on = BoundExpr::Binary {
            op: BinaryOp::And,
            left: Box::new(eq_on(0, 2, DataType::Int)),
            right: Box::new(BoundExpr::Binary {
                op: BinaryOp::Gt,
                left: Box::new(BoundExpr::Column {
                    index: 1,
                    ty: DataType::Int,
                }),
                right: Box::new(BoundExpr::Column {
                    index: 3,
                    ty: DataType::Int,
                }),
                ty: DataType::Bool,
            }),
            ty: DataType::Bool,
        };
        let keys = extract_keys(&on, 2).unwrap();
        assert_eq!(keys.left.len(), 1);
        assert_eq!(keys.residual.len(), 1);
        let out = join(
            &l,
            &r,
            JoinKind::Inner,
            Some(&on),
            out_schema(&l, &r),
            &EvalContext::default(),
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0], row![1i64, 10i64, 1i64, 5i64]);
    }

    #[test]
    fn cross_join_without_on() {
        let l = rel(&[("a", DataType::Int)], vec![row![1i64], row![2i64]]);
        let r = rel(&[("b", DataType::Int)], vec![row![3i64], row![4i64]]);
        let out = join(
            &l,
            &r,
            JoinKind::Cross,
            None,
            out_schema(&l, &r),
            &EvalContext::default(),
        )
        .unwrap();
        assert_eq!(out.len(), 4);
    }
}
