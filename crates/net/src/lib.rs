//! Networked continuous analytics: wire protocol, server and client.
//!
//! The paper's deployment model ("always-on" services fed by many
//! producers and watched by many dashboards, §1) needs more than an
//! embedded engine: this crate puts [`streamrel_core::Db`] on a TCP
//! socket. The server is a single-threaded readiness reactor ([`server`])
//! that multiplexes every connection — and many logical subscriptions
//! per connection — over one poll loop, and **pushes** continuous query
//! results: a subscriber never polls; window results stream out as
//! windows close, encoded once per window no matter how many subscribers
//! share the query (serialize-once fan-out). Framing is length-prefixed
//! binary ([`frame`]), and payloads reuse the storage codec ([`wire`])
//! so the wire format equals the WAL format.

#![deny(unsafe_code)]

pub mod bridge;
pub mod client;
pub mod frame;
pub mod server;
pub mod wire;

pub use bridge::{Bridge, BridgeOptions, UnionIngest};
pub use client::{Client, ClientOptions, NetError, NetResult, SubscriptionStream};
pub use frame::{Frame, FrameDecoder, FrameType, MAX_FRAME_LEN, PROTOCOL_VERSION};
pub use server::{Server, ServerOptions};
