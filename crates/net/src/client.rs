//! Blocking wire-protocol client.
//!
//! One TCP connection carries both request/response traffic and
//! asynchronous `WindowResult` pushes — including pushes for **many**
//! logical subscriptions multiplexed over the single socket (register
//! more with [`Client::subscribe`] or join an existing fan-out group
//! with [`Client::subscribe_attach`]). A background reader thread
//! demultiplexes: responses go to the (single) in-flight request; window
//! results are routed to the [`SubscriptionStream`] they belong to.
//! Requests are serialized — the protocol allows one outstanding request
//! per connection — but pushed results arrive at any time, including
//! while no request is in flight.
//!
//! Each subscription's client-side queue is **bounded**
//! ([`ClientOptions`]), mirroring the server's outbox discipline: an
//! application that stops consuming a stream sheds that stream's windows
//! by the configured [`OverflowPolicy`] (observable via
//! [`SubscriptionStream::dropped`]) instead of growing memory without
//! limit. The reader decodes with the resumable [`FrameDecoder`], so a
//! socket read timeout mid-frame never desyncs the stream.

use std::fmt;
use std::io::{self, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use streamrel_core::{OverflowPolicy, Subscription};
use streamrel_cq::CqOutput;
use streamrel_types::{Relation, Row, Timestamp};

use crate::frame::{Frame, FrameDecoder, FrameType};
use crate::wire;

/// Client-side failures.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server answered with an `Error` frame (e.g. a SQL error).
    Remote(String),
    /// The peer sent something the protocol does not allow here.
    Protocol(String),
    /// The connection is gone (EOF, server shutdown, reader died).
    Disconnected,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io error: {e}"),
            NetError::Remote(m) => write!(f, "server error: {m}"),
            NetError::Protocol(m) => write!(f, "protocol error: {m}"),
            NetError::Disconnected => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> NetError {
        NetError::Io(e)
    }
}

impl From<streamrel_types::Error> for NetError {
    fn from(e: streamrel_types::Error) -> NetError {
        NetError::Protocol(e.to_string())
    }
}

/// Client-side result alias.
pub type NetResult<T> = Result<T, NetError>;

/// Client tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ClientOptions {
    /// Per-subscription bound on windows buffered client-side awaiting
    /// consumption. Mirrors the server's queue discipline so a stalled
    /// consumer sheds (counted) instead of allocating forever.
    pub sub_queue_capacity: usize,
    /// What an overflowing subscription queue sacrifices.
    pub sub_overflow: OverflowPolicy,
}

impl Default for ClientOptions {
    fn default() -> ClientOptions {
        ClientOptions {
            sub_queue_capacity: streamrel_core::DEFAULT_SUB_CAPACITY,
            sub_overflow: OverflowPolicy::DropOldest,
        }
    }
}

/// Bounded buffer between the reader thread and one
/// [`SubscriptionStream`].
struct SubQueue {
    q: Mutex<Subscription<CqOutput>>,
    cv: Condvar,
    /// Set (with a final wakeup) when the reader exits: no more results
    /// will ever arrive.
    closed: AtomicBool,
}

impl SubQueue {
    fn new(opts: ClientOptions) -> Arc<SubQueue> {
        Arc::new(SubQueue {
            q: Mutex::new(Subscription::bounded(
                opts.sub_queue_capacity,
                opts.sub_overflow,
            )),
            cv: Condvar::new(),
            closed: AtomicBool::new(false),
        })
    }

    fn offer(&self, out: CqOutput) {
        self.q.lock().offer(out);
        self.cv.notify_all();
    }

    fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        self.cv.notify_all();
    }
}

/// A demultiplexed server→client message destined for the request path.
enum Reply {
    Rows(Relation),
    Subscribed(u64, Arc<SubQueue>),
    Heartbeat,
    Stats(Relation),
    Goodbye,
    Err(String),
}

struct Io {
    writer: TcpStream,
    resp: Receiver<Reply>,
}

/// Blocking connection to a streamrel server.
pub struct Client {
    io: Mutex<Io>,
    socket: TcpStream,
    reader: Option<JoinHandle<()>>,
}

impl Client {
    /// Connect to a server with default options.
    pub fn connect(addr: impl ToSocketAddrs) -> NetResult<Client> {
        Client::connect_with(addr, ClientOptions::default())
    }

    /// Connect with explicit options.
    pub fn connect_with(addr: impl ToSocketAddrs, opts: ClientOptions) -> NetResult<Client> {
        let socket = TcpStream::connect(addr)?;
        socket.set_nodelay(true).ok();
        let writer = socket.try_clone()?;
        let read_half = socket.try_clone()?;
        let (resp_tx, resp_rx) = mpsc::channel();
        let reader = std::thread::Builder::new()
            .name("streamrel-client-reader".into())
            .spawn(move || reader_loop(read_half, resp_tx, opts))
            .map_err(NetError::Io)?;
        Ok(Client {
            io: Mutex::new(Io {
                writer,
                resp: resp_rx,
            }),
            socket,
            reader: Some(reader),
        })
    }

    /// Execute one non-continuous SQL statement. DDL and DML acks come
    /// back as one-row relations (see [`wire::ack_relation`]).
    pub fn execute(&self, sql: &str) -> NetResult<Relation> {
        match self.request(Frame::new(FrameType::Query, wire::encode_query(sql)))? {
            Reply::Rows(rel) => Ok(rel),
            Reply::Subscribed(..) => Err(NetError::Protocol(
                "statement registered a continuous query; use subscribe()".into(),
            )),
            other => Err(unexpected(&other)),
        }
    }

    /// Register a continuous SELECT; window results are *pushed* by the
    /// server and surface on the returned iterator as they close.
    pub fn subscribe(&self, sql: &str) -> NetResult<SubscriptionStream> {
        match self.request(Frame::new(FrameType::Query, wire::encode_query(sql)))? {
            Reply::Subscribed(id, queue) => Ok(SubscriptionStream { id, queue }),
            Reply::Rows(_) => Err(NetError::Protocol(
                "statement returned rows, not a subscription; use execute()".into(),
            )),
            other => Err(unexpected(&other)),
        }
    }

    /// Join the fan-out group of an existing subscription (possibly
    /// owned by another connection): the server runs the continuous
    /// query **once** and serializes each closed window once, and this
    /// stream receives the same window sequence under its own fresh id.
    pub fn subscribe_attach(&self, primary: u64) -> NetResult<SubscriptionStream> {
        match self.request(Frame::new(FrameType::Attach, wire::encode_attach(primary)))? {
            Reply::Subscribed(id, queue) => Ok(SubscriptionStream { id, queue }),
            other => Err(unexpected(&other)),
        }
    }

    /// Subscribe to a stream's pass-through window feed, replaying
    /// archived windows with `close > from` before live delivery —
    /// the federation bridge's resume request. `from == i64::MIN`
    /// requests live-only (nothing to resume). Replayed windows arrive
    /// on the returned stream in close order, ahead of live ones; a
    /// window racing the archive scan may arrive twice (replayed copy
    /// first), so resuming consumers should drop closes they have
    /// already applied.
    pub fn subscribe_from(&self, stream: &str, from: Timestamp) -> NetResult<SubscriptionStream> {
        match self.request(Frame::new(
            FrameType::SubscribeFrom,
            wire::encode_subscribe_from(stream, from),
        ))? {
            Reply::Subscribed(id, queue) => Ok(SubscriptionStream { id, queue }),
            other => Err(unexpected(&other)),
        }
    }

    /// Push a batch of tuples into a stream. Returns the ingested count.
    pub fn ingest_batch(&self, stream: &str, rows: &[Row]) -> NetResult<u64> {
        match self.request(Frame::new(
            FrameType::Ingest,
            wire::encode_ingest(stream, rows),
        ))? {
            Reply::Rows(rel) => match wire::parse_ack(&rel) {
                Some((tag, _, n)) if tag == "ingested" => Ok(n as u64),
                _ => Err(NetError::Protocol("malformed ingest ack".into())),
            },
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch the server's `streamrel_metrics` virtual relation. The
    /// schema is byte-identical to `SELECT * FROM streamrel_metrics`
    /// executed embedded: the server serializes the very same relation.
    pub fn stats(&self) -> NetResult<Relation> {
        match self.request(Frame::bare(FrameType::Stats))? {
            Reply::Stats(rel) => Ok(rel),
            other => Err(unexpected(&other)),
        }
    }

    /// Advance a stream's event time (punctuation), closing due windows.
    pub fn heartbeat(&self, stream: &str, ts: Timestamp) -> NetResult<()> {
        match self.request(Frame::new(
            FrameType::Heartbeat,
            wire::encode_heartbeat(stream, ts),
        ))? {
            Reply::Heartbeat => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Orderly hang-up: `Goodbye`, await the ack, close the socket. The
    /// server reaps this connection's subscriptions either way; this
    /// just makes the close synchronous.
    pub fn close(self) -> NetResult<()> {
        match self.request(Frame::bare(FrameType::Goodbye)) {
            Ok(Reply::Goodbye) | Err(NetError::Disconnected) => Ok(()),
            Ok(other) => Err(unexpected(&other)),
            Err(e) => Err(e),
        }
        // Drop does the socket shutdown and reader join.
    }

    /// Send one frame and wait for its reply.
    fn request(&self, frame: Frame) -> NetResult<Reply> {
        let io = self.io.lock();
        frame.write_to(&mut &io.writer)?;
        (&io.writer).flush()?;
        match io.resp.recv() {
            Ok(Reply::Err(msg)) => Err(NetError::Remote(msg)),
            Ok(reply) => Ok(reply),
            Err(_) => Err(NetError::Disconnected),
        }
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        // Best-effort goodbye; an abrupt close is also handled server-side.
        if let Some(io) = self.io.try_lock() {
            let _ = Frame::bare(FrameType::Goodbye).write_to(&mut &io.writer);
        }
        let _ = self.socket.shutdown(Shutdown::Both);
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }
}

fn unexpected(reply: &Reply) -> NetError {
    let what = match reply {
        Reply::Rows(_) => "Rows",
        Reply::Subscribed(..) => "Subscribed",
        Reply::Heartbeat => "Heartbeat",
        Reply::Stats(_) => "StatsResult",
        Reply::Goodbye => "Goodbye",
        Reply::Err(_) => "Error",
    };
    NetError::Protocol(format!("unexpected {what} reply"))
}

/// Reader thread: decode frames and route them. Response frames go to
/// the in-flight request; `WindowResult` frames go to their stream's
/// bounded queue. On any socket or protocol error the thread exits,
/// closing the response channel and every subscription queue, which
/// surfaces `Disconnected`/end-of-stream to all callers.
fn reader_loop(mut socket: TcpStream, resp: Sender<Reply>, opts: ClientOptions) {
    let mut subs: Vec<(u64, Arc<SubQueue>)> = Vec::new();
    let mut decoder = FrameDecoder::new();
    loop {
        // The resumable decoder survives read timeouts mid-frame (the
        // old `Frame::read_from` restarted and desynced); anything else
        // short of a complete frame ends the connection.
        let frame = match decoder.read_frame(&mut socket) {
            Ok(Some(f)) => f,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            _ => break,
        };
        let forwarded = match frame.ty {
            FrameType::Rows => match wire::decode_rows(&frame.payload) {
                Ok(rel) => resp.send(Reply::Rows(rel)).is_ok(),
                Err(_) => break,
            },
            FrameType::Subscribed => match wire::decode_subscribed(&frame.payload) {
                Ok(id) => {
                    // Register the route *before* handing the queue to
                    // the caller: this thread is the only frame source,
                    // so no WindowResult for `id` can be missed.
                    let queue = SubQueue::new(opts);
                    subs.push((id, queue.clone()));
                    resp.send(Reply::Subscribed(id, queue)).is_ok()
                }
                Err(_) => break,
            },
            FrameType::WindowResult => match wire::decode_window_result(&frame.payload) {
                Ok((id, out)) => {
                    // Streams whose consumer is gone (we hold the only
                    // reference) are pruned lazily; live ones get the
                    // window offered to their bounded queue.
                    subs.retain(|(sid, q)| {
                        if *sid == id {
                            if Arc::strong_count(q) == 1 {
                                return false;
                            }
                            q.offer(out.clone());
                        }
                        true
                    });
                    true
                }
                Err(_) => break,
            },
            FrameType::Heartbeat => resp.send(Reply::Heartbeat).is_ok(),
            FrameType::StatsResult => match wire::decode_rows(&frame.payload) {
                Ok(rel) => resp.send(Reply::Stats(rel)).is_ok(),
                Err(_) => break,
            },
            FrameType::Error => match wire::decode_error(&frame.payload) {
                Ok(msg) => resp.send(Reply::Err(msg)).is_ok(),
                Err(_) => break,
            },
            FrameType::Goodbye => {
                let _ = resp.send(Reply::Goodbye);
                break;
            }
            // Client-to-server frames; the server must not send these.
            FrameType::Query
            | FrameType::Ingest
            | FrameType::Stats
            | FrameType::Attach
            | FrameType::SubscribeFrom => break,
        };
        if !forwarded {
            // The Client was dropped; nobody is listening any more.
            break;
        }
    }
    // Wake every blocked stream: the connection is over.
    for (_, q) in subs {
        q.close();
    }
}

/// Iterator over pushed window results for one continuous query.
///
/// `next()` blocks until the next window closes; it returns `None` when
/// the connection (or subscription) is gone. Dropping the stream stops
/// routing — further results for this subscription are discarded
/// client-side until the connection closes and the server reaps it.
pub struct SubscriptionStream {
    id: u64,
    queue: Arc<SubQueue>,
}

impl SubscriptionStream {
    /// The server-assigned subscription id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Windows shed client-side because this stream's bounded queue
    /// overflowed (the consumer fell behind the wire).
    pub fn dropped(&self) -> u64 {
        self.queue.q.lock().dropped()
    }

    /// Windows buffered client-side awaiting consumption — the
    /// federation bridge's lag gauge reads this.
    pub fn pending(&self) -> usize {
        self.queue.q.lock().pending()
    }

    /// True once the connection (or subscription) is gone: no further
    /// results will ever arrive beyond what is already queued.
    pub fn is_closed(&self) -> bool {
        self.queue.closed.load(Ordering::SeqCst)
    }

    /// Non-blocking poll; `None` if nothing is pending right now.
    pub fn try_next(&self) -> Option<CqOutput> {
        self.queue.q.lock().pop()
    }

    /// Block up to `timeout` for the next window result.
    pub fn next_timeout(&self, timeout: Duration) -> Option<CqOutput> {
        let deadline = Instant::now() + timeout;
        let mut q = self.queue.q.lock();
        loop {
            if let Some(out) = q.pop() {
                return Some(out);
            }
            if self.queue.closed.load(Ordering::SeqCst) {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let _ = self.queue.cv.wait_for(&mut q, deadline - now);
        }
    }
}

impl Iterator for SubscriptionStream {
    type Item = CqOutput;

    fn next(&mut self) -> Option<CqOutput> {
        let mut q = self.queue.q.lock();
        loop {
            if let Some(out) = q.pop() {
                return Some(out);
            }
            if self.queue.closed.load(Ordering::SeqCst) {
                return None;
            }
            self.queue.cv.wait(&mut q);
        }
    }
}
