//! Blocking wire-protocol client.
//!
//! One TCP connection carries both request/response traffic and
//! asynchronous `WindowResult` pushes. A background reader thread
//! demultiplexes: responses go to the (single) in-flight request;
//! window results are routed to the [`SubscriptionStream`] they belong
//! to. Requests are serialized — the protocol allows one outstanding
//! request per connection — but pushed results arrive at any time,
//! including while no request is in flight.

use std::fmt;
use std::io::{self, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::mpsc;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;
use streamrel_cq::CqOutput;
use streamrel_types::{Relation, Row, Timestamp};

use crate::frame::{Frame, FrameType};
use crate::wire;

/// Client-side failures.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server answered with an `Error` frame (e.g. a SQL error).
    Remote(String),
    /// The peer sent something the protocol does not allow here.
    Protocol(String),
    /// The connection is gone (EOF, server shutdown, reader died).
    Disconnected,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io error: {e}"),
            NetError::Remote(m) => write!(f, "server error: {m}"),
            NetError::Protocol(m) => write!(f, "protocol error: {m}"),
            NetError::Disconnected => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> NetError {
        NetError::Io(e)
    }
}

impl From<streamrel_types::Error> for NetError {
    fn from(e: streamrel_types::Error) -> NetError {
        NetError::Protocol(e.to_string())
    }
}

/// Client-side result alias.
pub type NetResult<T> = Result<T, NetError>;

/// A demultiplexed server→client message destined for the request path.
enum Reply {
    Rows(Relation),
    Subscribed(u64, Receiver<CqOutput>),
    Heartbeat,
    Stats(Relation),
    Goodbye,
    Err(String),
}

struct Io {
    writer: TcpStream,
    resp: Receiver<Reply>,
}

/// Blocking connection to a streamrel server.
pub struct Client {
    io: Mutex<Io>,
    socket: TcpStream,
    reader: Option<JoinHandle<()>>,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> NetResult<Client> {
        let socket = TcpStream::connect(addr)?;
        socket.set_nodelay(true).ok();
        let writer = socket.try_clone()?;
        let read_half = socket.try_clone()?;
        let (resp_tx, resp_rx) = mpsc::channel();
        let reader = std::thread::Builder::new()
            .name("streamrel-client-reader".into())
            .spawn(move || reader_loop(read_half, resp_tx))
            .map_err(NetError::Io)?;
        Ok(Client {
            io: Mutex::new(Io {
                writer,
                resp: resp_rx,
            }),
            socket,
            reader: Some(reader),
        })
    }

    /// Execute one non-continuous SQL statement. DDL and DML acks come
    /// back as one-row relations (see [`wire::ack_relation`]).
    pub fn execute(&self, sql: &str) -> NetResult<Relation> {
        match self.request(Frame::new(FrameType::Query, wire::encode_query(sql)))? {
            Reply::Rows(rel) => Ok(rel),
            Reply::Subscribed(..) => Err(NetError::Protocol(
                "statement registered a continuous query; use subscribe()".into(),
            )),
            other => Err(unexpected(&other)),
        }
    }

    /// Register a continuous SELECT; window results are *pushed* by the
    /// server and surface on the returned iterator as they close.
    pub fn subscribe(&self, sql: &str) -> NetResult<SubscriptionStream> {
        match self.request(Frame::new(FrameType::Query, wire::encode_query(sql)))? {
            Reply::Subscribed(id, rx) => Ok(SubscriptionStream { id, rx }),
            Reply::Rows(_) => Err(NetError::Protocol(
                "statement returned rows, not a subscription; use execute()".into(),
            )),
            other => Err(unexpected(&other)),
        }
    }

    /// Push a batch of tuples into a stream. Returns the ingested count.
    pub fn ingest_batch(&self, stream: &str, rows: &[Row]) -> NetResult<u64> {
        match self.request(Frame::new(
            FrameType::Ingest,
            wire::encode_ingest(stream, rows),
        ))? {
            Reply::Rows(rel) => match wire::parse_ack(&rel) {
                Some((tag, _, n)) if tag == "ingested" => Ok(n as u64),
                _ => Err(NetError::Protocol("malformed ingest ack".into())),
            },
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch the server's `streamrel_metrics` virtual relation. The
    /// schema is byte-identical to `SELECT * FROM streamrel_metrics`
    /// executed embedded: the server serializes the very same relation.
    pub fn stats(&self) -> NetResult<Relation> {
        match self.request(Frame::bare(FrameType::Stats))? {
            Reply::Stats(rel) => Ok(rel),
            other => Err(unexpected(&other)),
        }
    }

    /// Advance a stream's event time (punctuation), closing due windows.
    pub fn heartbeat(&self, stream: &str, ts: Timestamp) -> NetResult<()> {
        match self.request(Frame::new(
            FrameType::Heartbeat,
            wire::encode_heartbeat(stream, ts),
        ))? {
            Reply::Heartbeat => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Orderly hang-up: `Goodbye`, await the ack, close the socket. The
    /// server reaps this connection's subscriptions either way; this
    /// just makes the close synchronous.
    pub fn close(self) -> NetResult<()> {
        match self.request(Frame::bare(FrameType::Goodbye)) {
            Ok(Reply::Goodbye) | Err(NetError::Disconnected) => Ok(()),
            Ok(other) => Err(unexpected(&other)),
            Err(e) => Err(e),
        }
        // Drop does the socket shutdown and reader join.
    }

    /// Send one frame and wait for its reply.
    fn request(&self, frame: Frame) -> NetResult<Reply> {
        let io = self.io.lock();
        frame.write_to(&mut &io.writer)?;
        (&io.writer).flush()?;
        match io.resp.recv() {
            Ok(Reply::Err(msg)) => Err(NetError::Remote(msg)),
            Ok(reply) => Ok(reply),
            Err(_) => Err(NetError::Disconnected),
        }
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        // Best-effort goodbye; an abrupt close is also handled server-side.
        if let Some(io) = self.io.try_lock() {
            let _ = Frame::bare(FrameType::Goodbye).write_to(&mut &io.writer);
        }
        let _ = self.socket.shutdown(Shutdown::Both);
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }
}

fn unexpected(reply: &Reply) -> NetError {
    let what = match reply {
        Reply::Rows(_) => "Rows",
        Reply::Subscribed(..) => "Subscribed",
        Reply::Heartbeat => "Heartbeat",
        Reply::Stats(_) => "StatsResult",
        Reply::Goodbye => "Goodbye",
        Reply::Err(_) => "Error",
    };
    NetError::Protocol(format!("unexpected {what} reply"))
}

/// Reader thread: decode frames and route them. Response frames go to
/// the in-flight request; `WindowResult` frames go to their stream. On
/// any socket or protocol error the thread exits, which closes every
/// channel and surfaces `Disconnected` to all callers.
fn reader_loop(mut socket: TcpStream, resp: Sender<Reply>) {
    let mut subs: Vec<(u64, Sender<CqOutput>)> = Vec::new();
    loop {
        let frame = match Frame::read_from(&mut socket) {
            Ok(Some(f)) => f,
            _ => return,
        };
        let forwarded = match frame.ty {
            FrameType::Rows => match wire::decode_rows(&frame.payload) {
                Ok(rel) => resp.send(Reply::Rows(rel)).is_ok(),
                Err(_) => return,
            },
            FrameType::Subscribed => match wire::decode_subscribed(&frame.payload) {
                Ok(id) => {
                    // Register the route *before* handing the receiver to
                    // the caller: this thread is the only frame source, so
                    // no WindowResult for `id` can be missed.
                    let (tx, rx) = mpsc::channel();
                    subs.push((id, tx));
                    resp.send(Reply::Subscribed(id, rx)).is_ok()
                }
                Err(_) => return,
            },
            FrameType::WindowResult => match wire::decode_window_result(&frame.payload) {
                Ok((id, out)) => {
                    // Dead streams (receiver dropped) are pruned lazily.
                    subs.retain(|(sid, tx)| *sid != id || tx.send(out.clone()).is_ok());
                    true
                }
                Err(_) => return,
            },
            FrameType::Heartbeat => resp.send(Reply::Heartbeat).is_ok(),
            FrameType::StatsResult => match wire::decode_rows(&frame.payload) {
                Ok(rel) => resp.send(Reply::Stats(rel)).is_ok(),
                Err(_) => return,
            },
            FrameType::Error => match wire::decode_error(&frame.payload) {
                Ok(msg) => resp.send(Reply::Err(msg)).is_ok(),
                Err(_) => return,
            },
            FrameType::Goodbye => {
                let _ = resp.send(Reply::Goodbye);
                return;
            }
            FrameType::Query | FrameType::Ingest | FrameType::Stats => return, // server must not send these
        };
        if !forwarded {
            // The Client was dropped; nobody is listening any more.
            return;
        }
    }
}

/// Iterator over pushed window results for one continuous query.
///
/// `next()` blocks until the next window closes; it returns `None` when
/// the connection (or subscription) is gone. Dropping the stream stops
/// routing — further results for this subscription are discarded
/// client-side until the connection closes and the server reaps it.
pub struct SubscriptionStream {
    id: u64,
    rx: Receiver<CqOutput>,
}

impl SubscriptionStream {
    /// The server-assigned subscription id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Non-blocking poll; `None` if nothing is pending right now.
    pub fn try_next(&self) -> Option<CqOutput> {
        match self.rx.try_recv() {
            Ok(out) => Some(out),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Block up to `timeout` for the next window result.
    pub fn next_timeout(&self, timeout: Duration) -> Option<CqOutput> {
        match self.rx.recv_timeout(timeout) {
            Ok(out) => Some(out),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }
}

impl Iterator for SubscriptionStream {
    type Item = CqOutput;

    fn next(&mut self) -> Option<CqOutput> {
        self.rx.recv().ok()
    }
}
