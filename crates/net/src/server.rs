//! Thread-per-connection TCP server.
//!
//! Each accepted connection gets two threads:
//!
//! - a **request** thread that reads frames, executes them against the
//!   shared [`Db`] and writes the reply, and
//! - a **delivery** thread that blocks on the database's
//!   [`streamrel_core::ResultNotifier`] and *pushes* `WindowResult`
//!   frames for every subscription this connection owns, as windows
//!   close — continuous SELECT results are never polled over the wire.
//!
//! Backpressure is the engine's bounded subscription queue: a client that
//! stops reading stalls its delivery thread on the socket (bounded by
//! [`ServerOptions::write_timeout`]), the queue behind it fills, and the
//! configured overflow policy sheds windows for *that* subscription only.
//! When a connection drops — gracefully via `Goodbye` or abruptly — every
//! subscription it owned is unsubscribed from the database, so dead
//! clients cannot accumulate server-side state.

use std::collections::HashSet;
use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use parking_lot::Mutex;
use streamrel_core::{Db, ExecResult, SubscriptionId};
use streamrel_obs::Counter;

use crate::frame::{Frame, FrameType};
use crate::wire;

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerOptions {
    /// Per-frame socket write timeout. A subscriber that stops reading
    /// for longer than this gets disconnected (and reaped) instead of
    /// wedging its delivery thread forever.
    pub write_timeout: Duration,
    /// Fallback wake interval for delivery threads; bounds how long
    /// teardown can take, not how fast results are pushed (pushes are
    /// notifier-driven).
    pub tick: Duration,
    /// Idle deadline for the request thread. A connection that sends no
    /// frame for this long **and owns no subscriptions** is considered
    /// half-open and reaped; subscribers sit legitimately silent while
    /// results are pushed, so the deadline never applies to them.
    /// `None` (the default) waits forever, matching the old behaviour.
    pub read_timeout: Option<Duration>,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            write_timeout: Duration::from_secs(5),
            tick: Duration::from_millis(100),
            read_timeout: None,
        }
    }
}

/// A running streamrel wire-protocol server.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<ConnHandle>>>,
}

struct ConnHandle {
    socket: TcpStream,
    thread: JoinHandle<()>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and serve `db`
    /// until [`Server::shutdown`] or drop.
    pub fn serve(db: Arc<Db>, addr: impl ToSocketAddrs) -> io::Result<Server> {
        Server::serve_with(db, addr, ServerOptions::default())
    }

    /// [`Server::serve`] with explicit options.
    pub fn serve_with(
        db: Arc<Db>,
        addr: impl ToSocketAddrs,
        opts: ServerOptions,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<ConnHandle>>> = Arc::new(Mutex::named("net.conns", Vec::new()));
        let accept = {
            let shutdown = shutdown.clone();
            let conns = conns.clone();
            thread::Builder::new()
                .name("streamrel-accept".into())
                .spawn(move || accept_loop(listener, db, opts, shutdown, conns))?
        };
        Ok(Server {
            addr,
            shutdown,
            accept: Some(accept),
            conns,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, hang up every connection, join all threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let conns: Vec<ConnHandle> = std::mem::take(&mut *self.conns.lock());
        for c in &conns {
            let _ = c.socket.shutdown(Shutdown::Both);
        }
        for c in conns {
            let _ = c.thread.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: TcpListener,
    db: Arc<Db>,
    opts: ServerOptions,
    shutdown: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<ConnHandle>>>,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_nodelay(true);
                let _ = stream.set_write_timeout(Some(opts.write_timeout));
                let _ = stream.set_read_timeout(opts.read_timeout);
                let Ok(socket) = stream.try_clone() else {
                    continue;
                };
                let db = db.clone();
                let spawned = thread::Builder::new()
                    .name("streamrel-conn".into())
                    .spawn(move || handle_conn(db, stream, opts));
                if let Ok(thread) = spawned {
                    let mut guard = conns.lock();
                    // Opportunistically reap finished connections so a
                    // long-lived server does not accumulate handles.
                    guard.retain(|c| !c.thread.is_finished());
                    guard.push(ConnHandle { socket, thread });
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Monotonic connection ids, used to key per-connection instruments
/// (`net.conn.<id>.*`) so concurrent connections never share counters.
static CONN_SEQ: AtomicU64 = AtomicU64::new(0);

// lock-order: conns < subs < writer
//
// The server's connection list is taken before any per-connection lock,
// and a connection's subscription set before its socket writer.
/// Everything the request and delivery threads share for one connection.
struct Conn {
    db: Arc<Db>,
    writer: Mutex<TcpStream>,
    subs: Mutex<HashSet<u64>>,
    gone: AtomicBool,
    frames_in: Arc<Counter>,
    frames_out: Arc<Counter>,
    conn_in: Arc<Counter>,
    conn_out: Arc<Counter>,
    /// Half-open connections hung up by the idle read deadline.
    idle_reaped: Arc<Counter>,
}

impl Conn {
    fn send(&self, frame: &Frame) -> io::Result<()> {
        self.frames_out.inc();
        self.conn_out.inc();
        let mut w = self.writer.lock();
        frame.write_to(&mut *w)?;
        w.flush()
    }

    /// Unsubscribe everything this connection owns (idempotent).
    fn reap(&self) {
        for id in self.subs.lock().drain() {
            let _ = self.db.unsubscribe(SubscriptionId(id));
        }
    }

    /// Push pending window results for every subscription this
    /// connection owns. Any socket error marks the connection gone.
    fn deliver_pending(&self) {
        let ids: Vec<u64> = self.subs.lock().iter().copied().collect();
        for id in ids {
            let outs = match self.db.poll(SubscriptionId(id)) {
                Ok(outs) => outs,
                Err(_) => continue, // unsubscribed mid-flight
            };
            for out in outs {
                let frame = Frame::new(
                    FrameType::WindowResult,
                    wire::encode_window_result(id, &out),
                );
                if self.send(&frame).is_err() {
                    self.gone.store(true, Ordering::SeqCst);
                    return;
                }
            }
        }
    }
}

fn handle_conn(db: Arc<Db>, stream: TcpStream, opts: ServerOptions) {
    let Ok(writer) = stream.try_clone() else {
        return;
    };
    let registry = db.engine().metrics().clone();
    let conn_id = CONN_SEQ.fetch_add(1, Ordering::SeqCst);
    let conn_prefix = format!("net.conn.{conn_id}.");
    let connections = registry.gauge("net.connections");
    connections.add(1);
    let conn = Arc::new(Conn {
        db: db.clone(),
        writer: Mutex::named("net.writer", writer),
        subs: Mutex::named("net.subs", HashSet::new()),
        gone: AtomicBool::new(false),
        frames_in: registry.counter("net.frames_in"),
        frames_out: registry.counter("net.frames_out"),
        conn_in: registry.counter(&format!("{conn_prefix}frames_in")),
        conn_out: registry.counter(&format!("{conn_prefix}frames_out")),
        idle_reaped: registry.counter("net.idle_reaped"),
    });

    // Delivery thread: block on the notifier, push results as they land.
    let delivery = {
        let conn = conn.clone();
        let notifier = db.notifier();
        thread::spawn(move || {
            let mut seen = notifier.generation();
            while !conn.gone.load(Ordering::SeqCst) {
                seen = notifier.wait_newer(seen, opts.tick);
                conn.deliver_pending();
            }
        })
    };

    request_loop(&conn, &stream, opts.read_timeout.is_some());

    // Teardown: stop the deliverer, then reap this connection's
    // subscriptions so the engine stops retaining windows for it.
    conn.gone.store(true, Ordering::SeqCst);
    db.notifier().notify(); // wake the deliverer promptly
    let _ = delivery.join();
    conn.reap();
    // Per-connection instruments die with the connection; the aggregate
    // `net.*` counters and the connection gauge live on.
    connections.add(-1);
    registry.remove_prefix(&conn_prefix);
    // shutdown() acts on the connection itself, so the peer sees EOF even
    // though the server's registry still holds a cloned handle.
    let _ = stream.shutdown(Shutdown::Both);
}

fn request_loop(conn: &Arc<Conn>, mut stream: &TcpStream, idle_deadline: bool) {
    loop {
        let frame = match Frame::read_from(&mut stream) {
            Ok(Some(f)) => f,
            Ok(None) => return, // clean EOF
            Err(e)
                if idle_deadline
                    && matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
            {
                // The idle read deadline expired. A subscriber sits
                // legitimately silent between pushed results, so only a
                // connection owning no subscriptions is half-open; reap
                // it so it cannot pin this thread forever.
                if conn.subs.lock().is_empty() {
                    conn.idle_reaped.inc();
                    return;
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Malformed frame: tell the client why, then hang up.
                // Re-synchronising a corrupt byte stream is hopeless.
                let _ = conn.send(&Frame::new(
                    FrameType::Error,
                    wire::encode_error(&format!("malformed frame: {e}")),
                ));
                return;
            }
            Err(_) => return, // abrupt disconnect
        };
        conn.frames_in.inc();
        conn.conn_in.inc();
        let keep_going = match frame.ty {
            FrameType::Query => handle_query(conn, &frame.payload),
            FrameType::Ingest => handle_ingest(conn, &frame.payload),
            FrameType::Heartbeat => handle_heartbeat(conn, &frame.payload),
            FrameType::Stats => handle_stats(conn),
            FrameType::Goodbye => {
                // Reap before acking so a synchronous `close()` observes
                // its subscriptions already gone.
                conn.reap();
                let _ = conn.send(&Frame::bare(FrameType::Goodbye));
                false
            }
            // Server-to-client frame types arriving here are a protocol
            // violation; answer and hang up.
            FrameType::Rows
            | FrameType::Subscribed
            | FrameType::WindowResult
            | FrameType::Error
            | FrameType::StatsResult => {
                let _ = conn.send(&Frame::new(
                    FrameType::Error,
                    wire::encode_error(&format!("unexpected frame {:?} from client", frame.ty)),
                ));
                false
            }
        };
        if !keep_going || conn.gone.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Run one SQL statement; reply `Rows`, `Subscribed` or `Error`.
/// SQL errors are replies, not disconnects. Returns false on socket death.
fn handle_query(conn: &Arc<Conn>, payload: &[u8]) -> bool {
    let sql = match wire::decode_query(payload) {
        Ok(sql) => sql,
        Err(e) => return reply_error(conn, &e.to_string()),
    };
    let reply = match conn.db.execute(&sql) {
        Ok(ExecResult::Rows(rel)) => Frame::new(FrameType::Rows, wire::encode_rows(&rel)),
        Ok(ExecResult::Subscribed(SubscriptionId(id))) => {
            // Reply before registering for delivery: queued results are
            // retained by the engine, and this order guarantees the
            // Subscribed frame precedes the first WindowResult on the wire.
            let ok = conn
                .send(&Frame::new(
                    FrameType::Subscribed,
                    wire::encode_subscribed(id),
                ))
                .is_ok();
            if ok {
                conn.subs.lock().insert(id);
            } else {
                let _ = conn.db.unsubscribe(SubscriptionId(id));
            }
            return ok;
        }
        Ok(ExecResult::Created(name)) => ack("created", &name, 0),
        Ok(ExecResult::Dropped(name)) => ack("dropped", &name, 0),
        Ok(ExecResult::Inserted(n)) => ack("inserted", "", n as i64),
        Ok(ExecResult::Deleted(n)) => ack("deleted", "", n as i64),
        Ok(ExecResult::Truncated(name)) => ack("truncated", &name, 0),
        Err(e) => Frame::new(FrameType::Error, wire::encode_error(&e.to_string())),
    };
    conn.send(&reply).is_ok()
}

fn handle_ingest(conn: &Arc<Conn>, payload: &[u8]) -> bool {
    let (stream, rows) = match wire::decode_ingest(payload) {
        Ok(v) => v,
        Err(e) => return reply_error(conn, &e.to_string()),
    };
    let n = rows.len() as i64;
    let reply = match conn.db.ingest_batch(&stream, rows) {
        Ok(()) => ack("ingested", &stream, n),
        Err(e) => Frame::new(FrameType::Error, wire::encode_error(&e.to_string())),
    };
    conn.send(&reply).is_ok()
}

fn handle_heartbeat(conn: &Arc<Conn>, payload: &[u8]) -> bool {
    let (stream, ts) = match wire::decode_heartbeat(payload) {
        Ok(v) => v,
        Err(e) => return reply_error(conn, &e.to_string()),
    };
    let reply = match conn.db.heartbeat(&stream, ts) {
        Ok(()) => Frame::new(FrameType::Heartbeat, wire::encode_heartbeat(&stream, ts)),
        Err(e) => Frame::new(FrameType::Error, wire::encode_error(&e.to_string())),
    };
    conn.send(&reply).is_ok()
}

/// Serve the current `streamrel_metrics` relation. The payload goes
/// through the same relation codec as `Rows`, and the relation itself is
/// the one `SELECT * FROM streamrel_metrics` would return — so embedded
/// and wire clients see a byte-identical schema.
fn handle_stats(conn: &Arc<Conn>) -> bool {
    let rel = conn.db.metrics_relation();
    conn.send(&Frame::new(FrameType::StatsResult, wire::encode_rows(&rel)))
        .is_ok()
}

fn ack(tag: &str, detail: &str, n: i64) -> Frame {
    Frame::new(
        FrameType::Rows,
        wire::encode_rows(&wire::ack_relation(tag, detail, n)),
    )
}

fn reply_error(conn: &Arc<Conn>, msg: &str) -> bool {
    conn.send(&Frame::new(FrameType::Error, wire::encode_error(msg)))
        .is_ok()
}
