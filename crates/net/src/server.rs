//! Readiness-driven reactor server.
//!
//! One thread multiplexes every connection over a [`polling::Poller`]
//! (a poll(2)-backed readiness shim; see `shims/poll`). A connection is
//! two file descriptors' worth of state — an incremental
//! [`FrameDecoder`] on the read side, a queue of encoded frames on the
//! write side — not two threads: 10 000 subscribers cost buffers and
//! fds, never 20 000 stacks. The reactor wakes on three signals only:
//!
//! - **socket readiness** (accept, readable bytes, writable space),
//! - **the engine's [`streamrel_core::ResultNotifier`]**, bridged to the
//!   poller via a registered waker so a closing window interrupts the
//!   poll wait immediately, and
//! - a **fallback tick** bounding idle-reap and shutdown latency.
//!
//! **Serialize-once fan-out.** A continuous query with N subscribers
//! (the [`FrameType::Attach`] frame joins an existing subscription's
//! fan-out group) produces ONE encoded window body per close — the
//! engine hands every member the same reference-counted window, the
//! sweep encodes it once (`net.fanout.encodes` counts bodies, not
//! deliveries) and each subscriber's outbox holds the shared bytes plus
//! its own 8-byte id prefix. Delivery work scales with subscribers;
//! serialization work scales with windows.
//!
//! **Backpressure** is layered. The engine's bounded subscription queue
//! is drained promptly by the sweep, so the shed point for a slow
//! consumer moves to its per-subscription **outbox** — the same
//! [`Subscription`] machinery (capacity, [`OverflowPolicy`], depth
//! gauge `net.outbox.depth`) instantiated over encoded frames. A peer
//! that stops reading altogether is disconnected once its write stalls
//! longer than [`ServerOptions::write_timeout`]. Windows that were
//! drained from the engine but never reached the socket — outbox
//! residue, a half-written frame at socket death — are counted in
//! `net.delivery_lost`, so windows_routed == sent + dropped + lost
//! holds across connection death.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use polling::{Event, Events, Poller};
use streamrel_core::{Db, ExecResult, OverflowPolicy, Subscription, SubscriptionId};
use streamrel_cq::CqOutput;
use streamrel_obs::{Counter, Gauge};

use crate::frame::{Frame, FrameDecoder, FrameType, MAX_FRAME_LEN, PROTOCOL_VERSION};
use crate::wire;

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerOptions {
    /// Write-stall deadline. A subscriber that stops reading for longer
    /// than this (with output pending) is disconnected and reaped
    /// instead of accumulating state forever.
    pub write_timeout: Duration,
    /// Fallback poll timeout; bounds idle-reap and shutdown latency,
    /// not delivery latency (deliveries are notifier-driven).
    pub tick: Duration,
    /// Idle deadline. A connection that sends no frame for this long
    /// **and owns no subscriptions** is considered half-open and reaped;
    /// subscribers sit legitimately silent while results are pushed, so
    /// the deadline never applies to them. `None` (the default) waits
    /// forever.
    pub read_timeout: Option<Duration>,
    /// Per-subscription outbox bound (encoded frames queued for one
    /// subscriber). Overflow sheds per [`ServerOptions::outbox_overflow`]
    /// and counts into `net.outbox_drops`.
    pub outbox_capacity: usize,
    /// What an overflowing outbox sacrifices.
    pub outbox_overflow: OverflowPolicy,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            write_timeout: Duration::from_secs(5),
            tick: Duration::from_millis(100),
            read_timeout: None,
            outbox_capacity: streamrel_core::DEFAULT_SUB_CAPACITY,
            outbox_overflow: OverflowPolicy::DropOldest,
        }
    }
}

/// A running streamrel wire-protocol server.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    poller: Arc<Poller>,
    reactor: Option<JoinHandle<()>>,
    /// Keeps the notifier→poller bridge registered; dropping the last
    /// strong reference unregisters the waker.
    _waker: streamrel_core::Waker,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and serve `db`
    /// until [`Server::shutdown`] or drop.
    pub fn serve(db: Arc<Db>, addr: impl ToSocketAddrs) -> io::Result<Server> {
        Server::serve_with(db, addr, ServerOptions::default())
    }

    /// [`Server::serve`] with explicit options.
    pub fn serve_with(
        db: Arc<Db>,
        addr: impl ToSocketAddrs,
        opts: ServerOptions,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let poller = Arc::new(Poller::new()?);
        poller.add(&listener, Event::readable(LISTENER_KEY))?;
        // Bridge engine publishes into poller wakeups: a window closing
        // anywhere interrupts the poll wait. The waker holds only a weak
        // poller reference's worth of work — one self-pipe write — and
        // runs with no locks held on either side.
        let waker: streamrel_core::Waker = {
            let poller = poller.clone();
            Arc::new(move || {
                let _ = poller.notify();
            })
        };
        db.notifier().register_waker(&waker);
        let shutdown = Arc::new(AtomicBool::new(false));
        let reactor = {
            let shutdown = shutdown.clone();
            let poller = poller.clone();
            thread::Builder::new()
                .name("streamrel-reactor".into())
                .spawn(move || Reactor::new(db, listener, poller, opts).run(&shutdown))?
        };
        Ok(Server {
            addr,
            shutdown,
            poller,
            reactor: Some(reactor),
            _waker: waker,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, hang up every connection, join the reactor.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = self.poller.notify();
        if let Some(h) = self.reactor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Poller key of the accept socket; connections use `CONN_SEQ`-derived
/// keys starting at 1.
const LISTENER_KEY: usize = 0;

/// Monotonic connection ids, used both as poller keys and to key
/// per-connection instruments (`net.conn.<id>.*`) so concurrent
/// connections never share counters.
static CONN_SEQ: AtomicU64 = AtomicU64::new(0);

/// One encoded `WindowResult` awaiting delivery: the shared
/// (serialize-once) body plus this subscriber's id. The frame header and
/// id prefix are materialized at write time; the body bytes are the same
/// allocation for every member of the fan-out group.
struct OutFrame {
    sub: u64,
    body: Arc<Vec<u8>>,
}

/// Per-connection state machine. No locks anywhere: the reactor thread
/// is the only owner.
struct Conn {
    sock: TcpStream,
    decoder: FrameDecoder,
    /// Encoded reply/control frames, flushed ahead of window results so
    /// a `Subscribed` ack always precedes its first `WindowResult`.
    ctrl: VecDeque<Vec<u8>>,
    /// Subscription ids owned by this connection, registration order.
    subs: Vec<u64>,
    /// Per-subscription bounded outboxes of encoded window frames.
    outboxes: HashMap<u64, Subscription<OutFrame>>,
    /// The frame currently on the wire: `wbuf[wpos..]` remains to send.
    wbuf: Vec<u8>,
    wpos: usize,
    /// True while `wbuf` holds a `WindowResult` (for loss accounting).
    inflight_window: bool,
    /// Write interest currently registered with the poller.
    want_write: bool,
    /// Stream is corrupt or said goodbye: drain `ctrl`, then close.
    closing: bool,
    last_activity: Instant,
    /// When the peer first left output stranded (`WouldBlock` with bytes
    /// pending); cleared by any successful write.
    stalled_since: Option<Instant>,
    conn_prefix: String,
    conn_in: Arc<Counter>,
    conn_out: Arc<Counter>,
}

/// Aggregate instruments the reactor updates. Cached as `Arc`s so the
/// per-event hot path never touches the registry lock.
struct NetMetrics {
    frames_in: Arc<Counter>,
    frames_out: Arc<Counter>,
    connections: Arc<Gauge>,
    idle_reaped: Arc<Counter>,
    /// Window bodies serialized (once per closed window per sweep — NOT
    /// per subscriber; that is the whole fan-out claim).
    fanout_encodes: Arc<Counter>,
    /// Sum of per-subscription outbox depths.
    outbox_depth: Arc<Gauge>,
    /// Window frames shed by a full outbox (slow consumer).
    outbox_drops: Arc<Counter>,
    /// Window results drained from the engine but never fully written to
    /// a socket: outbox residue and half-written frames at teardown.
    delivery_lost: Arc<Counter>,
    /// Window frames fully handed to the kernel.
    windows_sent: Arc<Counter>,
    /// Reactor loop iterations (readiness, notifier or tick).
    wakeups: Arc<Counter>,
    /// `SubscribeFrom` frames asking for archive replay (a federation
    /// bridge resuming after a link drop or node restart).
    fed_resubscribes: Arc<Counter>,
    /// Archived windows re-served from Active Tables on resume.
    fed_replayed_windows: Arc<Counter>,
    /// Rows inside those replayed windows.
    fed_replayed_rows: Arc<Counter>,
}

struct Reactor {
    db: Arc<Db>,
    listener: TcpListener,
    poller: Arc<Poller>,
    opts: ServerOptions,
    conns: HashMap<usize, Conn>,
    metrics: NetMetrics,
    registry: Arc<streamrel_obs::Registry>,
}

impl Reactor {
    fn new(
        db: Arc<Db>,
        listener: TcpListener,
        poller: Arc<Poller>,
        opts: ServerOptions,
    ) -> Reactor {
        let registry = db.engine().metrics().clone();
        let metrics = NetMetrics {
            frames_in: registry.counter("net.frames_in"),
            frames_out: registry.counter("net.frames_out"),
            connections: registry.gauge("net.connections"),
            idle_reaped: registry.counter("net.idle_reaped"),
            fanout_encodes: registry.counter("net.fanout.encodes"),
            outbox_depth: registry.gauge("net.outbox.depth"),
            outbox_drops: registry.counter("net.outbox_drops"),
            delivery_lost: registry.counter("net.delivery_lost"),
            windows_sent: registry.counter("net.windows_sent"),
            wakeups: registry.counter("net.reactor.wakeups"),
            fed_resubscribes: registry.counter("fed.resubscribes"),
            fed_replayed_windows: registry.counter("fed.replayed_windows"),
            fed_replayed_rows: registry.counter("fed.replayed_rows"),
        };
        Reactor {
            db,
            listener,
            poller,
            opts,
            conns: HashMap::new(),
            metrics,
            registry,
        }
    }

    fn run(mut self, shutdown: &AtomicBool) {
        let mut events = Events::new();
        while !shutdown.load(Ordering::SeqCst) {
            events.clear();
            let _ = self.poller.wait(&mut events, Some(self.opts.tick));
            self.metrics.wakeups.inc();
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            let ready: Vec<Event> = events.iter().collect();
            for ev in ready {
                if ev.key == LISTENER_KEY {
                    self.accept_ready();
                } else if self.conns.contains_key(&ev.key) {
                    if ev.readable && !self.conn_readable(ev.key) {
                        self.close_conn(ev.key);
                        continue;
                    }
                    if self.conns.contains_key(&ev.key) && !self.pump_writes(ev.key) {
                        self.close_conn(ev.key);
                    }
                }
            }
            self.sweep_deliveries();
            self.flush_all();
            self.reap_deadlines();
        }
        // Teardown: hang up every connection so peers observe EOF.
        let keys: Vec<usize> = self.conns.keys().copied().collect();
        for key in keys {
            self.close_conn(key);
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let (sock, _peer) = match self.listener.accept() {
                Ok(v) => v,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => return,
            };
            if sock.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = sock.set_nodelay(true);
            let key = (CONN_SEQ.fetch_add(1, Ordering::SeqCst) + 1) as usize;
            if self.poller.add(&sock, Event::readable(key)).is_err() {
                continue;
            }
            let conn_prefix = format!("net.conn.{key}.");
            self.metrics.connections.add(1);
            self.conns.insert(
                key,
                Conn {
                    sock,
                    decoder: FrameDecoder::new(),
                    ctrl: VecDeque::new(),
                    subs: Vec::new(),
                    outboxes: HashMap::new(),
                    wbuf: Vec::new(),
                    wpos: 0,
                    inflight_window: false,
                    want_write: false,
                    closing: false,
                    last_activity: Instant::now(),
                    stalled_since: None,
                    conn_in: self.registry.counter(&format!("{conn_prefix}frames_in")),
                    conn_out: self.registry.counter(&format!("{conn_prefix}frames_out")),
                    conn_prefix,
                },
            );
        }
    }

    /// Drain readable bytes into the decoder and process every complete
    /// frame. Returns false when the connection must die abruptly.
    fn conn_readable(&mut self, key: usize) -> bool {
        loop {
            let Some(conn) = self.conns.get_mut(&key) else {
                return true;
            };
            let mut chunk = [0u8; 16 * 1024];
            match conn.sock.read(&mut chunk) {
                Ok(0) => {
                    // EOF. Clean only at a frame boundary with nothing
                    // owed; either way the connection is done.
                    return false;
                }
                Ok(n) => {
                    conn.last_activity = Instant::now();
                    conn.decoder.extend(&chunk[..n]);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        // Decode outside the read loop; a corrupt stream stops here.
        loop {
            let next = {
                let Some(conn) = self.conns.get_mut(&key) else {
                    return true;
                };
                if conn.closing {
                    return true;
                }
                let next = conn.decoder.next_frame();
                if matches!(next, Ok(Some(_))) {
                    conn.conn_in.inc();
                }
                next
            };
            match next {
                Ok(Some(frame)) => {
                    self.metrics.frames_in.inc();
                    self.handle_frame(key, frame);
                }
                Ok(None) => return true,
                Err(e) => {
                    // Malformed frame: tell the client why, then hang
                    // up. Re-synchronising a corrupt byte stream is
                    // hopeless.
                    self.enqueue_ctrl(
                        key,
                        &Frame::new(
                            FrameType::Error,
                            wire::encode_error(&format!("malformed frame: {e}")),
                        ),
                    );
                    if let Some(conn) = self.conns.get_mut(&key) {
                        conn.closing = true;
                    }
                    return true;
                }
            }
        }
    }

    /// Serialize a control/reply frame onto the connection's queue.
    fn enqueue_ctrl(&mut self, key: usize, frame: &Frame) {
        let Some(conn) = self.conns.get_mut(&key) else {
            return;
        };
        let mut bytes = Vec::with_capacity(frame.payload.len() + 6);
        if frame.write_to(&mut bytes).is_ok() {
            self.metrics.frames_out.inc();
            conn.conn_out.inc();
            conn.ctrl.push_back(bytes);
        }
    }

    fn handle_frame(&mut self, key: usize, frame: Frame) {
        match frame.ty {
            FrameType::Query => self.handle_query(key, &frame.payload),
            FrameType::Attach => self.handle_attach(key, &frame.payload),
            FrameType::SubscribeFrom => self.handle_subscribe_from(key, &frame.payload),
            FrameType::Ingest => self.handle_ingest(key, &frame.payload),
            FrameType::Heartbeat => self.handle_heartbeat(key, &frame.payload),
            FrameType::Stats => {
                let rel = self.db.metrics_relation();
                self.enqueue_ctrl(
                    key,
                    &Frame::new(FrameType::StatsResult, wire::encode_rows(&rel)),
                );
            }
            FrameType::Goodbye => {
                // Reap before acking so a synchronous `close()` observes
                // its subscriptions already gone.
                self.reap_subs(key);
                self.enqueue_ctrl(key, &Frame::bare(FrameType::Goodbye));
                if let Some(conn) = self.conns.get_mut(&key) {
                    conn.closing = true;
                }
            }
            // Server-to-client frame types arriving here are a protocol
            // violation; answer and hang up.
            FrameType::Rows
            | FrameType::Subscribed
            | FrameType::WindowResult
            | FrameType::Error
            | FrameType::StatsResult => {
                self.enqueue_ctrl(
                    key,
                    &Frame::new(
                        FrameType::Error,
                        wire::encode_error(&format!("unexpected frame {:?} from client", frame.ty)),
                    ),
                );
                if let Some(conn) = self.conns.get_mut(&key) {
                    conn.closing = true;
                }
            }
        }
    }

    /// Run one SQL statement; reply `Rows`, `Subscribed` or `Error`.
    /// SQL errors are replies, not disconnects.
    fn handle_query(&mut self, key: usize, payload: &[u8]) {
        let sql = match wire::decode_query(payload) {
            Ok(sql) => sql,
            Err(e) => return self.reply_error(key, &e.to_string()),
        };
        let reply = match self.db.execute(&sql) {
            Ok(ExecResult::Rows(rel)) => Frame::new(FrameType::Rows, wire::encode_rows(&rel)),
            Ok(ExecResult::Subscribed(SubscriptionId(id))) => {
                return self.register_sub(key, id);
            }
            Ok(ExecResult::Created(name)) => ack("created", &name, 0),
            Ok(ExecResult::Dropped(name)) => ack("dropped", &name, 0),
            Ok(ExecResult::Inserted(n)) => ack("inserted", "", n as i64),
            Ok(ExecResult::Deleted(n)) => ack("deleted", "", n as i64),
            Ok(ExecResult::Truncated(name)) => ack("truncated", &name, 0),
            Err(e) => Frame::new(FrameType::Error, wire::encode_error(&e.to_string())),
        };
        self.enqueue_ctrl(key, &reply);
    }

    /// Join an existing subscription's fan-out group: the CQ keeps
    /// running once; this connection gains a member id whose window
    /// results are encoded from the same bytes as everyone else's.
    fn handle_attach(&mut self, key: usize, payload: &[u8]) {
        let primary = match wire::decode_attach(payload) {
            Ok(id) => id,
            Err(e) => return self.reply_error(key, &e.to_string()),
        };
        match self.db.subscribe_attach(SubscriptionId(primary)) {
            Ok(SubscriptionId(id)) => self.register_sub(key, id),
            Err(e) => self.reply_error(key, &e.to_string()),
        }
    }

    /// Ack a fresh subscription and wire up its delivery state. The ack
    /// is enqueued before the id becomes sweep-visible, and `ctrl`
    /// drains ahead of outboxes, so `Subscribed` always precedes the
    /// first `WindowResult` on the wire.
    fn register_sub(&mut self, key: usize, id: u64) {
        if !self.conns.contains_key(&key) {
            // Connection died while the statement ran; don't leak the CQ.
            let _ = self.db.unsubscribe(SubscriptionId(id));
            return;
        }
        self.enqueue_ctrl(
            key,
            &Frame::new(FrameType::Subscribed, wire::encode_subscribed(id)),
        );
        let outbox = Subscription::bounded(self.opts.outbox_capacity, self.opts.outbox_overflow)
            .with_depth_gauge(self.metrics.outbox_depth.clone());
        if let Some(conn) = self.conns.get_mut(&key) {
            conn.subs.push(id);
            conn.outboxes.insert(id, outbox);
        }
    }

    /// Subscribe to a stream's pass-through window feed, replaying
    /// archived windows with `close > from` first — the federation
    /// bridge's resume path (§4 recovery across nodes).
    ///
    /// The live subscription is registered **before** the archive scan,
    /// so no window can fall in the gap between the two: `pump` commits a
    /// window's archive rows before delivering it, so any window the scan
    /// misses is queued live, and any window delivered live during the
    /// scan is also in the scan's snapshot. The overlap is harmless —
    /// replayed frames travel on `ctrl`, which drains ahead of the
    /// outboxes, so the duplicate's replayed copy arrives first and the
    /// bridge drops the live copy by close-order dedup.
    fn handle_subscribe_from(&mut self, key: usize, payload: &[u8]) {
        let (stream, from) = match wire::decode_subscribe_from(payload) {
            Ok(v) => v,
            Err(e) => return self.reply_error(key, &e.to_string()),
        };
        let id = match self.db.subscribe_stream(&stream) {
            Ok(SubscriptionId(id)) => id,
            Err(e) => return self.reply_error(key, &e.to_string()),
        };
        self.register_sub(key, id);
        if from == i64::MIN {
            return; // live-only: nothing to resume
        }
        self.metrics.fed_resubscribes.inc();
        match self.db.archived_windows(&stream, from) {
            Ok(outs) => {
                for out in &outs {
                    self.metrics
                        .fed_replayed_rows
                        .add(out.relation.len() as u64);
                    self.enqueue_ctrl(
                        key,
                        &Frame::new(FrameType::WindowResult, wire::encode_window_result(id, out)),
                    );
                }
                self.metrics.fed_replayed_windows.add(outs.len() as u64);
            }
            Err(e) => {
                // The subscription registered but history is unavailable:
                // fail loudly so the bridge retries instead of silently
                // skipping windows. Closing reaps the subscription.
                self.reply_error(key, &e.to_string());
                if let Some(conn) = self.conns.get_mut(&key) {
                    conn.closing = true;
                }
            }
        }
    }

    fn handle_ingest(&mut self, key: usize, payload: &[u8]) {
        let (stream, rows) = match wire::decode_ingest(payload) {
            Ok(v) => v,
            Err(e) => return self.reply_error(key, &e.to_string()),
        };
        let n = rows.len() as i64;
        let reply = match self.db.ingest_batch(&stream, rows) {
            Ok(()) => ack("ingested", &stream, n),
            Err(e) => Frame::new(FrameType::Error, wire::encode_error(&e.to_string())),
        };
        self.enqueue_ctrl(key, &reply);
    }

    fn handle_heartbeat(&mut self, key: usize, payload: &[u8]) {
        let (stream, ts) = match wire::decode_heartbeat(payload) {
            Ok(v) => v,
            Err(e) => return self.reply_error(key, &e.to_string()),
        };
        let reply = match self.db.heartbeat(&stream, ts) {
            Ok(()) => Frame::new(FrameType::Heartbeat, wire::encode_heartbeat(&stream, ts)),
            Err(e) => Frame::new(FrameType::Error, wire::encode_error(&e.to_string())),
        };
        self.enqueue_ctrl(key, &reply);
    }

    fn reply_error(&mut self, key: usize, msg: &str) {
        self.enqueue_ctrl(key, &Frame::new(FrameType::Error, wire::encode_error(msg)));
    }

    /// Drain every subscription's engine queue into its outbox,
    /// serializing each distinct window **once**.
    ///
    /// All queues are drained under one engine lock acquisition
    /// ([`Db::poll_shared_many`]) and the engine offers each window to a
    /// fan-out group's members under one acquisition too — so within a
    /// sweep a window appears on all of its subscriptions or none, and
    /// the identity cache (keyed by the shared allocation's address,
    /// pinned live for the sweep) makes `net.fanout.encodes` count
    /// windows, not windows × subscribers.
    fn sweep_deliveries(&mut self) {
        if self.conns.is_empty() {
            return;
        }
        let routes: Vec<(usize, u64)> = self
            .conns
            .iter()
            .flat_map(|(key, c)| c.subs.iter().map(move |&s| (*key, s)))
            .collect();
        if routes.is_empty() {
            return;
        }
        let ids: Vec<SubscriptionId> = routes.iter().map(|&(_, s)| SubscriptionId(s)).collect();
        let drained = self.db.poll_shared_many(&ids);
        // Cache key: address of the shared window allocation. Holding
        // the Arc in the value pins the address, so a key can never be
        // reused for a different window within this sweep.
        #[allow(clippy::type_complexity)]
        let mut cache: HashMap<*const CqOutput, (Arc<CqOutput>, Arc<Vec<u8>>)> = HashMap::new();
        let mut outbox_drops = 0u64;
        let mut oversized = 0u64;
        for ((key, sub), outs) in routes.into_iter().zip(drained) {
            if outs.is_empty() {
                continue;
            }
            let Some(conn) = self.conns.get_mut(&key) else {
                // Connection died between snapshot and drain: drained
                // windows can no longer be delivered.
                self.metrics.delivery_lost.add(outs.len() as u64);
                continue;
            };
            let Some(outbox) = conn.outboxes.get_mut(&sub) else {
                self.metrics.delivery_lost.add(outs.len() as u64);
                continue;
            };
            for out in outs {
                let body = match cache.entry(Arc::as_ptr(&out)) {
                    std::collections::hash_map::Entry::Occupied(e) => e.get().1.clone(),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        self.metrics.fanout_encodes.inc();
                        let body = Arc::new(wire::encode_window_body(&out));
                        e.insert((out.clone(), body.clone()));
                        body
                    }
                };
                if body.len() as u64 + 10 > MAX_FRAME_LEN as u64 {
                    // Unencodable frame; the window is gone either way.
                    oversized += 1;
                    continue;
                }
                outbox_drops += outbox.offer(OutFrame { sub, body });
            }
        }
        self.metrics.outbox_drops.add(outbox_drops);
        self.metrics.delivery_lost.add(oversized);
    }

    /// Flush pending output on every connection that has any.
    fn flush_all(&mut self) {
        let keys: Vec<usize> = self
            .conns
            .iter()
            .filter(|(_, c)| c.has_output() || c.closing)
            .map(|(k, _)| *k)
            .collect();
        for key in keys {
            if !self.pump_writes(key) {
                self.close_conn(key);
            } else if let Some(conn) = self.conns.get(&key) {
                if conn.closing && !conn.has_output() {
                    // Everything owed (error report, goodbye ack) is on
                    // the wire: orderly close.
                    self.close_conn(key);
                }
            }
        }
    }

    /// Write as much pending output as the socket accepts. Returns false
    /// when the connection must die abruptly.
    fn pump_writes(&mut self, key: usize) -> bool {
        loop {
            let Some(conn) = self.conns.get_mut(&key) else {
                return true;
            };
            if conn.wpos == conn.wbuf.len() {
                if conn.inflight_window {
                    self.metrics.windows_sent.inc();
                }
                conn.wbuf.clear();
                conn.wpos = 0;
                conn.inflight_window = false;
                if !conn.materialize_next(&self.metrics) {
                    // Nothing left to send: drop write interest.
                    if conn.want_write {
                        conn.want_write = false;
                        let _ = self.poller.modify(&conn.sock, Event::readable(key));
                    }
                    conn.stalled_since = None;
                    return true;
                }
            }
            match conn.sock.write(&conn.wbuf[conn.wpos..]) {
                Ok(0) => return false,
                Ok(n) => {
                    conn.wpos += n;
                    conn.stalled_since = None;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    // Kernel buffer full: ask for writability, start (or
                    // keep) the stall clock.
                    if !conn.want_write {
                        conn.want_write = true;
                        let _ = self.poller.modify(&conn.sock, Event::all(key));
                    }
                    conn.stalled_since.get_or_insert_with(Instant::now);
                    return true;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }

    /// Enforce the idle (half-open) and write-stall deadlines.
    fn reap_deadlines(&mut self) {
        let now = Instant::now();
        let mut idle: Vec<usize> = Vec::new();
        let mut stalled: Vec<usize> = Vec::new();
        for (key, conn) in &self.conns {
            if let Some(deadline) = self.opts.read_timeout {
                // A connection owning subscriptions sits legitimately
                // silent while results are pushed; only sub-less
                // connections are half-open candidates.
                if conn.subs.is_empty()
                    && !conn.closing
                    && now.duration_since(conn.last_activity) >= deadline
                {
                    idle.push(*key);
                    continue;
                }
            }
            if let Some(since) = conn.stalled_since {
                if now.duration_since(since) >= self.opts.write_timeout {
                    stalled.push(*key);
                }
            }
        }
        for key in idle {
            self.metrics.idle_reaped.inc();
            self.close_conn(key);
        }
        for key in stalled {
            self.close_conn(key);
        }
    }

    /// Unsubscribe everything this connection owns, accounting every
    /// window that was drained from the engine but never fully written:
    /// outbox residue, the half-written in-flight frame, and whatever
    /// the engine still held for these subscriptions.
    fn reap_subs(&mut self, key: usize) {
        let Some(conn) = self.conns.get_mut(&key) else {
            return;
        };
        let mut lost = 0u64;
        if conn.inflight_window {
            // A fully-written window frame reached the kernel (sent);
            // a half-written one did not (lost).
            if conn.wpos < conn.wbuf.len() {
                lost += 1;
            } else {
                self.metrics.windows_sent.inc();
            }
            conn.wbuf.clear();
            conn.wpos = 0;
            conn.inflight_window = false;
        }
        for (_, mut outbox) in conn.outboxes.drain() {
            lost += outbox.pending() as u64;
            outbox.drain();
        }
        let subs = std::mem::take(&mut conn.subs);
        for id in subs {
            // Windows still queued engine-side were routed to this
            // subscriber and will now never be delivered.
            if let Ok(outs) = self.db.poll_shared(SubscriptionId(id)) {
                lost += outs.len() as u64;
            }
            let _ = self.db.unsubscribe(SubscriptionId(id));
        }
        self.metrics.delivery_lost.add(lost);
    }

    fn close_conn(&mut self, key: usize) {
        self.reap_subs(key);
        let Some(conn) = self.conns.remove(&key) else {
            return;
        };
        let _ = self.poller.delete(&conn.sock);
        let _ = conn.sock.shutdown(Shutdown::Both);
        self.metrics.connections.add(-1);
        // Per-connection instruments die with the connection; the
        // aggregate `net.*` counters and the connection gauge live on.
        self.registry.remove_prefix(&conn.conn_prefix);
    }
}

impl Conn {
    fn has_output(&self) -> bool {
        self.wpos < self.wbuf.len()
            || !self.ctrl.is_empty()
            || self.outboxes.values().any(|o| o.pending() > 0)
    }

    /// Load the next pending frame into `wbuf`. Control frames first
    /// (they are replies and subscription acks), then one window frame
    /// per subscription in registration order. Returns false when there
    /// is nothing to send.
    fn materialize_next(&mut self, metrics: &NetMetrics) -> bool {
        if let Some(bytes) = self.ctrl.pop_front() {
            self.wbuf = bytes;
            return true;
        }
        for &sub in &self.subs {
            let Some(outbox) = self.outboxes.get_mut(&sub) else {
                continue;
            };
            if let Some(frame) = outbox.pop() {
                // [len u32][ver][ty][sub u64][body]; len counts
                // everything after itself. The body bytes are the shared
                // fan-out allocation — composed here, never re-encoded.
                let len = (2 + 8 + frame.body.len()) as u32;
                self.wbuf.reserve(4 + len as usize);
                self.wbuf.extend_from_slice(&len.to_le_bytes());
                self.wbuf.push(PROTOCOL_VERSION);
                self.wbuf.push(FrameType::WindowResult as u8);
                self.wbuf.extend_from_slice(&frame.sub.to_le_bytes());
                self.wbuf.extend_from_slice(&frame.body);
                self.inflight_window = true;
                metrics.frames_out.inc();
                self.conn_out.inc();
                return true;
            }
        }
        false
    }
}

fn ack(tag: &str, detail: &str, n: i64) -> Frame {
    Frame::new(
        FrameType::Rows,
        wire::encode_rows(&wire::ack_relation(tag, detail, n)),
    )
}
