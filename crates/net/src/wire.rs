//! Per-frame payload encodings.
//!
//! Payloads reuse the storage layer's codec ([`streamrel_storage::codec`])
//! so values, rows and schemas have exactly one binary representation in
//! the system — what the WAL writes is what the wire carries.
//!
//! | frame          | payload                                            |
//! |----------------|----------------------------------------------------|
//! | `Query`        | `str` SQL                                          |
//! | `Rows`         | relation                                           |
//! | `Subscribed`   | `u64` subscription id                              |
//! | `WindowResult` | `u64` subscription id, `i64` close, relation       |
//! | `Ingest`       | `str` stream, `u32` row count, rows                |
//! | `Heartbeat`    | `str` stream, `i64` event time (µs)                |
//! | `Attach`       | `u64` primary subscription id                      |
//! | `SubscribeFrom`| `str` stream, `i64` replay-after close (µs)        |
//! | `Error`        | `str` message                                      |
//! | `Goodbye`      | (empty)                                            |
//! | `Stats`        | (empty)                                            |
//! | `StatsResult`  | relation (the `streamrel_metrics` virtual relation)|
//!
//! where `relation` = schema, `u32` row count, rows.

use std::sync::Arc;

use streamrel_cq::CqOutput;
use streamrel_storage::codec::{
    decode_row, decode_schema, encode_row, encode_schema, put_i64, put_str, put_u32, put_u64,
    Reader,
};
use streamrel_types::{Column, DataType, Error, Relation, Result, Row, Schema, Timestamp, Value};

// ---- relation -------------------------------------------------------------

/// Append a relation (schema + rows) to `buf`.
pub fn encode_relation(buf: &mut Vec<u8>, rel: &Relation) {
    encode_schema(buf, rel.schema());
    put_u32(buf, rel.len() as u32);
    for row in rel.rows() {
        encode_row(buf, row);
    }
}

/// Decode a relation.
pub fn decode_relation(r: &mut Reader<'_>) -> Result<Relation> {
    let schema = Arc::new(decode_schema(r)?);
    let n = r.u32()? as usize;
    if n > r.remaining() {
        return Err(Error::storage(format!("implausible relation size {n}")));
    }
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        rows.push(decode_row(r)?);
    }
    Ok(Relation::new(schema, rows))
}

// ---- request payloads -----------------------------------------------------

/// `Query` payload.
pub fn encode_query(sql: &str) -> Vec<u8> {
    let mut buf = Vec::with_capacity(sql.len() + 4);
    put_str(&mut buf, sql);
    buf
}

/// Decode a `Query` payload.
pub fn decode_query(payload: &[u8]) -> Result<String> {
    whole(payload, |r| r.str())
}

/// `Ingest` payload.
pub fn encode_ingest(stream: &str, rows: &[Row]) -> Vec<u8> {
    let mut buf = Vec::new();
    put_str(&mut buf, stream);
    put_u32(&mut buf, rows.len() as u32);
    for row in rows {
        encode_row(&mut buf, row);
    }
    buf
}

/// Decode an `Ingest` payload into (stream, rows).
pub fn decode_ingest(payload: &[u8]) -> Result<(String, Vec<Row>)> {
    whole(payload, |r| {
        let stream = r.str()?;
        let n = r.u32()? as usize;
        if n > r.remaining() {
            return Err(Error::storage(format!("implausible batch size {n}")));
        }
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            rows.push(decode_row(r)?);
        }
        Ok((stream, rows))
    })
}

/// `Heartbeat` payload.
pub fn encode_heartbeat(stream: &str, ts: Timestamp) -> Vec<u8> {
    let mut buf = Vec::new();
    put_str(&mut buf, stream);
    put_i64(&mut buf, ts);
    buf
}

/// Decode a `Heartbeat` payload into (stream, event time).
pub fn decode_heartbeat(payload: &[u8]) -> Result<(String, Timestamp)> {
    whole(payload, |r| Ok((r.str()?, r.i64()?)))
}

// ---- response payloads ----------------------------------------------------

/// `Rows` payload.
pub fn encode_rows(rel: &Relation) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_relation(&mut buf, rel);
    buf
}

/// Decode a `Rows` payload.
pub fn decode_rows(payload: &[u8]) -> Result<Relation> {
    whole(payload, decode_relation)
}

/// `Subscribed` payload.
pub fn encode_subscribed(sub: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8);
    put_u64(&mut buf, sub);
    buf
}

/// Decode a `Subscribed` payload.
pub fn decode_subscribed(payload: &[u8]) -> Result<u64> {
    whole(payload, |r| r.u64())
}

/// `WindowResult` payload.
pub fn encode_window_result(sub: u64, out: &CqOutput) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, sub);
    buf.extend_from_slice(&encode_window_body(out));
    buf
}

/// The subscriber-independent tail of a `WindowResult` payload: close
/// time + relation. With N subscribers on one CQ the server encodes
/// this **once** per closed window, reference-counts the bytes, and
/// prepends only the 8-byte subscription id per receiver — delivery
/// scales with subscribers, serialization with windows (the fan-out
/// path; `net.fanout.encodes` counts calls to this function).
pub fn encode_window_body(out: &CqOutput) -> Vec<u8> {
    let mut buf = Vec::new();
    put_i64(&mut buf, out.close);
    encode_relation(&mut buf, &out.relation);
    buf
}

/// Decode a `WindowResult` payload into (subscription id, output).
pub fn decode_window_result(payload: &[u8]) -> Result<(u64, CqOutput)> {
    whole(payload, |r| {
        let sub = r.u64()?;
        let close = r.i64()?;
        let relation = decode_relation(r)?;
        Ok((sub, CqOutput { close, relation }))
    })
}

/// `Attach` payload: the primary subscription to join.
pub fn encode_attach(primary: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8);
    put_u64(&mut buf, primary);
    buf
}

/// Decode an `Attach` payload.
pub fn decode_attach(payload: &[u8]) -> Result<u64> {
    whole(payload, |r| r.u64())
}

/// `SubscribeFrom` payload: subscribe to a derived stream's windows,
/// replaying archived windows with `close > from` before live delivery.
/// `from == i64::MIN` requests live-only (nothing to resume).
pub fn encode_subscribe_from(stream: &str, from: Timestamp) -> Vec<u8> {
    let mut buf = Vec::new();
    put_str(&mut buf, stream);
    put_i64(&mut buf, from);
    buf
}

/// Decode a `SubscribeFrom` payload into (stream, replay-after close).
pub fn decode_subscribe_from(payload: &[u8]) -> Result<(String, Timestamp)> {
    whole(payload, |r| Ok((r.str()?, r.i64()?)))
}

/// `Error` payload.
pub fn encode_error(msg: &str) -> Vec<u8> {
    let mut buf = Vec::new();
    put_str(&mut buf, msg);
    buf
}

/// Decode an `Error` payload.
pub fn decode_error(payload: &[u8]) -> Result<String> {
    whole(payload, |r| r.str())
}

// ---- statement acks -------------------------------------------------------

/// Non-row statement results (DDL, DML, ingest) travel as a one-row
/// `Rows` relation with this fixed shape, so the protocol needs no extra
/// frame types: `(tag text, detail text, n bigint)`.
pub fn ack_relation(tag: &str, detail: &str, n: i64) -> Relation {
    let schema = Arc::new(Schema::new_unchecked(vec![
        Column::new("tag", DataType::Text),
        Column::new("detail", DataType::Text),
        Column::new("n", DataType::Int),
    ]));
    Relation::new(
        schema,
        vec![vec![Value::text(tag), Value::text(detail), Value::Int(n)]],
    )
}

/// Parse an ack relation back into `(tag, detail, n)`; `None` if the
/// relation is a genuine result set rather than an ack.
pub fn parse_ack(rel: &Relation) -> Option<(String, String, i64)> {
    let cols = rel.schema().columns();
    if cols.len() != 3 || cols[0].name != "tag" || cols[1].name != "detail" || cols[2].name != "n" {
        return None;
    }
    let row = rel.rows().first()?;
    match (&row[0], &row[1], &row[2]) {
        (Value::Text(tag), Value::Text(detail), Value::Int(n)) => {
            Some((tag.to_string(), detail.to_string(), *n))
        }
        _ => None,
    }
}

/// Run a decoder over the full payload, rejecting trailing garbage.
fn whole<T>(payload: &[u8], f: impl FnOnce(&mut Reader<'_>) -> Result<T>) -> Result<T> {
    let mut r = Reader::new(payload);
    let v = f(&mut r)?;
    if r.remaining() != 0 {
        return Err(Error::storage(format!(
            "{} trailing bytes after payload",
            r.remaining()
        )));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamrel_types::{Column, DataType, Schema, Value};

    fn rel() -> Relation {
        let schema = Arc::new(
            Schema::new(vec![
                Column::new("url", DataType::Text),
                Column::new("scnt", DataType::Int),
            ])
            .unwrap(),
        );
        Relation::new(
            schema,
            vec![
                vec![Value::text("/home"), Value::Int(3)],
                vec![Value::Null, Value::Int(0)],
            ],
        )
    }

    #[test]
    fn relation_round_trip() {
        let rel = rel();
        let payload = encode_rows(&rel);
        let got = decode_rows(&payload).unwrap();
        assert_eq!(got.rows(), rel.rows());
        assert_eq!(got.schema().len(), 2);
    }

    #[test]
    fn window_result_round_trip() {
        let out = CqOutput {
            close: 60_000_000,
            relation: rel(),
        };
        let (sub, got) = decode_window_result(&encode_window_result(7, &out)).unwrap();
        assert_eq!(sub, 7);
        assert_eq!(got.close, 60_000_000);
        assert_eq!(got.relation.rows(), out.relation.rows());
    }

    #[test]
    fn window_result_is_prefix_plus_shared_body() {
        // The fan-out path writes [sub id][shared body]; that
        // composition must be byte-identical to the monolithic encoding
        // the client decodes.
        let out = CqOutput {
            close: 60_000_000,
            relation: rel(),
        };
        let mut composed = encode_subscribed(7);
        composed.extend_from_slice(&encode_window_body(&out));
        assert_eq!(composed, encode_window_result(7, &out));
    }

    #[test]
    fn attach_round_trip() {
        assert_eq!(decode_attach(&encode_attach(99)).unwrap(), 99);
        let mut bad = encode_attach(99);
        bad.push(0);
        assert!(decode_attach(&bad).is_err());
    }

    #[test]
    fn subscribe_from_round_trip() {
        let (stream, from) =
            decode_subscribe_from(&encode_subscribe_from("urls_now", 60_000_000)).unwrap();
        assert_eq!(stream, "urls_now");
        assert_eq!(from, 60_000_000);
        // The live-only sentinel survives the codec.
        let (_, from) = decode_subscribe_from(&encode_subscribe_from("s", i64::MIN)).unwrap();
        assert_eq!(from, i64::MIN);
        let mut bad = encode_subscribe_from("s", 0);
        bad.push(0);
        assert!(decode_subscribe_from(&bad).is_err());
    }

    #[test]
    fn ingest_round_trip() {
        let rows = vec![vec![Value::Int(1)], vec![Value::Int(2)]];
        let (stream, got) = decode_ingest(&encode_ingest("events", &rows)).unwrap();
        assert_eq!(stream, "events");
        assert_eq!(got, rows);
    }

    #[test]
    fn heartbeat_and_error_round_trip() {
        assert_eq!(
            decode_heartbeat(&encode_heartbeat("s", 42)).unwrap(),
            ("s".to_string(), 42)
        );
        assert_eq!(decode_error(&encode_error("boom")).unwrap(), "boom");
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut payload = encode_subscribed(1);
        payload.push(0xAB);
        assert!(decode_subscribed(&payload).is_err());
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let payload = encode_rows(&rel());
        assert!(decode_rows(&payload[..payload.len() - 3]).is_err());
    }
}
