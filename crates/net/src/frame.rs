//! Length-prefixed binary framing.
//!
//! Every message on the wire is one frame:
//!
//! ```text
//! +----------------+-----------+--------+----------------+
//! | len: u32 LE    | ver: u8   | ty: u8 | payload        |
//! +----------------+-----------+--------+----------------+
//! ```
//!
//! `len` counts everything after itself (version + type + payload), so a
//! reader can skip unknown frames wholesale. The version byte is checked
//! on every frame: a mismatch is a hard protocol error, which keeps the
//! format honestly versioned instead of accidentally frozen.

use std::io::{self, Read, Write};

/// Wire-format version. Bump on any incompatible frame or payload change.
pub const PROTOCOL_VERSION: u8 = 1;

/// Upper bound on a single frame's length field. Anything larger is
/// treated as a malformed (or hostile) frame rather than an allocation.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// Frame discriminator. The numeric values are the wire encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameType {
    /// Client → server: one SQL statement (snapshot or continuous).
    Query = 1,
    /// Server → client: a relation (snapshot results, statement acks).
    Rows = 2,
    /// Server → client: a continuous query was registered.
    Subscribed = 3,
    /// Server → client, unsolicited: a window closed for a subscription.
    WindowResult = 4,
    /// Client → server: a batch of tuples for one stream.
    Ingest = 5,
    /// Client → server: advance a stream's event time; echoed as the ack.
    Heartbeat = 6,
    /// Server → client: the request failed (payload: message).
    Error = 7,
    /// Either direction: orderly end of the connection.
    Goodbye = 8,
    /// Client → server: request a snapshot of the engine's metrics.
    Stats = 9,
    /// Server → client: the `streamrel_metrics` relation (same payload
    /// encoding as `Rows`, so the schema is byte-identical to a SELECT).
    StatsResult = 10,
}

impl FrameType {
    /// Decode a wire byte.
    pub fn from_u8(b: u8) -> Option<FrameType> {
        Some(match b {
            1 => FrameType::Query,
            2 => FrameType::Rows,
            3 => FrameType::Subscribed,
            4 => FrameType::WindowResult,
            5 => FrameType::Ingest,
            6 => FrameType::Heartbeat,
            7 => FrameType::Error,
            8 => FrameType::Goodbye,
            9 => FrameType::Stats,
            10 => FrameType::StatsResult,
            _ => return None,
        })
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the payload means.
    pub ty: FrameType,
    /// Opaque payload; see [`crate::wire`] for the per-type encodings.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Frame with a payload.
    pub fn new(ty: FrameType, payload: Vec<u8>) -> Frame {
        Frame { ty, payload }
    }

    /// Payload-less frame (Goodbye).
    pub fn bare(ty: FrameType) -> Frame {
        Frame::new(ty, Vec::new())
    }

    /// Serialize onto `w`. Does not flush.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let len = self.payload.len() as u64 + 2;
        if len > MAX_FRAME_LEN as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("frame of {len} bytes exceeds MAX_FRAME_LEN"),
            ));
        }
        w.write_all(&(len as u32).to_le_bytes())?;
        w.write_all(&[PROTOCOL_VERSION, self.ty as u8])?;
        w.write_all(&self.payload)
    }

    /// Read one frame. Returns `Ok(None)` on clean EOF at a frame
    /// boundary; mid-frame EOF, a bad version byte, an unknown type, or
    /// an implausible length are `InvalidData` errors.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<Option<Frame>> {
        let mut len_buf = [0u8; 4];
        if !read_exact_or_eof(r, &mut len_buf)? {
            return Ok(None);
        }
        let len = u32::from_le_bytes(len_buf);
        if !(2..=MAX_FRAME_LEN).contains(&len) {
            return Err(malformed(format!("implausible frame length {len}")));
        }
        let mut header = [0u8; 2];
        r.read_exact(&mut header)?;
        if header[0] != PROTOCOL_VERSION {
            return Err(malformed(format!(
                "protocol version {} (this build speaks {PROTOCOL_VERSION})",
                header[0]
            )));
        }
        let ty = FrameType::from_u8(header[1])
            .ok_or_else(|| malformed(format!("unknown frame type {}", header[1])))?;
        let mut payload = vec![0u8; len as usize - 2];
        r.read_exact(&mut payload)?;
        Ok(Some(Frame { ty, payload }))
    }
}

fn malformed(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// `read_exact`, except a clean EOF before the first byte yields
/// `Ok(false)` instead of an error.
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        Frame::new(FrameType::Query, b"select 1".to_vec())
            .write_to(&mut buf)
            .unwrap();
        Frame::bare(FrameType::Goodbye).write_to(&mut buf).unwrap();
        let mut r = &buf[..];
        let f1 = Frame::read_from(&mut r).unwrap().unwrap();
        assert_eq!(f1.ty, FrameType::Query);
        assert_eq!(f1.payload, b"select 1");
        let f2 = Frame::read_from(&mut r).unwrap().unwrap();
        assert_eq!(f2.ty, FrameType::Goodbye);
        assert!(f2.payload.is_empty());
        assert!(Frame::read_from(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn rejects_wrong_version() {
        let buf = [2u8, 0, 0, 0, 99, 1];
        let err = Frame::read_from(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("version 99"), "{err}");
    }

    #[test]
    fn rejects_unknown_type_and_huge_length() {
        let buf = [2u8, 0, 0, 0, PROTOCOL_VERSION, 200];
        assert!(Frame::read_from(&mut &buf[..]).is_err());
        let buf = u32::MAX.to_le_bytes();
        assert!(Frame::read_from(&mut &buf[..]).is_err());
    }

    #[test]
    fn mid_frame_eof_is_an_error() {
        let mut buf = Vec::new();
        Frame::new(FrameType::Rows, vec![7; 32])
            .write_to(&mut buf)
            .unwrap();
        buf.truncate(10);
        assert!(Frame::read_from(&mut &buf[..]).is_err());
    }
}
