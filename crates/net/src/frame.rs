//! Length-prefixed binary framing.
//!
//! Every message on the wire is one frame:
//!
//! ```text
//! +----------------+-----------+--------+----------------+
//! | len: u32 LE    | ver: u8   | ty: u8 | payload        |
//! +----------------+-----------+--------+----------------+
//! ```
//!
//! `len` counts everything after itself (version + type + payload), so a
//! reader can skip unknown frames wholesale. The version byte is checked
//! on every frame: a mismatch is a hard protocol error, which keeps the
//! format honestly versioned instead of accidentally frozen.

use std::io::{self, Read, Write};

/// Wire-format version. Bump on any incompatible frame or payload change.
/// v2: multiplexed subscriptions — the `Attach` frame joins an existing
/// subscription's fan-out group over any connection.
pub const PROTOCOL_VERSION: u8 = 2;

/// Upper bound on a single frame's length field. Anything larger is
/// treated as a malformed (or hostile) frame rather than an allocation.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// Frame discriminator. The numeric values are the wire encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameType {
    /// Client → server: one SQL statement (snapshot or continuous).
    Query = 1,
    /// Server → client: a relation (snapshot results, statement acks).
    Rows = 2,
    /// Server → client: a continuous query was registered.
    Subscribed = 3,
    /// Server → client, unsolicited: a window closed for a subscription.
    WindowResult = 4,
    /// Client → server: a batch of tuples for one stream.
    Ingest = 5,
    /// Client → server: advance a stream's event time; echoed as the ack.
    Heartbeat = 6,
    /// Server → client: the request failed (payload: message).
    Error = 7,
    /// Either direction: orderly end of the connection.
    Goodbye = 8,
    /// Client → server: request a snapshot of the engine's metrics.
    Stats = 9,
    /// Server → client: the `streamrel_metrics` relation (same payload
    /// encoding as `Rows`, so the schema is byte-identical to a SELECT).
    StatsResult = 10,
    /// Client → server: join an existing subscription's fan-out group
    /// (payload: the primary's `u64` id). Answered with `Subscribed`
    /// carrying a fresh id; window results for both ids are encoded from
    /// the same CQ output, serialized once.
    Attach = 11,
    /// Client → server: subscribe to a derived stream's window results,
    /// replaying archived windows with close strictly greater than the
    /// given position first (payload: `str` stream, `i64` from; `from ==
    /// i64::MIN` means live-only). The federation bridge's resume frame:
    /// answered with `Subscribed`, then the replayed `WindowResult`s in
    /// close order, then live windows. Additive — v2 peers that predate
    /// it never send it, so the version byte stays at 2.
    SubscribeFrom = 12,
}

impl FrameType {
    /// Decode a wire byte.
    pub fn from_u8(b: u8) -> Option<FrameType> {
        Some(match b {
            1 => FrameType::Query,
            2 => FrameType::Rows,
            3 => FrameType::Subscribed,
            4 => FrameType::WindowResult,
            5 => FrameType::Ingest,
            6 => FrameType::Heartbeat,
            7 => FrameType::Error,
            8 => FrameType::Goodbye,
            9 => FrameType::Stats,
            10 => FrameType::StatsResult,
            11 => FrameType::Attach,
            12 => FrameType::SubscribeFrom,
            _ => return None,
        })
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the payload means.
    pub ty: FrameType,
    /// Opaque payload; see [`crate::wire`] for the per-type encodings.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Frame with a payload.
    pub fn new(ty: FrameType, payload: Vec<u8>) -> Frame {
        Frame { ty, payload }
    }

    /// Payload-less frame (Goodbye).
    pub fn bare(ty: FrameType) -> Frame {
        Frame::new(ty, Vec::new())
    }

    /// Serialize onto `w`. Does not flush.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let len = self.payload.len() as u64 + 2;
        if len > MAX_FRAME_LEN as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("frame of {len} bytes exceeds MAX_FRAME_LEN"),
            ));
        }
        w.write_all(&(len as u32).to_le_bytes())?;
        w.write_all(&[PROTOCOL_VERSION, self.ty as u8])?;
        w.write_all(&self.payload)
    }

    /// Read one frame. Returns `Ok(None)` on clean EOF at a frame
    /// boundary; mid-frame EOF, a bad version byte, an unknown type, or
    /// an implausible length are `InvalidData` errors.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<Option<Frame>> {
        let mut len_buf = [0u8; 4];
        if !read_exact_or_eof(r, &mut len_buf)? {
            return Ok(None);
        }
        let len = u32::from_le_bytes(len_buf);
        if !(2..=MAX_FRAME_LEN).contains(&len) {
            return Err(malformed(format!("implausible frame length {len}")));
        }
        let mut header = [0u8; 2];
        r.read_exact(&mut header)?;
        if header[0] != PROTOCOL_VERSION {
            return Err(malformed(format!(
                "protocol version {} (this build speaks {PROTOCOL_VERSION})",
                header[0]
            )));
        }
        let ty = FrameType::from_u8(header[1])
            .ok_or_else(|| malformed(format!("unknown frame type {}", header[1])))?;
        let mut payload = vec![0u8; len as usize - 2];
        r.read_exact(&mut payload)?;
        Ok(Some(Frame { ty, payload }))
    }
}

/// Incremental, resumable frame decoder.
///
/// [`Frame::read_from`] assumes it owns the stream until a frame
/// completes: any `WouldBlock`/`TimedOut` mid-frame loses the bytes
/// already consumed and permanently desyncs the connection. This decoder
/// is the fix — bytes are buffered as they arrive ([`FrameDecoder::extend`]
/// or [`FrameDecoder::read_frame`]) and a frame is produced only once it
/// is complete, so a read that dies with a timeout (or `WouldBlock`, on
/// the nonblocking reactor path) resumes exactly where it stopped.
///
/// Validation is eager: an implausible length, wrong version byte, or
/// unknown frame type is reported as soon as those bytes are buffered,
/// before the (possibly enormous) payload is waited for.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted opportunistically.
    start: usize,
}

impl FrameDecoder {
    /// Empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Buffer freshly received bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing: everything before `start` is dead.
        if self.start > 0 && (self.start == self.buf.len() || self.start >= 4096) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded into a frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// True when a frame is partially buffered — the peer has sent a
    /// length prefix (or part of one) whose frame has not completed yet.
    pub fn mid_frame(&self) -> bool {
        self.buffered() > 0
    }

    /// Decode the next complete frame out of the buffer. `Ok(None)`
    /// means more bytes are needed; errors mean the stream is corrupt
    /// (same taxonomy as [`Frame::read_from`]).
    pub fn next_frame(&mut self) -> io::Result<Option<Frame>> {
        let avail = self.buffered();
        if avail < 4 {
            return Ok(None);
        }
        let at = |i: usize| self.buf[self.start + i];
        let len = u32::from_le_bytes([at(0), at(1), at(2), at(3)]);
        if !(2..=MAX_FRAME_LEN).contains(&len) {
            return Err(malformed(format!("implausible frame length {len}")));
        }
        if avail >= 5 && at(4) != PROTOCOL_VERSION {
            return Err(malformed(format!(
                "protocol version {} (this build speaks {PROTOCOL_VERSION})",
                at(4)
            )));
        }
        if avail >= 6 {
            FrameType::from_u8(at(5))
                .ok_or_else(|| malformed(format!("unknown frame type {}", at(5))))?;
        }
        let total = 4 + len as usize;
        if avail < total {
            return Ok(None);
        }
        // `len >= 2` puts the type byte inside a complete frame, so this
        // re-parse cannot fail where the eager check above passed.
        let ty = FrameType::from_u8(at(5))
            .ok_or_else(|| malformed(format!("unknown frame type {}", at(5))))?;
        let payload = self.buf[self.start + 6..self.start + total].to_vec();
        self.start += total;
        Ok(Some(Frame { ty, payload }))
    }

    /// Read from `r` until one frame completes. `Ok(None)` is a clean
    /// EOF at a frame boundary; EOF mid-frame is an error. A
    /// `WouldBlock`/`TimedOut`/`Interrupted`-free error propagates, and —
    /// the point of this type — so do `WouldBlock` and `TimedOut`, with
    /// every byte already received still buffered: call again to resume.
    pub fn read_frame<R: Read>(&mut self, r: &mut R) -> io::Result<Option<Frame>> {
        loop {
            if let Some(frame) = self.next_frame()? {
                return Ok(Some(frame));
            }
            let mut chunk = [0u8; 8192];
            match r.read(&mut chunk) {
                Ok(0) if self.mid_frame() => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "eof mid-frame",
                    ))
                }
                Ok(0) => return Ok(None),
                Ok(n) => self.extend(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

fn malformed(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// `read_exact`, except a clean EOF before the first byte yields
/// `Ok(false)` instead of an error.
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        Frame::new(FrameType::Query, b"select 1".to_vec())
            .write_to(&mut buf)
            .unwrap();
        Frame::bare(FrameType::Goodbye).write_to(&mut buf).unwrap();
        let mut r = &buf[..];
        let f1 = Frame::read_from(&mut r).unwrap().unwrap();
        assert_eq!(f1.ty, FrameType::Query);
        assert_eq!(f1.payload, b"select 1");
        let f2 = Frame::read_from(&mut r).unwrap().unwrap();
        assert_eq!(f2.ty, FrameType::Goodbye);
        assert!(f2.payload.is_empty());
        assert!(Frame::read_from(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn rejects_wrong_version() {
        let buf = [2u8, 0, 0, 0, 99, 1];
        let err = Frame::read_from(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("version 99"), "{err}");
    }

    #[test]
    fn rejects_unknown_type_and_huge_length() {
        let buf = [2u8, 0, 0, 0, PROTOCOL_VERSION, 200];
        assert!(Frame::read_from(&mut &buf[..]).is_err());
        let buf = u32::MAX.to_le_bytes();
        assert!(Frame::read_from(&mut &buf[..]).is_err());
    }

    #[test]
    fn mid_frame_eof_is_an_error() {
        let mut buf = Vec::new();
        Frame::new(FrameType::Rows, vec![7; 32])
            .write_to(&mut buf)
            .unwrap();
        buf.truncate(10);
        assert!(Frame::read_from(&mut &buf[..]).is_err());
    }

    #[test]
    fn decoder_assembles_frames_fed_one_byte_at_a_time() {
        let mut bytes = Vec::new();
        Frame::new(FrameType::Query, b"select 1".to_vec())
            .write_to(&mut bytes)
            .unwrap();
        Frame::bare(FrameType::Goodbye)
            .write_to(&mut bytes)
            .unwrap();
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in bytes {
            dec.extend(&[b]);
            while let Some(f) = dec.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].ty, FrameType::Query);
        assert_eq!(got[0].payload, b"select 1");
        assert_eq!(got[1].ty, FrameType::Goodbye);
        assert!(!dec.mid_frame(), "no bytes left over");
    }

    #[test]
    fn decoder_rejects_bad_header_before_payload_arrives() {
        let mut dec = FrameDecoder::new();
        // Length says 1 MiB payload follows, but the version byte is
        // already wrong: reject now, not a megabyte from now.
        let len = (1024 * 1024u32).to_le_bytes();
        dec.extend(&[len[0], len[1], len[2], len[3], 99]);
        let err = dec.next_frame().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("version 99"), "{err}");

        let mut dec = FrameDecoder::new();
        dec.extend(&u32::MAX.to_le_bytes());
        assert!(dec.next_frame().is_err(), "implausible length");

        let mut dec = FrameDecoder::new();
        dec.extend(&[8, 0, 0, 0, PROTOCOL_VERSION, 200]);
        assert!(dec.next_frame().is_err(), "unknown type");
    }

    /// A reader that yields one byte, then `WouldBlock`, alternately —
    /// the shape of a slow writer dribbling into a socket with a read
    /// timeout. The old `Frame::read_from` restarts from scratch after
    /// every timeout and desyncs; the decoder must resume.
    struct Dribble<'a> {
        bytes: &'a [u8],
        pos: usize,
        starve: bool,
    }

    impl Read for Dribble<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.starve = !self.starve;
            if self.starve {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "timeout tick"));
            }
            if self.pos == self.bytes.len() {
                return Ok(0);
            }
            buf[0] = self.bytes[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn decoder_resumes_across_read_timeouts_without_desync() {
        let mut bytes = Vec::new();
        Frame::new(FrameType::Query, b"select 42".to_vec())
            .write_to(&mut bytes)
            .unwrap();
        Frame::new(FrameType::Heartbeat, vec![3; 16])
            .write_to(&mut bytes)
            .unwrap();
        let mut r = Dribble {
            bytes: &bytes,
            pos: 0,
            starve: false,
        };
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        let mut timeouts = 0;
        while got.len() < 2 {
            match dec.read_frame(&mut r) {
                Ok(Some(f)) => got.push(f),
                Ok(None) => panic!("unexpected EOF"),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => timeouts += 1,
                Err(e) => panic!("{e}"),
            }
        }
        assert!(timeouts >= bytes.len(), "every byte cost one timeout tick");
        assert_eq!(got[0].payload, b"select 42");
        assert_eq!(got[1].ty, FrameType::Heartbeat);
        assert_eq!(got[1].payload, vec![3; 16]);
        // Clean EOF at the boundary after both frames.
        loop {
            match dec.read_frame(&mut r) {
                Ok(None) => break,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                other => panic!("expected clean EOF, got {other:?}"),
            }
        }
    }
}
