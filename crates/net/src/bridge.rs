//! Subscription→ingest bridge: a remote node's derived stream as a
//! local source (the paper's network-effect thesis, §1/§4).
//!
//! A [`Bridge`] owns one background thread that keeps one link alive:
//! connect to the serving node, `SubscribeFrom{stream, last_applied}`,
//! and apply every window result to the local [`Db`] — either directly
//! (ingest the rows into a local base stream, then heartbeat the window
//! close so local windows close without local ingest), or through a
//! shared [`PartitionUnion`] when the local stream merges N partitioned
//! upstreams. When the link drops — server restart, `kill -9`, network
//! partition — the bridge reconnects with capped exponential backoff and
//! resumes from the last close it applied: the server replays the gap
//! from its Active-Table archive (`SubscribeFrom`), and the close-order
//! dedup here drops the overlap, so the local node converges to exactly
//! the uncrashed sequence.
//!
//! Observability (`fed.*`, on the **local** node's registry):
//! `fed.links` (bridges alive), `fed.link_up` (links currently
//! connected), `fed.reconnects` (links re-established after a drop — 0
//! on a healthy link), `fed.windows_in` / `fed.rows_in` (applied), and
//! `fed.lag` (window results received but not yet applied, summed over
//! bridges). The serving side counts `fed.resubscribes` /
//! `fed.replayed_windows` / `fed.replayed_rows`.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;
use streamrel_core::Db;
use streamrel_cq::{CqOutput, PartitionUnion};
use streamrel_obs::{Counter, Gauge};
use streamrel_types::{Result, Timestamp};

use crate::client::{Client, ClientOptions};

/// Bridge tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct BridgeOptions {
    /// First reconnect delay after a link drop.
    pub backoff_initial: Duration,
    /// Backoff cap (doubling stops here).
    pub backoff_max: Duration,
    /// Receive-poll granularity; bounds shutdown and lag-gauge latency.
    pub poll: Duration,
    /// Options for the underlying wire client.
    pub client: ClientOptions,
}

impl Default for BridgeOptions {
    fn default() -> BridgeOptions {
        BridgeOptions {
            backoff_initial: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
            poll: Duration::from_millis(50),
            client: ClientOptions::default(),
        }
    }
}

/// Merge state shared by the N bridges feeding one partitioned union:
/// the union itself plus the highest heartbeat already forwarded to the
/// local stream (so equal frontiers are not re-heartbeat). One unnamed
/// mutex — applying a drained window *while holding it* is what makes
/// the merged ingest order deterministic across racing links.
pub struct UnionIngest {
    union: PartitionUnion,
    heartbeat_sent: Option<Timestamp>,
}

impl UnionIngest {
    /// Shared merge state over `parts` partitions.
    pub fn new(parts: usize) -> Arc<Mutex<UnionIngest>> {
        Arc::new(Mutex::new(UnionIngest {
            union: PartitionUnion::new(parts),
            heartbeat_sent: None,
        }))
    }
}

/// Where a bridge's windows go.
enum BridgeSink {
    /// Ingest each window's rows into a local base stream and heartbeat
    /// its close.
    Ingest,
    /// Offer into a shared partition union; ingest whatever the merge
    /// releases, then heartbeat the union frontier.
    Union {
        shared: Arc<Mutex<UnionIngest>>,
        partition: usize,
    },
}

/// Counters the bridge thread and its owner share.
struct BridgeShared {
    shutdown: AtomicBool,
    /// Highest window close applied locally (i64::MIN before the first).
    last_applied: AtomicI64,
    windows_applied: AtomicU64,
    reconnects: AtomicU64,
    link_up: AtomicBool,
    /// Window application errors (local ingest/heartbeat failures).
    apply_errors: AtomicU64,
}

/// Bridge metric handles on the local registry.
struct BridgeMetrics {
    links: Arc<Gauge>,
    link_up: Arc<Gauge>,
    reconnects: Arc<Counter>,
    windows_in: Arc<Counter>,
    rows_in: Arc<Counter>,
    lag: Arc<Gauge>,
    apply_errors: Arc<Counter>,
}

/// A live subscription→ingest bridge. Dropping it stops the thread and
/// closes the link; the local stream simply stops advancing.
pub struct Bridge {
    shared: Arc<BridgeShared>,
    handle: Option<JoinHandle<()>>,
    links: Arc<Gauge>,
}

impl Bridge {
    /// Bridge `remote_stream` on the server at `addr` into the local
    /// base stream `local_stream`: every remote window's rows are
    /// ingested and its close is heartbeat so local windows close
    /// without local ingest.
    pub fn start(
        db: Arc<Db>,
        addr: impl Into<String>,
        remote_stream: impl Into<String>,
        local_stream: impl Into<String>,
        opts: BridgeOptions,
    ) -> Result<Bridge> {
        Bridge::spawn(
            db,
            addr.into(),
            remote_stream.into(),
            local_stream.into(),
            BridgeSink::Ingest,
            opts,
        )
    }

    /// Bridge one partition of a partitioned stream: windows are merged
    /// through `shared` (one [`UnionIngest`] serves all N partitions of
    /// `local_stream`) and only watermark-complete windows are ingested,
    /// in `(close, partition)` order.
    pub fn start_partition(
        db: Arc<Db>,
        addr: impl Into<String>,
        remote_stream: impl Into<String>,
        local_stream: impl Into<String>,
        shared: Arc<Mutex<UnionIngest>>,
        partition: usize,
        opts: BridgeOptions,
    ) -> Result<Bridge> {
        Bridge::spawn(
            db,
            addr.into(),
            remote_stream.into(),
            local_stream.into(),
            BridgeSink::Union { shared, partition },
            opts,
        )
    }

    fn spawn(
        db: Arc<Db>,
        addr: String,
        remote_stream: String,
        local_stream: String,
        sink: BridgeSink,
        opts: BridgeOptions,
    ) -> Result<Bridge> {
        let registry = db.engine().metrics().clone();
        let metrics = BridgeMetrics {
            links: registry.gauge("fed.links"),
            link_up: registry.gauge("fed.link_up"),
            reconnects: registry.counter("fed.reconnects"),
            windows_in: registry.counter("fed.windows_in"),
            rows_in: registry.counter("fed.rows_in"),
            lag: registry.gauge("fed.lag"),
            apply_errors: registry.counter("fed.apply_errors"),
        };
        metrics.links.add(1);
        let links = metrics.links.clone();
        let shared = Arc::new(BridgeShared {
            shutdown: AtomicBool::new(false),
            last_applied: AtomicI64::new(i64::MIN),
            windows_applied: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            link_up: AtomicBool::new(false),
            apply_errors: AtomicU64::new(0),
        });
        let worker = BridgeWorker {
            db,
            addr,
            remote_stream,
            local_stream,
            sink,
            opts,
            shared: shared.clone(),
            metrics,
        };
        let handle = std::thread::Builder::new()
            .name("streamrel-bridge".into())
            .spawn(move || worker.run())
            .map_err(|e| streamrel_types::Error::stream(format!("spawn bridge: {e}")))?;
        Ok(Bridge {
            shared,
            handle: Some(handle),
            links,
        })
    }

    /// Highest remote window close applied locally, if any yet.
    pub fn last_applied(&self) -> Option<Timestamp> {
        match self.shared.last_applied.load(Ordering::SeqCst) {
            i64::MIN => None,
            v => Some(v),
        }
    }

    /// Windows applied to the local node so far.
    pub fn windows_applied(&self) -> u64 {
        self.shared.windows_applied.load(Ordering::SeqCst)
    }

    /// Links re-established after a drop (0 on a healthy link).
    pub fn reconnects(&self) -> u64 {
        self.shared.reconnects.load(Ordering::SeqCst)
    }

    /// True while the link is connected and subscribed.
    pub fn is_up(&self) -> bool {
        self.shared.link_up.load(Ordering::SeqCst)
    }

    /// Window application failures (local ingest/heartbeat errors).
    pub fn apply_errors(&self) -> u64 {
        self.shared.apply_errors.load(Ordering::SeqCst)
    }

    /// Block until `windows_applied() >= n` or the deadline passes.
    /// Returns whether the target was reached (test/soak convenience).
    pub fn wait_for_windows(&self, n: u64, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while self.windows_applied() < n {
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        true
    }

    /// Block until the link is up (connected and subscribed) or the
    /// deadline passes. A fresh bridge subscribes live-only, so a driver
    /// that starts producing before the subscription lands would race
    /// it; wait here first.
    pub fn wait_until_up(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while !self.is_up() {
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        true
    }

    /// Stop the bridge thread and close the link.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        self.links.sub(1);
    }
}

impl Drop for Bridge {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop();
        }
    }
}

struct BridgeWorker {
    db: Arc<Db>,
    addr: String,
    remote_stream: String,
    local_stream: String,
    sink: BridgeSink,
    opts: BridgeOptions,
    shared: Arc<BridgeShared>,
    metrics: BridgeMetrics,
}

impl BridgeWorker {
    fn run(self) {
        let mut backoff = self.opts.backoff_initial;
        let mut ever_connected = false;
        let mut lag_reported: i64 = 0;
        while !self.shutting_down() {
            // One session: connect, resume, pump until the link dies.
            let session = self.connect_and_subscribe();
            let Some((client, stream)) = session else {
                self.sleep(backoff);
                backoff = (backoff * 2).min(self.opts.backoff_max);
                continue;
            };
            if ever_connected {
                self.shared.reconnects.fetch_add(1, Ordering::SeqCst);
                self.metrics.reconnects.inc();
            }
            ever_connected = true;
            backoff = self.opts.backoff_initial;
            self.shared.link_up.store(true, Ordering::SeqCst);
            self.metrics.link_up.add(1);
            while !self.shutting_down() {
                match stream.next_timeout(self.opts.poll) {
                    Some(out) => self.apply(out),
                    None => {
                        if stream.is_closed() {
                            break; // link lost: reconnect with backoff
                        }
                    }
                }
                let lag = stream.pending() as i64;
                self.metrics.lag.add(lag - lag_reported);
                lag_reported = lag;
            }
            self.shared.link_up.store(false, Ordering::SeqCst);
            self.metrics.link_up.sub(1);
            self.metrics.lag.add(-lag_reported);
            lag_reported = 0;
            drop(client);
            if !self.shutting_down() {
                self.sleep(backoff);
                backoff = (backoff * 2).min(self.opts.backoff_max);
            }
        }
        self.metrics.lag.add(-lag_reported);
    }

    /// One connection attempt: dial, then resume from the last applied
    /// close (live-only on the very first session — there is no gap to
    /// fill before anything was ever applied).
    fn connect_and_subscribe(&self) -> Option<(Client, crate::client::SubscriptionStream)> {
        let client = Client::connect_with(&self.addr, self.opts.client).ok()?;
        let from = self.shared.last_applied.load(Ordering::SeqCst);
        let stream = client.subscribe_from(&self.remote_stream, from).ok()?;
        Some((client, stream))
    }

    /// Apply one remote window locally. Replay overlap (a window the
    /// archive scan and live delivery both produced, or anything at or
    /// below the resume point) is dropped by close order.
    fn apply(&self, out: CqOutput) {
        if out.close <= self.shared.last_applied.load(Ordering::SeqCst) {
            return;
        }
        let close = out.close;
        let rows = out.relation.len() as u64;
        let res = match &self.sink {
            BridgeSink::Ingest => self.apply_direct(out),
            BridgeSink::Union { shared, partition } => self.apply_union(shared, *partition, out),
        };
        match res {
            Ok(()) => {
                self.shared.last_applied.store(close, Ordering::SeqCst);
                self.shared.windows_applied.fetch_add(1, Ordering::SeqCst);
                self.metrics.windows_in.inc();
                self.metrics.rows_in.add(rows);
            }
            Err(_) => {
                // Local application failed (e.g. the local stream is
                // gone). Count it; the close is NOT advanced, so a
                // reconnect replays the window.
                self.shared.apply_errors.fetch_add(1, Ordering::SeqCst);
                self.metrics.apply_errors.inc();
            }
        }
    }

    fn apply_direct(&self, out: CqOutput) -> Result<()> {
        if !out.relation.rows().is_empty() {
            self.db
                .ingest_batch(&self.local_stream, out.relation.rows().to_vec())?;
        }
        // The remote close is the local watermark: windows downstream of
        // the bridged stream close with zero local ingest.
        self.db.heartbeat(&self.local_stream, out.close)
    }

    fn apply_union(
        &self,
        shared: &Arc<Mutex<UnionIngest>>,
        partition: usize,
        out: CqOutput,
    ) -> Result<()> {
        // Ingest released windows while holding the union lock: racing
        // partition links serialize here, and release order — hence
        // local ingest order — is the deterministic (close, partition)
        // merge order no matter which link ran first.
        let mut merge = shared.lock();
        merge.union.offer(partition, out)?;
        let released = merge.union.drain_ready();
        for w in &released {
            if !w.relation.rows().is_empty() {
                self.db
                    .ingest_batch(&self.local_stream, w.relation.rows().to_vec())?;
            }
        }
        if let Some(frontier) = merge.union.frontier() {
            if merge.heartbeat_sent.is_none_or(|h| frontier > h) {
                self.db.heartbeat(&self.local_stream, frontier)?;
                merge.heartbeat_sent = Some(frontier);
            }
        }
        Ok(())
    }

    fn shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Backoff sleep that stays responsive to shutdown.
    fn sleep(&self, total: Duration) {
        let slice = Duration::from_millis(10);
        let deadline = std::time::Instant::now() + total;
        while std::time::Instant::now() < deadline && !self.shutting_down() {
            std::thread::sleep(slice.min(total));
        }
    }
}
