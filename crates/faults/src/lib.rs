//! Deterministic storage fault injection for streamrel.
//!
//! [`FaultIo`] implements the storage [`Io`] trait over a fully simulated
//! disk, with a seeded per-operation fault schedule:
//!
//! * **crash-at-op-N** — the Nth mutating I/O operation is interrupted
//!   mid-flight and the simulated disk image is *frozen*: synced bytes
//!   survive, a PRNG-chosen prefix of each file's unsynced suffix
//!   "happened to hit the platter", the rest is lost, and the torn region
//!   may take a bit flip. Every later operation fails — the process is
//!   dead. Reopening an engine over [`FaultIo::frozen_image`] is exactly
//!   a post-power-loss restart.
//! * **fsync `EIO`** — the Nth sync durably lands a PRNG prefix of the
//!   pending bytes, then errors. The durable state is indeterminate, so
//!   the WAL must poison itself (`Error::WalPoisoned`, fsyncgate).
//! * **short write** — the Nth append applies a PRNG prefix of the data
//!   to the OS cache, then errors.
//! * **disk full** — the Nth append fails with a simulated `ENOSPC`
//!   before any byte reaches the cache (the kernel rejected the write
//!   outright), exercising the WAL's poison-on-append-failure path.
//! * **corrupt read** — the Nth read returns the file with one PRNG bit
//!   flipped, a latent bad sector surfacing at open: recovery must
//!   truncate at the CRC break or surface a typed error, never panic.
//!   The flip is in the returned copy only; the platter is untouched.
//!
//! All randomness comes from one `StdRng` seeded by [`FaultPlan::seed`],
//! and the torture workload runs single-threaded, so a failing run is
//! reproducible from the printed `(seed, crash op)` pair alone. Injected
//! faults surface as `fault.injected.*` counters through the engine's
//! metrics registry via [`Io::bind_metrics`]. See DESIGN.md §10.

#![deny(unsafe_code)]

pub mod chaos;

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use streamrel_obs::{Counter, Registry};
use streamrel_storage::Io;
use streamrel_types::{Error, Result};

/// The seeded fault schedule for one [`FaultIo`] instance.
///
/// Operation indices count *mutating* operations only (`append`, `sync`,
/// `truncate`, `replace`), in execution order, starting at 0. Directory
/// creation never faults and never advances a counter. Reads advance a
/// *separate* read counter (so adding read faults to a plan never shifts
/// the mutating-op indices an existing sweep was tuned against), and an
/// op index maps to the same logical operation on every run with the
/// same workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// PRNG seed; every injected partial effect derives from it.
    pub seed: u64,
    /// Crash (freeze the disk image, fail everything after) at this
    /// mutating-op index.
    pub crash_at_op: Option<u64>,
    /// Inject an `EIO` on the Nth `sync` call (counting syncs only).
    pub sync_error_at_sync: Option<u64>,
    /// Short-write the Nth `append` call (counting appends only).
    pub short_write_at_append: Option<u64>,
    /// Fail the Nth `append` call (counting appends only) with a
    /// simulated `ENOSPC`; no byte reaches the cache.
    pub disk_full_at_append: Option<u64>,
    /// Flip one PRNG bit in the bytes returned by the Nth `read` call
    /// (counting reads only). Skipped silently if that read finds no
    /// data; the on-disk image is never modified.
    pub corrupt_read_at_read: Option<u64>,
    /// On crash, flip one bit in each file's torn (unsynced-but-kept)
    /// region, exercising the WAL's CRC tail scan.
    pub bit_flip_on_crash: bool,
}

impl FaultPlan {
    /// No faults: a plain deterministic in-memory disk.
    pub fn none(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            crash_at_op: None,
            sync_error_at_sync: None,
            short_write_at_append: None,
            disk_full_at_append: None,
            corrupt_read_at_read: None,
            bit_flip_on_crash: false,
        }
    }

    /// Crash at mutating-op index `op`.
    pub fn crash_at(seed: u64, op: u64) -> FaultPlan {
        FaultPlan {
            crash_at_op: Some(op),
            ..FaultPlan::none(seed)
        }
    }

    /// Fail the `n`th fsync with `EIO`.
    pub fn sync_error_at(seed: u64, n: u64) -> FaultPlan {
        FaultPlan {
            sync_error_at_sync: Some(n),
            ..FaultPlan::none(seed)
        }
    }

    /// Short-write the `n`th append.
    pub fn short_write_at(seed: u64, n: u64) -> FaultPlan {
        FaultPlan {
            short_write_at_append: Some(n),
            ..FaultPlan::none(seed)
        }
    }

    /// Fail the `n`th append with a simulated `ENOSPC`.
    pub fn disk_full_at(seed: u64, n: u64) -> FaultPlan {
        FaultPlan {
            disk_full_at_append: Some(n),
            ..FaultPlan::none(seed)
        }
    }

    /// Flip one bit in the bytes returned by the `n`th read.
    pub fn corrupt_read_at(seed: u64, n: u64) -> FaultPlan {
        FaultPlan {
            corrupt_read_at_read: Some(n),
            ..FaultPlan::none(seed)
        }
    }

    /// Enable a bit flip in the torn region on crash.
    pub fn with_bit_flip(mut self) -> FaultPlan {
        self.bit_flip_on_crash = true;
        self
    }
}

/// A frozen snapshot of the simulated disk: what a real disk would hold
/// after power loss. Reopen an engine over it via
/// [`FaultIo::from_image`], or dump it to a real directory for a CI
/// artifact.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiskImage {
    /// File contents keyed by simulated path.
    pub files: BTreeMap<PathBuf, Vec<u8>>,
    /// Directories that existed.
    pub dirs: BTreeSet<PathBuf>,
}

impl DiskImage {
    /// File names matching `needle` (sorted), with their byte lengths —
    /// e.g. `image.files_matching("wal-")` to assert which per-shard
    /// commit logs a crash left behind (DESIGN.md §13).
    pub fn files_matching(&self, needle: &str) -> Vec<(PathBuf, usize)> {
        self.files
            .iter()
            .filter(|(p, _)| p.to_string_lossy().contains(needle))
            .map(|(p, d)| (p.clone(), d.len()))
            .collect()
    }

    /// Write the image's files under `root` on the real filesystem
    /// (flattening simulated paths to file names), for artifact upload
    /// from a failing torture run.
    pub fn dump_to(&self, root: &Path) -> Result<()> {
        std::fs::create_dir_all(root)?;
        for (path, data) in &self.files {
            let flat: String = path
                .to_string_lossy()
                .chars()
                .map(|c| if c == '/' || c == '\\' { '_' } else { c })
                .collect();
            std::fs::write(root.join(flat.trim_start_matches('_')), data)?;
        }
        Ok(())
    }
}

/// Per-file simulated state: the whole byte range the process has
/// written (`data`) and how much of it is guaranteed on stable storage
/// (`durable`). The gap is the "OS page cache" — lost on crash except
/// for a PRNG-chosen prefix.
#[derive(Debug, Clone, Default)]
struct FileState {
    durable: usize,
    data: Vec<u8>,
}

#[derive(Debug)]
struct State {
    rng: StdRng,
    /// Mutating ops performed so far (also: the index of the next op).
    ops: u64,
    syncs: u64,
    appends: u64,
    /// Read ops performed so far; a separate schedule axis from `ops` so
    /// read faults never renumber mutating operations.
    reads: u64,
    crashed: bool,
    files: BTreeMap<PathBuf, FileState>,
    dirs: BTreeSet<PathBuf>,
}

/// `fault.injected.*` counter handles, bound on [`Io::bind_metrics`].
#[derive(Clone)]
struct FaultCounters {
    crashes: Arc<Counter>,
    sync_errors: Arc<Counter>,
    short_writes: Arc<Counter>,
    disk_full: Arc<Counter>,
    corrupt_reads: Arc<Counter>,
}

/// A deterministic fault-injecting [`Io`] over a simulated disk.
pub struct FaultIo {
    plan: FaultPlan,
    state: Mutex<State>,
    counters: Mutex<Option<FaultCounters>>,
}

impl FaultIo {
    /// An empty simulated disk under `plan`.
    pub fn new(plan: FaultPlan) -> Arc<FaultIo> {
        Arc::new(FaultIo {
            state: Mutex::new(State {
                rng: StdRng::seed_from_u64(plan.seed),
                ops: 0,
                syncs: 0,
                appends: 0,
                reads: 0,
                crashed: false,
                files: BTreeMap::new(),
                dirs: BTreeSet::new(),
            }),
            plan,
            counters: Mutex::new(None),
        })
    }

    /// Rebuild a simulated disk from a frozen image (everything in the
    /// image is durable — it already survived the crash).
    pub fn from_image(image: &DiskImage, plan: FaultPlan) -> Arc<FaultIo> {
        let io = FaultIo::new(plan);
        {
            let mut st = io.state.lock();
            st.dirs = image.dirs.clone();
            st.files = image
                .files
                .iter()
                .map(|(p, d)| {
                    (
                        p.clone(),
                        FileState {
                            durable: d.len(),
                            data: d.clone(),
                        },
                    )
                })
                .collect();
        }
        io
    }

    /// Mutating ops performed so far. Run the workload once without
    /// faults to learn the sweep range for crash-at-every-op.
    pub fn ops(&self) -> u64 {
        self.state.lock().ops
    }

    /// Has the simulated disk crashed (frozen)?
    pub fn crashed(&self) -> bool {
        self.state.lock().crashed
    }

    /// The current disk image. After a crash this is the frozen
    /// post-power-loss view; before one it is the durable + cached view
    /// (both useful: the latter models a clean process kill where the OS
    /// survives and the page cache is eventually written back).
    pub fn image(&self) -> DiskImage {
        let st = self.state.lock();
        DiskImage {
            files: st
                .files
                .iter()
                .map(|(p, f)| (p.clone(), f.data.clone()))
                .collect(),
            dirs: st.dirs.clone(),
        }
    }

    /// The frozen post-crash image. Errors if no crash was injected yet.
    pub fn frozen_image(&self) -> Result<DiskImage> {
        if !self.crashed() {
            return Err(Error::Io("simulated disk has not crashed".into()));
        }
        Ok(self.image())
    }

    fn counters(&self) -> Option<FaultCounters> {
        self.counters.lock().clone()
    }

    /// Freeze the image: apply cache loss (keep a PRNG prefix of each
    /// unsynced suffix), optionally flip a bit in each torn region, and
    /// mark the disk crashed.
    fn freeze(&self, st: &mut State) {
        for f in st.files.values_mut() {
            let unsynced = f.data.len() - f.durable;
            let kept = if unsynced > 0 {
                st.rng.gen_range(0..=unsynced)
            } else {
                0
            };
            f.data.truncate(f.durable + kept);
            if self.plan.bit_flip_on_crash && kept > 0 {
                let at = f.durable + st.rng.gen_range(0..kept);
                let bit = st.rng.gen_range(0..8u32);
                f.data[at] ^= 1 << bit;
            }
            f.durable = f.data.len();
        }
        st.crashed = true;
        if let Some(c) = self.counters() {
            c.crashes.inc();
        }
    }

    /// Entry guard for every mutating op: fail if already crashed, and
    /// report whether *this* op is the crash point.
    fn begin_op(&self, st: &mut State) -> Result<bool> {
        if st.crashed {
            return Err(Error::Io("simulated disk is crashed".into()));
        }
        let here = self.plan.crash_at_op == Some(st.ops);
        st.ops += 1;
        Ok(here)
    }

    fn file<'a>(st: &'a mut State, path: &Path) -> &'a mut FileState {
        st.files.entry(path.to_path_buf()).or_default()
    }
}

impl Io for FaultIo {
    fn create_dir_all(&self, path: &Path) -> Result<()> {
        let mut st = self.state.lock();
        if st.crashed {
            return Err(Error::Io("simulated disk is crashed".into()));
        }
        st.dirs.insert(path.to_path_buf());
        Ok(())
    }

    fn read(&self, path: &Path) -> Result<Option<Vec<u8>>> {
        let mut st = self.state.lock();
        if st.crashed {
            return Err(Error::Io("simulated disk is crashed".into()));
        }
        let corrupt_here = self.plan.corrupt_read_at_read == Some(st.reads);
        st.reads += 1;
        let mut data = st.files.get(path).map(|f| f.data.clone());
        if corrupt_here {
            // A latent bad sector: the copy handed to the caller differs
            // from the platter by one bit. An empty or absent file has no
            // sector to go bad, so the schedule entry fires into nothing.
            if let Some(bytes) = data.as_mut().filter(|b| !b.is_empty()) {
                let at = st.rng.gen_range(0..bytes.len());
                let bit = st.rng.gen_range(0..8u32);
                bytes[at] ^= 1 << bit;
                if let Some(c) = self.counters() {
                    c.corrupt_reads.inc();
                }
            }
        }
        Ok(data)
    }

    fn append(&self, path: &Path, data: &[u8]) -> Result<()> {
        let mut st = self.state.lock();
        let crash_here = self.begin_op(&mut st)?;
        st.appends += 1;
        if crash_here {
            // The write syscall was in flight: a prefix reaches the cache.
            let partial = st.rng.gen_range(0..=data.len());
            let part = data[..partial].to_vec();
            Self::file(&mut st, path).data.extend_from_slice(&part);
            self.freeze(&mut st);
            return Err(Error::Io(format!(
                "simulated crash during append (op {})",
                st.ops - 1
            )));
        }
        if self.plan.disk_full_at_append == Some(st.appends - 1) {
            // ENOSPC at the write syscall: the kernel rejects the whole
            // write up front, so unlike a short write nothing lands.
            if let Some(c) = self.counters() {
                c.disk_full.inc();
            }
            return Err(Error::Io(format!(
                "simulated disk full (ENOSPC): 0 of {} bytes written",
                data.len()
            )));
        }
        if self.plan.short_write_at_append == Some(st.appends - 1) {
            let partial = st.rng.gen_range(0..data.len().max(1));
            let part = data[..partial].to_vec();
            Self::file(&mut st, path).data.extend_from_slice(&part);
            if let Some(c) = self.counters() {
                c.short_writes.inc();
            }
            return Err(Error::Io(format!(
                "simulated short write ({partial} of {} bytes)",
                data.len()
            )));
        }
        Self::file(&mut st, path).data.extend_from_slice(data);
        Ok(())
    }

    fn sync(&self, path: &Path) -> Result<()> {
        let mut st = self.state.lock();
        let crash_here = self.begin_op(&mut st)?;
        st.syncs += 1;
        if crash_here {
            // fsync was in flight: some pending pages made it down.
            let f = Self::file(&mut st, path);
            let pending = f.data.len() - f.durable;
            let landed = if pending > 0 {
                st.rng.gen_range(0..=pending)
            } else {
                0
            };
            let f = Self::file(&mut st, path);
            f.durable += landed;
            self.freeze(&mut st);
            return Err(Error::Io(format!(
                "simulated crash during fsync (op {})",
                st.ops - 1
            )));
        }
        if self.plan.sync_error_at_sync == Some(st.syncs - 1) {
            // fsyncgate: the kernel wrote an unknown subset of the dirty
            // pages before reporting EIO, then marked them clean.
            let f = Self::file(&mut st, path);
            let pending = f.data.len() - f.durable;
            let landed = if pending > 0 {
                st.rng.gen_range(0..=pending)
            } else {
                0
            };
            let f = Self::file(&mut st, path);
            f.durable += landed;
            if let Some(c) = self.counters() {
                c.sync_errors.inc();
            }
            return Err(Error::Io("simulated fsync EIO".into()));
        }
        let f = Self::file(&mut st, path);
        f.durable = f.data.len();
        Ok(())
    }

    fn truncate(&self, path: &Path, len: u64) -> Result<()> {
        let mut st = self.state.lock();
        let crash_here = self.begin_op(&mut st)?;
        if crash_here {
            // Metadata op: it either committed or it did not.
            let applied = st.rng.gen_bool(0.5);
            if applied {
                let f = Self::file(&mut st, path);
                f.data.truncate(len as usize);
                f.durable = f.durable.min(f.data.len());
            }
            self.freeze(&mut st);
            return Err(Error::Io(format!(
                "simulated crash during truncate (op {})",
                st.ops - 1
            )));
        }
        let f = Self::file(&mut st, path);
        f.data.truncate(len as usize);
        // truncate is durable (StdIo syncs after set_len).
        f.durable = f.data.len();
        Ok(())
    }

    fn replace(&self, path: &Path, data: &[u8]) -> Result<()> {
        let mut st = self.state.lock();
        let crash_here = self.begin_op(&mut st)?;
        if crash_here {
            // Atomic rename: old or new contents, never a mix.
            let applied = st.rng.gen_bool(0.5);
            if applied {
                let f = Self::file(&mut st, path);
                f.data = data.to_vec();
                f.durable = data.len();
            }
            self.freeze(&mut st);
            return Err(Error::Io(format!(
                "simulated crash during replace (op {})",
                st.ops - 1
            )));
        }
        let f = Self::file(&mut st, path);
        f.data = data.to_vec();
        f.durable = data.len();
        Ok(())
    }

    fn bind_metrics(&self, registry: &Arc<Registry>) {
        *self.counters.lock() = Some(FaultCounters {
            crashes: registry.counter("fault.injected.crashes"),
            sync_errors: registry.counter("fault.injected.sync_errors"),
            short_writes: registry.counter("fault.injected.short_writes"),
            disk_full: registry.counter("fault.injected.disk_full"),
            corrupt_reads: registry.counter("fault.injected.corrupt_reads"),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn faultless_disk_behaves_like_a_filesystem() {
        let io = FaultIo::new(FaultPlan::none(1));
        io.create_dir_all(&p("/db")).unwrap();
        assert_eq!(io.read(&p("/db/wal")).unwrap(), None);
        io.append(&p("/db/wal"), b"abc").unwrap();
        io.append(&p("/db/wal"), b"def").unwrap();
        io.sync(&p("/db/wal")).unwrap();
        assert_eq!(io.read(&p("/db/wal")).unwrap().unwrap(), b"abcdef");
        io.truncate(&p("/db/wal"), 2).unwrap();
        assert_eq!(io.read(&p("/db/wal")).unwrap().unwrap(), b"ab");
        io.replace(&p("/db/ck"), b"snap").unwrap();
        assert_eq!(io.read(&p("/db/ck")).unwrap().unwrap(), b"snap");
        assert_eq!(io.ops(), 5);
        assert!(!io.crashed());
    }

    #[test]
    fn crash_freezes_synced_bytes_and_fails_everything_after() {
        // Crash on op index 2 (the second append).
        let io = FaultIo::new(FaultPlan::crash_at(7, 2));
        io.append(&p("/w"), b"AAAA").unwrap(); // op 0
        io.sync(&p("/w")).unwrap(); // op 1
        let err = io.append(&p("/w"), b"BBBB").unwrap_err(); // op 2: crash
        assert!(matches!(err, Error::Io(_)));
        assert!(io.crashed());
        assert!(io.append(&p("/w"), b"CCCC").is_err());
        assert!(io.read(&p("/w")).is_err());
        let img = io.frozen_image().unwrap();
        let data = &img.files[&p("/w")];
        // Synced prefix always survives; torn tail is a prefix of "BBBB".
        assert!(data.starts_with(b"AAAA"));
        assert!(data.len() <= 8);
    }

    #[test]
    fn crash_sweep_is_deterministic_for_a_seed() {
        let run = |seed| {
            let io = FaultIo::new(FaultPlan::crash_at(seed, 3));
            let _ = io.append(&p("/w"), b"0123456789");
            let _ = io.sync(&p("/w"));
            let _ = io.append(&p("/w"), b"abcdefghij");
            let _ = io.append(&p("/w"), b"KLMNOPQRST");
            io.image()
        };
        assert_eq!(run(42), run(42));
        // Different seeds tear at different offsets (overwhelmingly).
        let a = run(1).files[&p("/w")].clone();
        let same = (0..16).all(|s| run(s).files[&p("/w")] == a);
        assert!(!same, "tear offset should depend on the seed");
    }

    #[test]
    fn sync_error_leaves_durability_indeterminate() {
        let io = FaultIo::new(FaultPlan::sync_error_at(5, 1));
        io.append(&p("/w"), b"one").unwrap();
        io.sync(&p("/w")).unwrap(); // sync #0: fine
        io.append(&p("/w"), b"two").unwrap();
        let err = io.sync(&p("/w")).unwrap_err(); // sync #1: EIO
        assert!(matches!(err, Error::Io(m) if m.contains("EIO")));
        assert!(!io.crashed(), "an fsync error is not a crash");
        // The disk still works; durability of "two" is unknown until the
        // next successful sync.
        io.append(&p("/w"), b"three").unwrap();
        io.sync(&p("/w")).unwrap();
    }

    #[test]
    fn short_write_applies_a_strict_prefix() {
        let io = FaultIo::new(FaultPlan::short_write_at(9, 0));
        let err = io.append(&p("/w"), b"0123456789").unwrap_err();
        assert!(matches!(err, Error::Io(m) if m.contains("short write")));
        let img = io.image();
        let data = &img.files[&p("/w")];
        assert!(data.len() < 10, "short write must not complete");
        assert_eq!(&b"0123456789"[..data.len()], &data[..]);
    }

    #[test]
    fn from_image_round_trips() {
        let io = FaultIo::new(FaultPlan::crash_at(3, 1));
        io.append(&p("/w"), b"abc").unwrap();
        let _ = io.sync(&p("/w")); // op 1: crash
        let img = io.frozen_image().unwrap();
        let re = FaultIo::from_image(&img, FaultPlan::none(0));
        assert_eq!(re.image(), img);
        re.append(&p("/w"), b"!").unwrap();
        assert!(re.read(&p("/w")).unwrap().unwrap().ends_with(b"!"));
    }

    #[test]
    fn bit_flip_corrupts_only_the_torn_region() {
        // The synced prefix must survive every seed; only the unsynced
        // tail of the crashing append is eligible for the flip.
        for seed in 0..64 {
            let io = FaultIo::new(FaultPlan::crash_at(seed, 2).with_bit_flip());
            io.append(&p("/w"), b"SAFE").unwrap(); // op 0
            io.sync(&p("/w")).unwrap(); // op 1
            io.append(&p("/w"), b"tail-to-tear").unwrap_err(); // op 2
            let img = io.frozen_image().unwrap();
            assert!(img.files[&p("/w")].starts_with(b"SAFE"));
        }
    }

    #[test]
    fn disk_full_rejects_the_whole_write_and_the_disk_survives() {
        let io = FaultIo::new(FaultPlan::disk_full_at(3, 1));
        io.append(&p("/w"), b"first").unwrap(); // append #0
        let err = io.append(&p("/w"), b"second").unwrap_err(); // append #1
        assert!(matches!(err, Error::Io(m) if m.contains("ENOSPC")));
        assert!(!io.crashed(), "disk full is not a crash");
        // Nothing of the rejected write landed, and the disk keeps working
        // (the operator freed space).
        assert_eq!(io.read(&p("/w")).unwrap().unwrap(), b"first");
        io.append(&p("/w"), b"third").unwrap();
        assert_eq!(io.read(&p("/w")).unwrap().unwrap(), b"firstthird");
    }

    #[test]
    fn corrupt_read_flips_one_bit_in_the_copy_only() {
        let io = FaultIo::new(FaultPlan::corrupt_read_at(17, 0));
        io.append(&p("/w"), b"ABCDEFGH").unwrap();
        io.sync(&p("/w")).unwrap();
        let bad = io.read(&p("/w")).unwrap().unwrap(); // read #0: bad sector
        let diff: u32 = bad
            .iter()
            .zip(b"ABCDEFGH")
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1, "exactly one bit flips: {bad:?}");
        // The platter is untouched: the next read is pristine.
        assert_eq!(io.read(&p("/w")).unwrap().unwrap(), b"ABCDEFGH");
    }

    #[test]
    fn corrupt_read_of_a_missing_file_fires_into_nothing() {
        let io = FaultIo::new(FaultPlan::corrupt_read_at(5, 0));
        assert_eq!(io.read(&p("/absent")).unwrap(), None); // read #0
        io.append(&p("/w"), b"ok").unwrap();
        assert_eq!(io.read(&p("/w")).unwrap().unwrap(), b"ok");
    }

    #[test]
    fn read_faults_do_not_renumber_mutating_ops() {
        // The same workload, with and without read faults, crashes at the
        // same logical operation.
        let run = |plan: FaultPlan| {
            let io = FaultIo::new(plan);
            let _ = io.append(&p("/w"), b"one"); // op 0
            let _ = io.read(&p("/w"));
            let _ = io.sync(&p("/w")); // op 1
            let _ = io.read(&p("/w"));
            let _ = io.append(&p("/w"), b"two"); // op 2: crash
            io.crashed()
        };
        assert!(run(FaultPlan::crash_at(9, 2)));
        let mut both = FaultPlan::crash_at(9, 2);
        both.corrupt_read_at_read = Some(0);
        assert!(run(both), "read faults shifted the mutating-op index");
    }

    #[test]
    fn counters_register_and_count() {
        let io = FaultIo::new(FaultPlan::sync_error_at(5, 0));
        let reg = Arc::new(Registry::default());
        io.bind_metrics(&reg);
        io.append(&p("/w"), b"x").unwrap();
        let _ = io.sync(&p("/w"));
        assert_eq!(reg.counter("fault.injected.sync_errors").get(), 1);
        assert_eq!(reg.counter("fault.injected.crashes").get(), 0);
    }
}
