//! Seeded chaos scheduling at lock and condvar synchronization points.
//!
//! The `parking_lot` shim's lock witness exposes a process-global chaos
//! hook that fires immediately before every named-lock acquisition and
//! release, before a condvar wait releases its mutex, and on every
//! notify. This module installs a deterministic *preemption injector*
//! behind that hook: each synchronization point draws from
//! `splitmix64(seed ^ op ^ point)` — the same per-operation schedule
//! shape as [`crate::FaultPlan`]'s crash-at-op-N — and either runs
//! through untouched, yields the thread, or spins for 1..50µs.
//!
//! The OS scheduler still decides the actual interleaving, so a chaos
//! run is not replayable tick-for-tick; what the seed buys is a
//! *reproducible perturbation schedule* — the Nth synchronization point
//! of a run is stretched the same way every time, which in practice
//! re-opens the same narrow races. The contract the `race_torture`
//! harness enforces on top is stronger than replay: for **every** seed
//! the engine's observable results must be byte-identical to the
//! unperturbed serial reference, so any divergence is a real ordering
//! bug, never schedule noise.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::witness::{self, ChaosPoint};

/// Active schedule seed (meaningful only while armed).
static SEED: AtomicU64 = AtomicU64::new(0);
/// Synchronization points visited since the last [`arm`].
static OPS: AtomicU64 = AtomicU64::new(0);
/// Whether the injector perturbs anything. The hook itself can never be
/// uninstalled (the witness takes a `fn` pointer once per process), so
/// this flag is the on/off switch.
static ARMED: AtomicBool = AtomicBool::new(false);

/// The splitmix64 mixing function: a full-avalanche `u64 -> u64` hash,
/// so consecutive op indices under one seed give independent draws.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Arm the injector under `seed`: installs the witness chaos hook (a
/// no-op after the first call) and resets the op counter, so the same
/// seed always maps op index N to the same perturbation.
pub fn arm(seed: u64) {
    SEED.store(seed, Ordering::SeqCst);
    OPS.store(0, Ordering::SeqCst);
    witness::set_chaos_hook(hook);
    ARMED.store(true, Ordering::SeqCst);
}

/// Stop perturbing. The hook stays installed but passes straight
/// through; [`ops`] keeps its final count for reporting.
pub fn disarm() {
    ARMED.store(false, Ordering::SeqCst);
}

/// Resume perturbing under the current seed *without* resetting the op
/// counter — for harnesses that compute an unperturbed reference in the
/// middle of a sweep and then continue the schedule where it left off.
pub fn rearm() {
    ARMED.store(true, Ordering::SeqCst);
}

/// Synchronization points visited since the last [`arm`] — a liveness
/// check that the witness instrumentation actually fired (a torture run
/// that exercised zero lock sites proves nothing).
pub fn ops() -> u64 {
    OPS.load(Ordering::SeqCst)
}

/// Fold a chaos point into the draw so the same op index perturbs
/// acquire and wait sites differently across seeds.
fn point_salt(point: ChaosPoint) -> u64 {
    match point {
        ChaosPoint::Acquire => 0x01,
        ChaosPoint::Release => 0x02,
        ChaosPoint::CondvarWait => 0x03,
        ChaosPoint::Notify => 0x04,
    }
}

/// The installed hook: draw from the schedule and maybe stall. Runs on
/// the acquiring/notifying thread with no witness state held, so a spin
/// here widens race windows without introducing any ordering itself.
fn hook(point: ChaosPoint, _lock: Option<&'static str>) {
    if !ARMED.load(Ordering::SeqCst) {
        return;
    }
    let op = OPS.fetch_add(1, Ordering::SeqCst);
    let r = splitmix64(SEED.load(Ordering::SeqCst) ^ op ^ point_salt(point));
    match r & 0x3 {
        // Half the points run through untouched: fully serialized
        // schedules find nothing, the interesting interleavings come
        // from *selective* stretching.
        0 | 1 => {}
        2 => std::thread::yield_now(),
        _ => {
            // Busy-wait 1..50µs: long enough to push another thread
            // through a critical section, short enough to sweep many
            // seeds. Sleeping would round up to scheduler quanta.
            let us = 1 + ((r >> 8) % 49);
            let until = Instant::now() + Duration::from_micros(us);
            while Instant::now() < until {
                std::hint::spin_loop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixes() {
        assert_eq!(splitmix64(42), splitmix64(42));
        let draws: std::collections::BTreeSet<u64> = (0..64).map(splitmix64).collect();
        assert_eq!(draws.len(), 64, "consecutive inputs must not collide");
    }

    #[test]
    fn armed_injector_counts_named_lock_points() {
        let m = parking_lot::Mutex::named("faults.chaos_test", 0u32);
        // Release points fire through the witness token path, so turn
        // validation on (the order table is empty here, which trivially
        // accepts every acquisition).
        witness::enable();
        arm(7);
        for _ in 0..8 {
            *m.lock() += 1;
        }
        disarm();
        witness::disable();
        let seen = ops();
        // 8 acquires + 8 releases.
        assert!(seen >= 16, "hook fired {seen} times, expected >= 16");
        *m.lock() += 1;
        assert_eq!(ops(), seen, "disarmed injector must not count");
        assert_eq!(*m.lock(), 9);
    }
}
