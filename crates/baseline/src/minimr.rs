//! A miniature map/shuffle/reduce engine — the paper's Hadoop-shaped
//! comparator (§1.3: "even new disruptive approaches like Hadoop and
//! Map/Reduce are also based on a batch paradigm").
//!
//! Faithful to the batch shape: the whole input is partitioned, mapped in
//! parallel (crossbeam threads), the intermediate key/value pairs are
//! **materialized** (optionally spilled to real files, as a cluster would
//! shuffle over disk/network), then reduced in parallel by key partition.
//! Every run starts from scratch over all stored data — the exact contrast
//! to jellybean per-tuple processing.

use std::collections::HashMap;
use std::io::{BufWriter, Read, Write};
use std::path::PathBuf;

use streamrel_types::{Error, Result, Row, Value};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct MrConfig {
    /// Worker threads for map and reduce phases.
    pub workers: usize,
    /// Reduce partitions (hash of key).
    pub partitions: usize,
    /// Spill shuffled intermediates through real files in this directory
    /// (None = in-memory shuffle).
    pub spill_dir: Option<PathBuf>,
}

impl Default for MrConfig {
    fn default() -> MrConfig {
        MrConfig {
            workers: 4,
            partitions: 8,
            spill_dir: None,
        }
    }
}

/// Per-run counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct MrRunStats {
    /// Input rows mapped.
    pub mapped: u64,
    /// Intermediate key/value pairs shuffled.
    pub shuffled: u64,
    /// Bytes written to spill files (0 when in-memory).
    pub spilled_bytes: u64,
    /// Output groups reduced.
    pub reduced: u64,
}

/// The mini map/reduce engine. Jobs are `(map, reduce)` function pairs
/// over [`Row`]s with string-serializable keys and `i64` values —
/// deliberately the word-count shape the paper's targets popularized.
pub struct MiniMr {
    config: MrConfig,
    last_stats: MrRunStats,
}

impl MiniMr {
    /// New engine.
    pub fn new(config: MrConfig) -> MiniMr {
        MiniMr {
            config,
            last_stats: MrRunStats::default(),
        }
    }

    /// Counters from the most recent run.
    pub fn last_stats(&self) -> MrRunStats {
        self.last_stats
    }

    /// Run a grouped-sum job: `map` emits zero or more `(key, value)`
    /// pairs per row; the framework sums values per key. Returns
    /// `(key, sum, count)` rows sorted by key.
    pub fn run_grouped_sum(
        &mut self,
        input: &[Row],
        map: impl Fn(&Row) -> Vec<(String, i64)> + Sync,
    ) -> Result<Vec<(String, i64, i64)>> {
        let workers = self.config.workers.max(1);
        let partitions = self.config.partitions.max(1);
        let chunk = input.len().div_ceil(workers).max(1);

        // ---- map phase (parallel over input chunks) ----
        // Each worker produces one Vec per reduce partition.
        let map_outputs: Vec<Vec<Vec<(String, i64)>>> = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for part in input.chunks(chunk) {
                let map = &map;
                handles.push(scope.spawn(move |_| {
                    let mut parts: Vec<Vec<(String, i64)>> =
                        (0..partitions).map(|_| Vec::new()).collect();
                    for row in part {
                        for (k, v) in map(row) {
                            let p = key_partition(&k, partitions);
                            parts[p].push((k, v));
                        }
                    }
                    parts
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("map worker panicked"))
                .collect()
        })
        .map_err(|_| Error::analysis("map phase panicked"))?;

        let mapped = input.len() as u64;
        let shuffled: u64 = map_outputs
            .iter()
            .flat_map(|w| w.iter())
            .map(|p| p.len() as u64)
            .sum();

        // ---- shuffle phase: materialize per-partition runs ----
        let mut spilled_bytes = 0u64;
        let partition_data: Vec<Vec<(String, i64)>> = if let Some(dir) = &self.config.spill_dir {
            std::fs::create_dir_all(dir)?;
            // Write every mapper's output for partition p into one file,
            // then read it back — the disk round-trip a real shuffle pays.
            let mut result = Vec::with_capacity(partitions);
            for p in 0..partitions {
                let path = dir.join(format!("shuffle-{p}.run"));
                {
                    let mut w = BufWriter::new(std::fs::File::create(&path)?);
                    for worker in &map_outputs {
                        for (k, v) in &worker[p] {
                            let line = format!("{}\t{v}\n", k.replace(['\t', '\n'], " "));
                            w.write_all(line.as_bytes())?;
                            spilled_bytes += line.len() as u64;
                        }
                    }
                    w.flush()?;
                }
                let mut text = String::new();
                std::fs::File::open(&path)?.read_to_string(&mut text)?;
                let mut pairs = Vec::new();
                for line in text.lines() {
                    let (k, v) = line
                        .rsplit_once('\t')
                        .ok_or_else(|| Error::storage("corrupt shuffle line"))?;
                    pairs.push((
                        k.to_string(),
                        v.parse::<i64>()
                            .map_err(|_| Error::storage("corrupt shuffle value"))?,
                    ));
                }
                std::fs::remove_file(&path).ok();
                result.push(pairs);
            }
            result
        } else {
            let mut result: Vec<Vec<(String, i64)>> = (0..partitions).map(|_| Vec::new()).collect();
            for worker in map_outputs {
                for (p, pairs) in worker.into_iter().enumerate() {
                    result[p].extend(pairs);
                }
            }
            result
        };

        // ---- reduce phase (parallel over partitions) ----
        let reduced_parts: Vec<Vec<(String, i64, i64)>> = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for pairs in &partition_data {
                handles.push(scope.spawn(move |_| {
                    let mut agg: HashMap<&str, (i64, i64)> = HashMap::new();
                    for (k, v) in pairs {
                        let e = agg.entry(k.as_str()).or_insert((0, 0));
                        e.0 += v;
                        e.1 += 1;
                    }
                    let mut out: Vec<(String, i64, i64)> = agg
                        .into_iter()
                        .map(|(k, (s, c))| (k.to_string(), s, c))
                        .collect();
                    out.sort_by(|a, b| a.0.cmp(&b.0));
                    out
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("reduce worker panicked"))
                .collect()
        })
        .map_err(|_| Error::analysis("reduce phase panicked"))?;

        let mut output: Vec<(String, i64, i64)> = reduced_parts.into_iter().flatten().collect();
        output.sort_by(|a, b| a.0.cmp(&b.0));
        self.last_stats = MrRunStats {
            mapped,
            shuffled,
            spilled_bytes,
            reduced: output.len() as u64,
        };
        Ok(output)
    }

    /// The netsec report (E5) as a map function: emit `(src_ip, bytes)`
    /// for denied high-severity events.
    pub fn netsec_deny_map(row: &Row) -> Vec<(String, i64)> {
        let action = row
            .get(2)
            .and_then(|v| v.as_text().ok().map(str::to_string));
        let severity = row.get(3).and_then(|v| v.as_int().ok());
        if action.as_deref() == Some("deny") && severity.unwrap_or(0) >= 3 {
            let src = row[0].as_text().unwrap_or("?").to_string();
            let bytes = row.get(4).and_then(|v| v.as_int().ok()).unwrap_or(0);
            vec![(src, bytes)]
        } else {
            vec![]
        }
    }

    /// Word-count-style map over a text column.
    pub fn url_count_map(col: usize) -> impl Fn(&Row) -> Vec<(String, i64)> + Sync {
        move |row: &Row| match row.get(col) {
            Some(Value::Text(s)) => vec![(s.to_string(), 1)],
            _ => vec![],
        }
    }
}

fn key_partition(key: &str, partitions: usize) -> usize {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % partitions
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamrel_types::row;

    fn rows() -> Vec<Row> {
        vec![
            row!["a", 1i64],
            row!["b", 2i64],
            row!["a", 3i64],
            row!["c", 4i64],
            row!["a", 5i64],
        ]
    }

    fn sum_map(r: &Row) -> Vec<(String, i64)> {
        vec![(r[0].as_text().unwrap().to_string(), r[1].as_int().unwrap())]
    }

    #[test]
    fn grouped_sum_in_memory() {
        let mut mr = MiniMr::new(MrConfig::default());
        let out = mr.run_grouped_sum(&rows(), sum_map).unwrap();
        assert_eq!(
            out,
            vec![("a".into(), 9, 3), ("b".into(), 2, 1), ("c".into(), 4, 1)]
        );
        let st = mr.last_stats();
        assert_eq!(st.mapped, 5);
        assert_eq!(st.shuffled, 5);
        assert_eq!(st.reduced, 3);
        assert_eq!(st.spilled_bytes, 0);
    }

    #[test]
    fn spill_matches_in_memory() {
        let dir = std::env::temp_dir().join(format!("streamrel-mr-{}", std::process::id()));
        let mut mem = MiniMr::new(MrConfig::default());
        let mut disk = MiniMr::new(MrConfig {
            spill_dir: Some(dir.clone()),
            ..MrConfig::default()
        });
        let a = mem.run_grouped_sum(&rows(), sum_map).unwrap();
        let b = disk.run_grouped_sum(&rows(), sum_map).unwrap();
        assert_eq!(a, b);
        assert!(disk.last_stats().spilled_bytes > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn matches_single_threaded_reference() {
        let input: Vec<Row> = (0..1000i64)
            .map(|i| row![format!("k{}", i % 17), i])
            .collect();
        let mut mr = MiniMr::new(MrConfig {
            workers: 7,
            partitions: 5,
            spill_dir: None,
        });
        let out = mr.run_grouped_sum(&input, sum_map).unwrap();
        // Reference.
        let mut reference: HashMap<String, (i64, i64)> = HashMap::new();
        for r in &input {
            let e = reference
                .entry(r[0].as_text().unwrap().to_string())
                .or_insert((0, 0));
            e.0 += r[1].as_int().unwrap();
            e.1 += 1;
        }
        assert_eq!(out.len(), reference.len());
        for (k, s, c) in out {
            assert_eq!(reference[&k], (s, c), "key {k}");
        }
    }

    #[test]
    fn empty_map_output_allowed() {
        let mut mr = MiniMr::new(MrConfig::default());
        let out = mr.run_grouped_sum(&rows(), |_| Vec::new()).unwrap();
        assert!(out.is_empty());
        assert_eq!(mr.last_stats().shuffled, 0);
    }

    #[test]
    fn netsec_map_filters() {
        let deny = row![
            "10.0.0.1",
            80i64,
            "deny",
            4i64,
            1000i64,
            Value::Timestamp(1)
        ];
        let allow = row![
            "10.0.0.2",
            80i64,
            "allow",
            1i64,
            1000i64,
            Value::Timestamp(2)
        ];
        assert_eq!(
            MiniMr::netsec_deny_map(&deny),
            vec![("10.0.0.1".to_string(), 1000)]
        );
        assert!(MiniMr::netsec_deny_map(&allow).is_empty());
    }
}

#[cfg(test)]
mod integration_tests {
    use super::*;
    use streamrel_core::{Db, DbOptions, ExecResult};
    use streamrel_types::{row, Value};

    /// §5's closing point: "the possibility for closer integration between
    /// Continuous Analytics systems and more batch-oriented approaches...
    /// the key is how faithfully each conforms to the SQL interface."
    /// Demonstrated: a batch MR job's output loads straight into the
    /// stream-relational database and joins with live continuous results.
    #[test]
    fn mr_output_feeds_the_database() {
        // Batch side: historical grouped sums via map/reduce.
        let history: Vec<streamrel_types::Row> =
            vec![row!["a", 10i64], row!["b", 20i64], row!["a", 30i64]];
        let mut mr = MiniMr::new(MrConfig::default());
        let batch = mr
            .run_grouped_sum(&history, |r| {
                vec![(r[0].as_text().unwrap().to_string(), r[1].as_int().unwrap())]
            })
            .unwrap();

        // Load the MR output into the database like any other table.
        let db = Db::in_memory(DbOptions::default());
        db.execute("CREATE TABLE batch_sums (k varchar(8), total bigint, n bigint)")
            .unwrap();
        let id = db.engine().table_id("batch_sums").unwrap();
        db.engine()
            .with_txn(|x| {
                for (k, s, c) in &batch {
                    db.engine().insert(
                        x,
                        id,
                        vec![Value::text(k), Value::Int(*s), Value::Int(*c)],
                    )?;
                }
                Ok(())
            })
            .unwrap();

        // Live side: a CQ joining current window sums with batch history.
        db.execute("CREATE STREAM s (k varchar(8), v integer, ts timestamp CQTIME USER)")
            .unwrap();
        let sub = match db
            .execute(
                "SELECT c.k, c.cur, h.total FROM \
                 (SELECT k, sum(v) cur FROM s <TUMBLING '1 minute'> GROUP BY k) c \
                 JOIN batch_sums h ON c.k = h.k ORDER BY c.k",
            )
            .unwrap()
        {
            ExecResult::Subscribed(sub) => sub,
            other => panic!("{other:?}"),
        };
        db.ingest("s", row!["a", 5i64, Value::Timestamp(1)])
            .unwrap();
        db.ingest("s", row!["b", 6i64, Value::Timestamp(2)])
            .unwrap();
        db.heartbeat("s", 60_000_000).unwrap();
        let outs = db.poll(sub).unwrap();
        assert_eq!(outs[0].relation.rows()[0], row!["a", 5i64, 40i64]);
        assert_eq!(outs[0].relation.rows()[1], row!["b", 6i64, 20i64]);
    }
}
