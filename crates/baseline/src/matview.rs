//! Materialized views with batch refresh — the paper's §5 comparison.
//!
//! "MVs are refreshed in batch mode and therefore may be out of date at
//! the time of the query. [...] when the update starts, the whole batch is
//! processed." This module implements exactly that: a result table
//! refreshed on demand, either by full recomputation or by re-aggregating
//! only the delta rows (append-only incremental refresh). Between
//! refreshes the view serves stale data; [`BatchMatView::staleness`]
//! exposes the gap for experiment E4.

use streamrel_core::{Db, DbOptions, ExecResult};
use streamrel_exec::{eval_predicate, EvalContext};
use streamrel_sql::analyzer::Analyzer;
use streamrel_sql::ast::Statement;
use streamrel_sql::parser::parse_statement;
use streamrel_types::{Error, Relation, Result, Row, Timestamp, Value};

/// Refresh strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshMode {
    /// Recompute the view from all raw data (classic REFRESH).
    Full,
    /// Re-aggregate only rows with `ts > last_refresh` and append the
    /// result (valid for per-period additive reports).
    DeltaAppend,
}

/// A batch-refreshed materialized view over an append-only raw table.
pub struct BatchMatView {
    db: Db,
    raw_table: String,
    ts_col: String,
    view_table: String,
    query_sql: String,
    mode: RefreshMode,
    /// Event-time high-water mark covered by the view.
    refreshed_through: Timestamp,
    refresh_count: u64,
    rows_scanned: u64,
}

impl BatchMatView {
    /// Build: creates the raw table, the view's result table, and records
    /// the defining query. `query_sql` must select from `raw_table` and
    /// its result schema must match `create_view_table_sql`'s table.
    pub fn new(
        create_raw_sql: &str,
        raw_table: &str,
        ts_col: &str,
        create_view_table_sql: &str,
        view_table: &str,
        query_sql: &str,
        mode: RefreshMode,
    ) -> Result<BatchMatView> {
        let db = Db::in_memory(DbOptions::default());
        db.execute(create_raw_sql)?;
        db.execute(create_view_table_sql)?;
        Ok(BatchMatView {
            db,
            raw_table: raw_table.to_string(),
            ts_col: ts_col.to_string(),
            view_table: view_table.to_string(),
            query_sql: query_sql.to_string(),
            mode,
            refreshed_through: i64::MIN,
            refresh_count: 0,
            rows_scanned: 0,
        })
    }

    /// Land raw rows (the base table keeps growing; the view goes stale).
    pub fn load(&mut self, rows: Vec<Row>) -> Result<u64> {
        let id = self.db.engine().table_id(&self.raw_table)?;
        self.db
            .engine()
            .with_txn(|x| self.db.engine().insert_many(x, id, rows))
    }

    /// Event-time staleness at `now`: how far the raw data has moved past
    /// the view's last refresh.
    pub fn staleness(&self, now: Timestamp) -> i64 {
        if self.refreshed_through == i64::MIN {
            // Never refreshed: stale since the beginning of time; report
            // the full span.
            now
        } else {
            (now - self.refreshed_through).max(0)
        }
    }

    /// Refresh the view. Returns the number of raw rows scanned (the work
    /// the refresh had to do — E4's cost metric).
    pub fn refresh(&mut self, now: Timestamp) -> Result<u64> {
        self.refresh_count += 1;
        let scanned = match self.mode {
            RefreshMode::Full => {
                let result = match self.db.execute(&self.query_sql)? {
                    ExecResult::Rows(r) => r,
                    other => {
                        return Err(Error::analysis(format!(
                            "view query must be snapshot, got {other:?}"
                        )))
                    }
                };
                let raw_id = self.db.engine().table_id(&self.raw_table)?;
                let snap = self.db.engine().snapshot();
                let scanned = self.db.engine().scan(raw_id, &snap)?.len() as u64;
                let view_id = self.db.engine().table_id(&self.view_table)?;
                self.db.engine().with_txn(|x| {
                    self.db.engine().delete_all_visible(x, view_id)?;
                    self.db.engine().insert_many(x, view_id, result.into_rows())
                })?;
                scanned
            }
            RefreshMode::DeltaAppend => {
                // Run the defining query restricted to the delta and
                // append. We filter the delta manually so the stored
                // query text stays unmodified.
                let delta = self.delta_rows()?;
                let scanned = delta.len() as u64;
                let result = self.run_query_over(delta)?;
                let view_id = self.db.engine().table_id(&self.view_table)?;
                self.db
                    .engine()
                    .with_txn(|x| self.db.engine().insert_many(x, view_id, result.into_rows()))?;
                scanned
            }
        };
        self.rows_scanned += scanned;
        self.refreshed_through = now;
        Ok(scanned)
    }

    fn delta_rows(&self) -> Result<Vec<Row>> {
        let schema = self.db.engine().table_schema(&self.raw_table)?;
        let ts_idx = schema.index_of(&self.ts_col)?;
        let raw_id = self.db.engine().table_id(&self.raw_table)?;
        let snap = self.db.engine().snapshot();
        let cutoff = self.refreshed_through;
        let mut out = Vec::new();
        self.db.engine().scan_visit(raw_id, &snap, |_, row| {
            if let Some(Value::Timestamp(t)) = row.get(ts_idx) {
                if *t > cutoff {
                    out.push(row.clone());
                }
            }
            true
        })?;
        Ok(out)
    }

    /// Execute the stored query text against an ad-hoc set of rows by
    /// loading them into a scratch table of the raw schema.
    fn run_query_over(&self, rows: Vec<Row>) -> Result<Relation> {
        // Scratch DB avoids disturbing the main tables.
        let scratch = Db::in_memory(DbOptions::default());
        let schema = self.db.engine().table_schema(&self.raw_table)?;
        let cols: String = schema
            .columns()
            .iter()
            .map(|c| format!("{} {}", c.name, c.ty))
            .collect::<Vec<_>>()
            .join(", ");
        scratch.execute(&format!("CREATE TABLE {} ({})", self.raw_table, cols))?;
        let id = scratch.engine().table_id(&self.raw_table)?;
        scratch
            .engine()
            .with_txn(|x| scratch.engine().insert_many(x, id, rows))?;
        match scratch.execute(&self.query_sql)? {
            ExecResult::Rows(r) => Ok(r),
            other => Err(Error::analysis(format!(
                "non-snapshot view query: {other:?}"
            ))),
        }
    }

    /// Query the (possibly stale) view table.
    pub fn query_view(&self, sql: &str) -> Result<Relation> {
        match self.db.execute(sql)? {
            ExecResult::Rows(r) => Ok(r),
            other => Err(Error::analysis(format!("{other:?}"))),
        }
    }

    /// Number of refreshes run.
    pub fn refresh_count(&self) -> u64 {
        self.refresh_count
    }

    /// Total raw rows scanned across all refreshes (the recurring cost the
    /// paper contrasts with per-tuple continuous work).
    pub fn rows_scanned(&self) -> u64 {
        self.rows_scanned
    }

    /// Validate the delta predicate compiles (sanity used by tests).
    pub fn check(&self) -> Result<()> {
        let stmt = parse_statement(&self.query_sql)?;
        if !matches!(stmt, Statement::Select(_)) {
            return Err(Error::analysis("view query must be a SELECT"));
        }
        // Exercise the filter path once to catch schema drift.
        let schema = self.db.engine().table_schema(&self.raw_table)?;
        let expr = streamrel_sql::ast::Expr::binary(
            streamrel_sql::ast::BinaryOp::Gt,
            streamrel_sql::ast::Expr::col(self.ts_col.clone()),
            streamrel_sql::ast::Expr::Literal(Value::Timestamp(0)),
        );
        struct NoRels;
        impl streamrel_sql::analyzer::SchemaProvider for NoRels {
            fn relation(
                &self,
                _: &str,
            ) -> Option<(
                streamrel_sql::plan::SchemaRef,
                streamrel_sql::analyzer::RelKind,
            )> {
                None
            }
        }
        let bound = Analyzer::new(&NoRels).bind_over_schema(&expr, &schema)?;
        let _ = eval_predicate(
            &bound,
            &vec![Value::Null; schema.len()],
            &EvalContext::default(),
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamrel_types::row;

    fn mv(mode: RefreshMode) -> BatchMatView {
        BatchMatView::new(
            "CREATE TABLE raw (k varchar(10), v integer, ts timestamp)",
            "raw",
            "ts",
            "CREATE TABLE v (k varchar(10), s bigint)",
            "v",
            "SELECT k, sum(v) s FROM raw GROUP BY k",
            mode,
        )
        .unwrap()
    }

    #[test]
    fn full_refresh_recomputes() {
        let mut m = mv(RefreshMode::Full);
        m.check().unwrap();
        m.load(vec![row!["a", 1i64, Value::Timestamp(10)]]).unwrap();
        let scanned = m.refresh(10).unwrap();
        assert_eq!(scanned, 1);
        m.load(vec![row!["a", 2i64, Value::Timestamp(20)]]).unwrap();
        // Stale until refreshed.
        let rel = m.query_view("SELECT s FROM v").unwrap();
        assert_eq!(rel.rows()[0], row![1i64]);
        assert_eq!(m.staleness(20), 10);
        let scanned = m.refresh(20).unwrap();
        assert_eq!(scanned, 2, "full refresh rescans everything");
        let rel = m.query_view("SELECT s FROM v").unwrap();
        assert_eq!(rel.rows()[0], row![3i64]);
        assert_eq!(m.staleness(20), 0);
    }

    #[test]
    fn delta_refresh_scans_only_new_rows() {
        let mut m = mv(RefreshMode::DeltaAppend);
        m.load(vec![
            row!["a", 1i64, Value::Timestamp(10)],
            row!["b", 5i64, Value::Timestamp(15)],
        ])
        .unwrap();
        assert_eq!(m.refresh(20).unwrap(), 2);
        m.load(vec![row!["a", 2i64, Value::Timestamp(30)]]).unwrap();
        assert_eq!(m.refresh(40).unwrap(), 1, "delta only");
        // DeltaAppend appends per-period rows (two 'a' entries).
        let rel = m
            .query_view("SELECT k, sum(s) FROM v GROUP BY k ORDER BY k")
            .unwrap();
        assert_eq!(rel.rows()[0], row!["a", 3i64]);
        assert_eq!(rel.rows()[1], row!["b", 5i64]);
        assert_eq!(m.rows_scanned(), 3);
        assert_eq!(m.refresh_count(), 2);
    }

    #[test]
    fn never_refreshed_is_maximally_stale() {
        let m = mv(RefreshMode::Full);
        assert_eq!(m.staleness(1000), 1000);
    }
}
