//! The approaches the paper argues against, built on the *same* storage
//! and executor so comparisons isolate the architecture, not the code
//! quality:
//!
//! - [`storefirst`] — classic store-first-query-later (§1.3): land every
//!   tuple in a table, run the report over raw data on demand.
//! - [`matview`] — materialized views with batch refresh (§5): the report
//!   is precomputed, but refreshed by periodic recomputation, so answers
//!   are stale between refreshes and each refresh re-pays query cost.
//! - [`minimr`] — a miniature map/shuffle/reduce engine (§1.3, §5):
//!   partitioned parallel batch processing with materialized intermediate
//!   state, the Hadoop-shaped comparator.

#![deny(unsafe_code)]

pub mod matview;
pub mod minimr;
pub mod storefirst;

pub use matview::{BatchMatView, RefreshMode};
pub use minimr::{MiniMr, MrConfig};
pub use storefirst::StoreFirst;
