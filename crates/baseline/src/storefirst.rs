//! Store-first-query-later: the architecture the paper attacks (§1.3).
//!
//! Data is collected, stored in a table, and *then* analyzed: every report
//! execution re-reads all raw rows. Built on the same `Db` so the executor
//! and storage are identical to the continuous path — the measured gap is
//! purely architectural.

use streamrel_core::{Db, DbOptions, ExecResult};
use streamrel_types::{Relation, Result, Row};

/// A store-first analytics pipeline over one raw table.
pub struct StoreFirst {
    db: Db,
    table: String,
    loaded: u64,
    reports_run: u64,
}

impl StoreFirst {
    /// Create the pipeline with the raw table declared by `create_table_sql`.
    pub fn new(create_table_sql: &str, table: &str) -> Result<StoreFirst> {
        let db = Db::in_memory(DbOptions::default());
        db.execute(create_table_sql)?;
        Ok(StoreFirst {
            db,
            table: table.to_string(),
            loaded: 0,
            reports_run: 0,
        })
    }

    /// The underlying database (for creating indexes etc.).
    pub fn db(&self) -> &Db {
        &self.db
    }

    /// Land a batch of raw rows (the "store" phase).
    pub fn load(&mut self, rows: Vec<Row>) -> Result<u64> {
        let id = self.db.engine().table_id(&self.table)?;
        let n = self
            .db
            .engine()
            .with_txn(|x| self.db.engine().insert_many(x, id, rows))?;
        self.loaded += n;
        Ok(n)
    }

    /// Run the report over all raw data (the "query-later" phase): full
    /// scan + aggregate, every time.
    pub fn run_report(&mut self, sql: &str) -> Result<Relation> {
        self.reports_run += 1;
        match self.db.execute(sql)? {
            ExecResult::Rows(rel) => Ok(rel),
            other => Err(streamrel_types::Error::analysis(format!(
                "report must be a snapshot query, got {other:?}"
            ))),
        }
    }

    /// Rows stored.
    pub fn loaded(&self) -> u64 {
        self.loaded
    }

    /// Reports executed.
    pub fn reports_run(&self) -> u64 {
        self.reports_run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamrel_types::{row, Value};
    use streamrel_workload::NetsecGen;

    #[test]
    fn load_then_query() {
        let mut sf = StoreFirst::new(
            "CREATE TABLE raw (k varchar(10), v integer, ts timestamp)",
            "raw",
        )
        .unwrap();
        sf.load(vec![
            row!["a", 1i64, Value::Timestamp(1)],
            row!["a", 2i64, Value::Timestamp(2)],
            row!["b", 3i64, Value::Timestamp(3)],
        ])
        .unwrap();
        let rel = sf
            .run_report("SELECT k, sum(v) s FROM raw GROUP BY k ORDER BY k")
            .unwrap();
        assert_eq!(rel.rows()[0], row!["a", 3i64]);
        assert_eq!(rel.rows()[1], row!["b", 3i64]);
        assert_eq!(sf.loaded(), 3);
        assert_eq!(sf.reports_run(), 1);
    }

    #[test]
    fn report_rescans_everything() {
        let mut sf = StoreFirst::new(&NetsecGen::create_table_sql("raw"), "raw").unwrap();
        let mut g = NetsecGen::new(1, 500, 0, 10_000);
        sf.load(g.take_rows(5_000)).unwrap();
        let r1 = sf.run_report(&NetsecGen::report_sql("raw")).unwrap();
        // New data arrives; the *same* report must be recomputed from raw.
        sf.load(g.take_rows(5_000)).unwrap();
        let r2 = sf.run_report(&NetsecGen::report_sql("raw")).unwrap();
        assert!(!r1.is_empty() && !r2.is_empty());
        let total = |rel: &streamrel_types::Relation| -> i64 {
            rel.rows().iter().map(|r| r[1].as_int().unwrap()).sum()
        };
        assert!(total(&r2) >= total(&r1), "more data, more denies");
    }
}
