//! Static safety analysis for streamrel.
//!
//! Two independent levels share this crate:
//!
//! * **Level 1 — plan analysis** ([`check_plan`]): a pass over the bound
//!   [`LogicalPlan`] that runs at CQ registration, before any runtime
//!   state is allocated. It classifies every plan as admissible or not:
//!   unbounded-state operators (stream joins or aggregates with no window
//!   bound) and windows that can never close are *rejected* with a
//!   structured [`Error::Check`] carrying a fix hint; shapes that are
//!   legal but costly (shared-grid mismatches, sorts over raw stream
//!   tuples) produce *warnings* surfaced through `EXPLAIN CHECK`.
//!   The same pass computes a conservative per-plan state-size bound.
//!
//! * **Level 2 — source lint** ([`lint`]): a self-hosted, dependency-free
//!   scanner over the workspace's own sources enforcing engine invariants
//!   (no `unwrap()` in I/O crates, declared lock order, `Relaxed` atomics
//!   only in `crates/obs`, the reserved `streamrel_` prefix). It runs in
//!   CI via the `streamrel-lint` binary.
//!
//! The paper's thesis is that continuous queries are long-lived shared
//! infrastructure (§2, §4): a plan admitted today runs for weeks, so a
//! state bug that a snapshot engine would survive becomes a slow-motion
//! outage. Admission is therefore the right place to be strict.

#![deny(unsafe_code)]

pub mod lint;
pub mod lock_graph;

/// The generated merged workspace lock-order table (see
/// [`lock_graph`]). Lives in `lock_graph.gen.rs`, produced by
/// `streamrel-lint --update-lock-graph` and staleness-checked by the
/// lint; pulled in via `include!` so rustfmt leaves it alone.
pub mod lock_graph_gen {
    include!("lock_graph.gen.rs");
}

use std::sync::Arc;
use streamrel_cq::shared::{extract_shape, SharedRegistry};
use streamrel_sql::plan::LogicalPlan;
use streamrel_sql::WindowSpec;
use streamrel_types::relation::Relation;
use streamrel_types::schema::{Column, Schema};
use streamrel_types::time::format_interval;
use streamrel_types::{DataType, Error, Value};

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// The plan must not be admitted as a continuous query.
    Reject,
    /// The plan is admissible but the shape is a known footgun.
    Warn,
}

impl Severity {
    /// Lowercase label used in `EXPLAIN CHECK` output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Reject => "reject",
            Severity::Warn => "warn",
        }
    }
}

/// One rule hit produced by the plan analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Severity of the finding.
    pub severity: Severity,
    /// Stable rule identifier (see DESIGN.md §8 for the catalog).
    pub rule: &'static str,
    /// What is wrong with the plan.
    pub message: String,
    /// How to fix the query.
    pub hint: String,
}

impl Finding {
    fn reject(rule: &'static str, message: String, hint: String) -> Finding {
        Finding {
            severity: Severity::Reject,
            rule,
            message,
            hint,
        }
    }

    fn warn(rule: &'static str, message: String, hint: String) -> Finding {
        Finding {
            severity: Severity::Warn,
            rule,
            message,
            hint,
        }
    }
}

/// The engine-wide standing-state budget at one admission decision.
///
/// Carried in [`CheckContext`] when `DbOptions::state_budget_bytes` is
/// configured: `limit_bytes` is the cross-CQ cap and `admitted_bytes`
/// the sum of the bounds of every CQ currently registered. The budget
/// rule rejects a plan whose own bound would push the sum past the cap
/// — and, because the cap is a *proof* obligation, any plan whose state
/// cannot be byte-bounded at all (arrival-rate-dependent windows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateBudget {
    /// The configured cross-CQ cap.
    pub limit_bytes: u64,
    /// Bytes already admitted against the cap.
    pub admitted_bytes: u64,
}

/// Context the admission check needs from the engine.
///
/// Everything here is optional in the sense that `check_plan` degrades
/// gracefully: without a registry the shared-grid rule simply cannot
/// fire (there is nothing to mismatch against), and without a budget
/// the byte bound is reported but never enforced.
#[derive(Default)]
pub struct CheckContext<'a> {
    /// Whether shared slice aggregation is enabled engine-wide.
    pub sharing: bool,
    /// Whether incremental view maintenance is enabled engine-wide.
    pub ivm: bool,
    /// The live shared-slice registry, for grid-compatibility checks.
    pub registry: Option<&'a SharedRegistry>,
    /// The cross-CQ standing-state budget, when one is configured.
    pub budget: Option<StateBudget>,
}

/// Result of the Level-1 plan analysis.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Whether the plan is a continuous query (any stream scanned).
    pub continuous: bool,
    /// All rule hits, rejections first.
    pub findings: Vec<Finding>,
    /// Conservative human-readable bound on standing state.
    pub state_bound: String,
    /// Conservative numeric bound on standing state, when one exists:
    /// `Some(bytes)` iff every stream scan is row-bounded (row windows),
    /// `Some(0)` for snapshot queries, `None` when the state depends on
    /// arrival rate (time windows, slices, unbounded scans).
    pub state_bound_bytes: Option<u64>,
    /// Execution path the CQ takes at each window close: `"ivm"` when the
    /// plan lowers to incremental view maintenance, `"reeval"` for
    /// per-window re-evaluation, `"-"` for snapshot queries.
    pub path: &'static str,
    /// Why IVM lowering fell back (continuous `"reeval"` plans only);
    /// stable reason text from the lowering pass.
    pub ivm_fallback: Option<&'static str>,
}

impl CheckReport {
    /// The first rejection, if any.
    pub fn rejection(&self) -> Option<&Finding> {
        self.findings
            .iter()
            .find(|f| f.severity == Severity::Reject)
    }

    /// Number of warnings.
    pub fn warnings(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warn)
            .count()
    }

    /// Convert the first rejection into the structured admission error.
    pub fn to_error(&self) -> Option<Error> {
        self.rejection()
            .map(|f| Error::check(f.rule, f.message.clone(), f.hint.clone()))
    }

    /// Render the report as the `EXPLAIN CHECK` relation.
    ///
    /// Columns: `kind` (query/verdict/info/reject/warn/state-bound),
    /// `rule`, `detail`, `hint`, `path` (`ivm`/`reeval`/`-`, constant per
    /// query). Built here — not in the server — so the embedded and remote
    /// surfaces are one code path.
    pub fn to_relation(&self) -> Relation {
        let schema = Arc::new(Schema::new_unchecked(vec![
            Column::new("kind", DataType::Text),
            Column::new("rule", DataType::Text),
            Column::new("detail", DataType::Text),
            Column::new("hint", DataType::Text),
            Column::new("path", DataType::Text),
        ]));
        let mut rel = Relation::empty(schema);
        let path = Value::text(self.path);
        let class = if self.continuous {
            "continuous query (CQ)"
        } else {
            "snapshot query (SQ)"
        };
        rel.push(vec![
            Value::text("query"),
            Value::text(""),
            Value::text(class),
            Value::text(""),
            path.clone(),
        ]);
        let verdict = if self.rejection().is_some() {
            "reject: not admissible as a standing query".to_string()
        } else if self.warnings() > 0 {
            format!("admit with {} warning(s)", self.warnings())
        } else {
            "admit".to_string()
        };
        rel.push(vec![
            Value::text("verdict"),
            Value::text(""),
            Value::text(verdict),
            Value::text(""),
            path.clone(),
        ]);
        if let Some(reason) = self.ivm_fallback {
            rel.push(vec![
                Value::text("info"),
                Value::text("ivm-fallback"),
                Value::text(reason),
                Value::text(
                    "the CQ re-evaluates its plan at every window close; \
                     see the fallback matrix in DESIGN.md §12 for shapes \
                     that maintain state incrementally",
                ),
                path.clone(),
            ]);
        }
        for f in &self.findings {
            rel.push(vec![
                Value::text(f.severity.label()),
                Value::text(f.rule),
                Value::text(&f.message),
                Value::text(&f.hint),
                path.clone(),
            ]);
        }
        let bytes = match self.state_bound_bytes {
            Some(b) => format!("{b} byte(s)"),
            None => "unbounded in bytes (arrival-rate dependent)".to_string(),
        };
        rel.push(vec![
            Value::text("state-bound"),
            Value::text(""),
            Value::text(format!("{}; {bytes}", self.state_bound)),
            Value::text(""),
            path,
        ]);
        rel
    }
}

/// Nearest enclosing stateful operator above a scan, tracked while
/// descending the plan.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Enclosing {
    None,
    Join,
    Aggregate,
}

/// Run the Level-1 admission analysis over a bound plan.
///
/// Pure function of the plan plus [`CheckContext`]; performs no I/O and
/// allocates only the report (the `check_overhead` bench holds it under
/// 1 ms per registration).
pub fn check_plan(plan: &LogicalPlan, ctx: &CheckContext) -> CheckReport {
    let mut findings = Vec::new();
    classify(plan, Enclosing::None, &mut findings);
    window_shape_rules(plan, &mut findings);
    shared_grid_rule(plan, ctx, &mut findings);
    non_monotonic_rule(plan, &mut findings);
    let continuous = plan.is_continuous();
    let state_bound_bytes = state_bound_bytes(plan);
    if continuous {
        budget_rule(state_bound_bytes, ctx, &mut findings);
    }
    findings.sort_by_key(|f| match f.severity {
        Severity::Reject => 0,
        Severity::Warn => 1,
    });
    let (path, ivm_fallback) = if !continuous {
        ("-", None)
    } else if !ctx.ivm {
        (
            "reeval",
            Some("incremental view maintenance disabled by engine options"),
        )
    } else {
        match streamrel_ivm::fallback_reason(plan) {
            None => ("ivm", None),
            Some(reason) => ("reeval", Some(reason)),
        }
    };
    let mut state_bound = state_bound(plan);
    if path == "ivm" {
        // The IVM path never buffers window tuples: standing state is the
        // per-slice partials, bounded by distinct keys — not arrival rate.
        state_bound.push_str(
            "; ivm: buffered tuples replaced by per-slice aggregate \
             partials (bounded by distinct keys per slice)",
        );
    }
    CheckReport {
        continuous,
        state_bound,
        state_bound_bytes,
        findings,
        path,
        ivm_fallback,
    }
}

const WINDOW_HINT: &str = "add a window clause to the stream reference, e.g. \
                           `s <visible '5 minutes' advance '1 minute'>` or \
                           `s <visible 100 rows advance 10 rows>`";

/// Rules `unbounded-join` / `unbounded-aggregate` / `unbounded-stream`:
/// a stream scanned with no window bound, classified by the nearest
/// enclosing stateful operator so the hint names the operator whose
/// state would actually grow without bound.
fn classify(plan: &LogicalPlan, enclosing: Enclosing, out: &mut Vec<Finding>) {
    match plan {
        LogicalPlan::StreamScan { stream, window, .. } => {
            if *window == WindowSpec::Unbounded {
                let (rule, message) = match enclosing {
                    Enclosing::Join => (
                        "unbounded-join",
                        format!(
                            "stream `{stream}` feeds a join with no window \
                             bound; the join must retain every tuple ever \
                             seen and its state grows forever"
                        ),
                    ),
                    Enclosing::Aggregate => (
                        "unbounded-aggregate",
                        format!(
                            "aggregate over stream `{stream}` has no window \
                             bound; its groups accumulate forever and no \
                             window ever closes to emit them"
                        ),
                    ),
                    Enclosing::None => (
                        "unbounded-stream",
                        format!(
                            "stream `{stream}` is scanned without a window; \
                             a standing query over it would retain every \
                             arriving tuple"
                        ),
                    ),
                };
                out.push(Finding::reject(rule, message, WINDOW_HINT.to_string()));
            }
        }
        LogicalPlan::Join { left, right, .. } => {
            classify(left, Enclosing::Join, out);
            classify(right, Enclosing::Join, out);
        }
        LogicalPlan::Aggregate { input, .. } => {
            classify(input, Enclosing::Aggregate, out);
        }
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. }
        | LogicalPlan::Distinct { input } => classify(input, enclosing, out),
        LogicalPlan::OneRow | LogicalPlan::TableScan { .. } => {}
    }
}

/// Rules `never-closing-window` / `advance-exceeds-visible` /
/// `unaligned-window`: per-window shape checks.
fn window_shape_rules(plan: &LogicalPlan, out: &mut Vec<Finding>) {
    for (stream, window) in plan.stream_scans() {
        match window {
            WindowSpec::Time { visible, advance } => {
                if visible <= 0 {
                    out.push(Finding::reject(
                        "never-closing-window",
                        format!(
                            "window over `{stream}` has non-positive \
                             VISIBLE ({}); it can never contain data",
                            format_interval(visible)
                        ),
                        "use a positive interval, e.g. VISIBLE '1 minute'".to_string(),
                    ));
                } else if advance <= 0 {
                    out.push(Finding::reject(
                        "never-closing-window",
                        format!(
                            "window over `{stream}` has non-positive \
                             ADVANCE ({}); it would never close and never \
                             emit a result",
                            format_interval(advance)
                        ),
                        "use a positive ADVANCE; for a tumbling window set \
                         ADVANCE equal to VISIBLE"
                            .to_string(),
                    ));
                } else if advance > visible {
                    out.push(Finding::reject(
                        "advance-exceeds-visible",
                        format!(
                            "window over `{stream}` advances by {} but only \
                             {} is visible: tuples arriving in the gap are \
                             silently never reported",
                            format_interval(advance),
                            format_interval(visible)
                        ),
                        format!(
                            "set ADVANCE <= VISIBLE (tumbling: ADVANCE '{}' \
                             equal to VISIBLE)",
                            format_interval(visible)
                        ),
                    ));
                } else if visible % advance != 0 {
                    out.push(Finding::warn(
                        "unaligned-window",
                        format!(
                            "VISIBLE {} is not a multiple of ADVANCE {}; \
                             shared slices fall back to their gcd and the \
                             window closes off the natural grid",
                            format_interval(visible),
                            format_interval(advance)
                        ),
                        "make VISIBLE a whole multiple of ADVANCE".to_string(),
                    ));
                }
            }
            WindowSpec::Rows { visible, advance } => {
                if visible == 0 || advance == 0 {
                    out.push(Finding::reject(
                        "never-closing-window",
                        format!(
                            "row window over `{stream}` has VISIBLE {visible} \
                             ROWS ADVANCE {advance} ROWS; a zero bound means \
                             it never fills or never slides"
                        ),
                        "use positive row counts, e.g. <visible 100 rows \
                         advance 10 rows>"
                            .to_string(),
                    ));
                } else if advance > visible {
                    out.push(Finding::reject(
                        "advance-exceeds-visible",
                        format!(
                            "row window over `{stream}` advances {advance} \
                             rows but shows only {visible}: every window \
                             skips {} arriving rows",
                            advance - visible
                        ),
                        format!("set ADVANCE <= VISIBLE ({visible} rows)"),
                    ));
                }
            }
            WindowSpec::Slices { count } => {
                if count == 0 {
                    out.push(Finding::reject(
                        "never-closing-window",
                        format!(
                            "slice window over `{stream}` spans 0 upstream \
                             windows; it can never close"
                        ),
                        "use <slices 1 windows> or more".to_string(),
                    ));
                }
            }
            WindowSpec::Unbounded => {} // handled by classify()
        }
    }
}

fn gcd(a: i64, b: i64) -> i64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Rule `shared-grid-mismatch` (warn): the plan is shareable and sharing
/// is on, but an existing shared group for the same shape already runs
/// on a slice grid this window's gcd cannot join — the CQ would silently
/// run unshared.
fn shared_grid_rule(plan: &LogicalPlan, ctx: &CheckContext, out: &mut Vec<Finding>) {
    if !ctx.sharing {
        return;
    }
    let Some(registry) = ctx.registry else { return };
    let Some((shape, _)) = extract_shape(plan) else {
        return;
    };
    let windows = plan.stream_scans();
    let Some((stream, WindowSpec::Time { visible, advance })) = windows.first() else {
        return;
    };
    if *visible <= 0 || *advance <= 0 {
        return; // already rejected by the shape rules
    }
    let needed = gcd(*visible, *advance);
    if let Some(width) = registry.slice_width_for(&shape) {
        if needed % width != 0 {
            out.push(Finding::warn(
                "shared-grid-mismatch",
                format!(
                    "an existing shared group over `{stream}` slices at {} \
                     but this window's grid is {}; the group cannot \
                     re-slice with data present, so this CQ runs unshared",
                    format_interval(width),
                    format_interval(needed)
                ),
                format!(
                    "align VISIBLE/ADVANCE to multiples of the group's \
                     slice width ({})",
                    format_interval(width)
                ),
            ));
        }
    }
}

/// Rule `non-monotonic-op` (warn): `ORDER BY` / `DISTINCT` applied to raw
/// (unaggregated) stream tuples. Append-only streams make these re-buffer
/// and re-process the full window on every close; over the aggregated
/// result they are cheap.
fn non_monotonic_rule(plan: &LogicalPlan, out: &mut Vec<Finding>) {
    fn raw_stream_below(plan: &LogicalPlan) -> bool {
        match plan {
            LogicalPlan::StreamScan { .. } => true,
            // An aggregate compacts the stream: operators above it work
            // on the (small) result relation, not raw tuples.
            LogicalPlan::Aggregate { .. } => false,
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Distinct { input } => raw_stream_below(input),
            LogicalPlan::Join { left, right, .. } => {
                raw_stream_below(left) || raw_stream_below(right)
            }
            LogicalPlan::OneRow | LogicalPlan::TableScan { .. } => false,
        }
    }
    plan.visit(&mut |p| {
        let (op, input) = match p {
            LogicalPlan::Sort { input, .. } => ("ORDER BY", input),
            LogicalPlan::Distinct { input } => ("DISTINCT", input),
            _ => return,
        };
        if input.is_continuous() && raw_stream_below(input) {
            out.push(Finding::warn(
                "non-monotonic-op",
                format!(
                    "{op} is applied to raw stream tuples; every window \
                     close re-buffers and re-orders the full window"
                ),
                "aggregate first and apply the operation to the (much \
                 smaller) per-window result"
                    .to_string(),
            ));
        }
    });
}

/// Estimated in-memory width of one buffered row: fixed-width scalars
/// at their natural size, plus a nominal allowance for variable-width
/// text (conservative for typical keys, not a hard ceiling).
fn row_width_bytes(schema: &Schema) -> u64 {
    schema
        .columns()
        .iter()
        .map(|c| match c.ty {
            DataType::Bool => 1,
            DataType::Int | DataType::Float | DataType::Timestamp | DataType::Interval => 8,
            DataType::Text => 64,
        })
        .sum()
}

/// Conservative numeric byte bound on the plan's standing state, when
/// one can be proven: row windows buffer exactly `visible` rows per
/// scan, so their state is `visible x row width`. Time windows, slice
/// windows and unbounded scans depend on arrival rate (or upstream
/// batch size), so no byte bound exists and the whole plan reports
/// `None`. Snapshot queries hold no standing state.
fn state_bound_bytes(plan: &LogicalPlan) -> Option<u64> {
    let mut total: Option<u64> = Some(0);
    plan.visit(&mut |p| {
        if let LogicalPlan::StreamScan { schema, window, .. } = p {
            let scan = match window {
                WindowSpec::Rows { visible, .. } => Some(*visible * row_width_bytes(schema)),
                WindowSpec::Time { .. } | WindowSpec::Slices { .. } | WindowSpec::Unbounded => None,
            };
            total = match (total, scan) {
                (Some(t), Some(s)) => Some(t + s),
                _ => None,
            };
        }
    });
    total
}

/// Rule `state-budget` (reject): with a cross-CQ standing-state budget
/// configured, a plan is admitted only if its byte bound *provably*
/// fits in the remaining budget. A plan with no byte bound at all
/// (arrival-rate-dependent state) cannot discharge that proof and is
/// rejected outright — the budget is a guarantee, not a heuristic.
fn budget_rule(bound: Option<u64>, ctx: &CheckContext, out: &mut Vec<Finding>) {
    let Some(budget) = ctx.budget else { return };
    match bound {
        None => out.push(Finding::reject(
            "state-budget",
            "the plan's standing state depends on arrival rate and cannot \
             be byte-bounded, so it is not admissible under the engine's \
             state budget"
                .to_string(),
            "use row-bounded windows (e.g. <visible 100 rows advance 10 \
             rows>) or raise/remove DbOptions::state_budget_bytes"
                .to_string(),
        )),
        Some(bytes) => {
            let remaining = budget.limit_bytes.saturating_sub(budget.admitted_bytes);
            if bytes > remaining {
                out.push(Finding::reject(
                    "state-budget",
                    format!(
                        "the plan needs up to {bytes} byte(s) of standing \
                         state but only {remaining} of the {} byte budget \
                         remain ({} already admitted across running CQs)",
                        budget.limit_bytes, budget.admitted_bytes
                    ),
                    "drop or re-window other CQs, shrink this window, or \
                     raise DbOptions::state_budget_bytes"
                        .to_string(),
                ));
            }
        }
    }
}

/// Conservative human-readable bound on the standing state the plan
/// needs, derived from its window clauses.
fn state_bound(plan: &LogicalPlan) -> String {
    let scans = plan.stream_scans();
    if scans.is_empty() {
        return "none (snapshot query holds no standing state)".to_string();
    }
    let mut parts = Vec::new();
    for (stream, window) in scans {
        let part = match window {
            WindowSpec::Time { visible, advance } => {
                let slices = if advance > 0 && visible > 0 {
                    (visible + advance - 1) / advance
                } else {
                    0
                };
                format!(
                    "`{stream}`: tuples from the last {} ({} slice(s) of {}); \
                     row count bounded by arrival rate x {0}",
                    format_interval(visible),
                    slices.max(1),
                    format_interval(gcd(visible.max(1), advance.max(1))),
                )
            }
            WindowSpec::Rows { visible, .. } => {
                format!("`{stream}`: exactly the last {visible} row(s)")
            }
            WindowSpec::Slices { count } => {
                format!("`{stream}`: the last {count} upstream result batch(es)")
            }
            WindowSpec::Unbounded => {
                format!("`{stream}`: UNBOUNDED — grows with every arrival")
            }
        };
        parts.push(part);
    }
    parts.join("; ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamrel_sql::analyzer::SchemaProvider;
    use streamrel_sql::plan::SchemaRef;
    use streamrel_sql::{parse_statement, Analyzer, RelKind, Statement};
    use streamrel_types::schema::{Column, Schema};

    /// Minimal in-memory catalog: one table plus one base stream whose
    /// CQTIME column sits at position 0.
    struct TestProvider;

    impl SchemaProvider for TestProvider {
        fn relation(&self, name: &str) -> Option<(SchemaRef, RelKind)> {
            let ts = Column::new("ts", DataType::Timestamp);
            match name {
                "hits" => Some((
                    Arc::new(Schema::new_unchecked(vec![
                        ts,
                        Column::new("url", DataType::Text),
                        Column::new("bytes", DataType::Int),
                    ])),
                    RelKind::Stream { cqtime: Some(0) },
                )),
                "sites" => Some((
                    Arc::new(Schema::new_unchecked(vec![
                        Column::new("url", DataType::Text),
                        Column::new("owner", DataType::Text),
                    ])),
                    RelKind::Table,
                )),
                _ => None,
            }
        }
    }

    fn check(sql: &str) -> CheckReport {
        let stmt = parse_statement(sql).expect("parse");
        let Statement::Select(q) = stmt else {
            panic!("not a select")
        };
        let analyzed = Analyzer::new(&TestProvider).analyze(&q).expect("analyze");
        check_plan(&analyzed.plan, &CheckContext::default())
    }

    /// A bare scan with a hand-built window, for shapes the SQL parser
    /// already refuses to produce (defense-in-depth rules).
    fn scan_with(window: WindowSpec) -> LogicalPlan {
        LogicalPlan::StreamScan {
            stream: "hits".to_string(),
            schema: Arc::new(Schema::new_unchecked(vec![Column::new(
                "ts",
                DataType::Timestamp,
            )])),
            window,
            cqtime: Some(0),
            derived: false,
        }
    }

    fn rejected_rule(sql: &str) -> &'static str {
        let report = check(sql);
        report
            .rejection()
            .unwrap_or_else(|| panic!("expected rejection for {sql:?}, got {:?}", report.findings))
            .rule
    }

    fn admitted(sql: &str) -> CheckReport {
        let report = check(sql);
        assert!(
            report.rejection().is_none(),
            "expected admission for {sql:?}, got {:?}",
            report.findings
        );
        report
    }

    // Each rejection rule, paired with the accepted near-miss that
    // differs only in the property the rule checks.

    #[test]
    fn unbounded_stream_rejected() {
        assert_eq!(rejected_rule("select * from hits"), "unbounded-stream");
        admitted("select * from hits <visible 100 rows advance 100 rows>");
    }

    #[test]
    fn unbounded_join_rejected() {
        assert_eq!(
            rejected_rule("select h.url from hits h join sites s on h.url = s.url"),
            "unbounded-join"
        );
        admitted(
            "select h.url from hits <visible '1 minute' advance '1 minute'> h \
             join sites s on h.url = s.url",
        );
    }

    #[test]
    fn unbounded_aggregate_rejected() {
        assert_eq!(
            rejected_rule("select url, count(*) from hits group by url"),
            "unbounded-aggregate"
        );
        admitted(
            "select url, count(*) from hits <visible '1 minute' advance \
             '1 minute'> group by url",
        );
    }

    #[test]
    fn advance_exceeds_visible_rejected() {
        assert_eq!(
            rejected_rule("select count(*) from hits <visible '1 minute' advance '5 minutes'>"),
            "advance-exceeds-visible"
        );
        admitted("select count(*) from hits <visible '5 minutes' advance '1 minute'>");
    }

    #[test]
    fn advance_exceeds_visible_rows_rejected() {
        assert_eq!(
            rejected_rule("select count(*) from hits <visible 10 rows advance 20 rows>"),
            "advance-exceeds-visible"
        );
        admitted("select count(*) from hits <visible 20 rows advance 10 rows>");
    }

    // The parser refuses zero bounds outright, so the never-closing rules
    // are exercised on hand-built plans (they guard programmatic plan
    // construction and future syntax).

    #[test]
    fn zero_advance_time_window_rejected() {
        let plan = scan_with(WindowSpec::Time {
            visible: 60,
            advance: 0,
        });
        let report = check_plan(&plan, &CheckContext::default());
        assert_eq!(
            report.rejection().expect("reject").rule,
            "never-closing-window"
        );
    }

    #[test]
    fn zero_row_window_rejected() {
        let plan = scan_with(WindowSpec::Rows {
            visible: 0,
            advance: 0,
        });
        let report = check_plan(&plan, &CheckContext::default());
        assert_eq!(
            report.rejection().expect("reject").rule,
            "never-closing-window"
        );
    }

    #[test]
    fn zero_slice_window_rejected() {
        let plan = scan_with(WindowSpec::Slices { count: 0 });
        let report = check_plan(&plan, &CheckContext::default());
        assert_eq!(
            report.rejection().expect("reject").rule,
            "never-closing-window"
        );
    }

    #[test]
    fn non_monotonic_sort_warns() {
        let report =
            admitted("select url from hits <visible 100 rows advance 100 rows> order by url");
        assert!(report.findings.iter().any(|f| f.rule == "non-monotonic-op"));
        // Near-miss: sorting the aggregated result is fine.
        let report = admitted(
            "select url, count(*) c from hits <visible 100 rows advance 100 rows> \
             group by url order by c",
        );
        assert!(!report.findings.iter().any(|f| f.rule == "non-monotonic-op"));
    }

    #[test]
    fn unaligned_window_warns() {
        let report =
            admitted("select count(*) from hits <visible '5 minutes' advance '2 minutes'>");
        assert!(report.findings.iter().any(|f| f.rule == "unaligned-window"));
        let report =
            admitted("select count(*) from hits <visible '4 minutes' advance '2 minutes'>");
        assert!(!report.findings.iter().any(|f| f.rule == "unaligned-window"));
    }

    #[test]
    fn snapshot_query_admitted_clean() {
        let report = check("select * from sites");
        assert!(!report.continuous);
        assert!(report.findings.is_empty());
        assert!(report.state_bound.starts_with("none"));
    }

    #[test]
    fn state_bound_mentions_rows() {
        let report = admitted("select count(*) from hits <visible 100 rows advance 100 rows>");
        assert!(
            report.state_bound.contains("100 row(s)"),
            "{}",
            report.state_bound
        );
    }

    #[test]
    fn report_relation_shape() {
        let rel = check("select * from hits").to_relation();
        assert_eq!(rel.schema().columns().len(), 5);
        assert_eq!(rel.schema().column(4).name, "path");
        // query row + verdict row + >=1 finding + state-bound row.
        assert!(rel.len() >= 4);
        // The path column is constant across the report's rows.
        let paths: Vec<&Value> = rel.rows().iter().map(|r| &r[4]).collect();
        assert!(paths.windows(2).all(|w| w[0] == w[1]));
    }

    fn check_with_ivm(sql: &str) -> CheckReport {
        let stmt = parse_statement(sql).expect("parse");
        let Statement::Select(q) = stmt else {
            panic!("not a select")
        };
        let analyzed = Analyzer::new(&TestProvider).analyze(&q).expect("analyze");
        check_plan(
            &analyzed.plan,
            &CheckContext {
                ivm: true,
                ..CheckContext::default()
            },
        )
    }

    #[test]
    fn path_reports_ivm_for_eligible_aggregate() {
        let report = check_with_ivm(
            "select url, count(*) c from hits <visible '2 minutes' \
             advance '1 minute'> group by url",
        );
        assert_eq!(report.path, "ivm");
        assert_eq!(report.ivm_fallback, None);
        assert!(
            report.state_bound.contains("ivm:"),
            "{}",
            report.state_bound
        );
    }

    #[test]
    fn path_reports_reeval_with_reason_for_ineligible_plans() {
        let report = check_with_ivm(
            "select url from hits <visible '1 minute' advance '1 minute'> \
             where url like '/a%'",
        );
        assert_eq!(report.path, "reeval");
        let reason = report.ivm_fallback.expect("fallback reason");
        assert!(reason.contains("anchor"), "{reason}");
        // The reason surfaces as an info row in the relation.
        let rel = report.to_relation();
        assert!(rel
            .rows()
            .iter()
            .any(|r| r[0] == Value::text("info") && r[1] == Value::text("ivm-fallback")));
    }

    #[test]
    fn path_reports_reeval_when_ivm_disabled() {
        let report = check(
            "select url, count(*) c from hits <visible '2 minutes' \
             advance '1 minute'> group by url",
        );
        assert_eq!(report.path, "reeval");
        assert!(report.ivm_fallback.unwrap().contains("disabled"));
    }

    #[test]
    fn snapshot_queries_have_no_path() {
        let report = check_with_ivm("select * from sites");
        assert_eq!(report.path, "-");
        assert_eq!(report.ivm_fallback, None);
    }

    fn check_with_budget(sql: &str, limit: u64, admitted: u64) -> CheckReport {
        let stmt = parse_statement(sql).expect("parse");
        let Statement::Select(q) = stmt else {
            panic!("not a select")
        };
        let analyzed = Analyzer::new(&TestProvider).analyze(&q).expect("analyze");
        check_plan(
            &analyzed.plan,
            &CheckContext {
                budget: Some(StateBudget {
                    limit_bytes: limit,
                    admitted_bytes: admitted,
                }),
                ..CheckContext::default()
            },
        )
    }

    #[test]
    fn state_bound_bytes_computed_for_row_windows() {
        // hits: ts(8) + url(64) + bytes(8) = 80 bytes/row x 100 rows.
        let report = admitted("select count(*) from hits <visible 100 rows advance 100 rows>");
        assert_eq!(report.state_bound_bytes, Some(8_000));
        // Time windows depend on arrival rate: no byte bound.
        let report = admitted("select count(*) from hits <visible '1 minute' advance '1 minute'>");
        assert_eq!(report.state_bound_bytes, None);
        // Snapshot queries hold nothing.
        assert_eq!(check("select * from sites").state_bound_bytes, Some(0));
    }

    #[test]
    fn budget_admits_within_and_rejects_over() {
        // 8000 bytes needed, 10000 available: admitted.
        let report = check_with_budget(
            "select count(*) from hits <visible 100 rows advance 100 rows>",
            10_000,
            0,
        );
        assert!(report.rejection().is_none(), "{:?}", report.findings);
        // Same plan, but 4000 of the 10000 already admitted: rejected.
        let report = check_with_budget(
            "select count(*) from hits <visible 100 rows advance 100 rows>",
            10_000,
            4_000,
        );
        let f = report.rejection().expect("over-budget plan must reject");
        assert_eq!(f.rule, "state-budget");
        assert!(f.message.contains("8000"), "{}", f.message);
    }

    #[test]
    fn budget_rejects_unboundable_plans() {
        let report = check_with_budget(
            "select count(*) from hits <visible '1 minute' advance '1 minute'>",
            1 << 30,
            0,
        );
        assert_eq!(
            report.rejection().expect("reject").rule,
            "state-budget",
            "arrival-rate-dependent state cannot be admitted under a budget"
        );
        // No budget configured: the same plan is admitted.
        admitted("select count(*) from hits <visible '1 minute' advance '1 minute'>");
    }

    #[test]
    fn budget_ignores_snapshot_queries() {
        let report = check_with_budget("select * from sites", 1, 0);
        assert!(report.rejection().is_none());
    }

    #[test]
    fn report_relation_carries_byte_bound() {
        let rel =
            check("select count(*) from hits <visible 100 rows advance 100 rows>").to_relation();
        let bound_row = rel
            .rows()
            .iter()
            .find(|r| r[0] == Value::text("state-bound"))
            .expect("state-bound row");
        let detail = format!("{:?}", bound_row[2]);
        assert!(detail.contains("8000 byte(s)"), "{detail}");
    }

    #[test]
    fn to_error_round_trips_rule() {
        let err = check("select * from hits").to_error().expect("rejection");
        let s = err.to_string();
        assert!(s.contains("unbounded-stream"), "{s}");
        assert!(s.contains("hint:"), "{s}");
    }
}
