//! `streamrel-lint` — run the Level-2 engine-invariant source lint.
//!
//! Usage: `cargo run -p streamrel-check --bin streamrel-lint [-- <flags>] [<root>]`
//!
//! Scans `crates/`, `shims/` and `src/` under the workspace root (default:
//! the workspace containing this crate), applies the rules documented in
//! DESIGN.md §8, honors the `lint.allow` burndown file, and exits non-zero
//! on any violation or stale allowlist entry — CI wires this into the
//! `lint` job. The run includes the whole-workspace lock-graph pass
//! (DESIGN.md §14).
//!
//! Flags:
//!
//! * `--lock-graph` — print the merged workspace lock-acquisition graph
//!   as GraphViz DOT (declared edges solid, observed edges dashed) and
//!   exit. Exits non-zero if the graph has a cycle.
//! * `--update-lock-graph` — regenerate
//!   `crates/check/src/lock_graph.gen.rs` from the sources and exit.
//!   Refuses while the graph is cyclic.

#![deny(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;
use streamrel_check::{lint, lock_graph};

fn main() -> ExitCode {
    let mut dot = false;
    let mut update = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--lock-graph" => dot = true,
            "--update-lock-graph" => update = true,
            other => root = Some(PathBuf::from(other)),
        }
    }
    let root = root.unwrap_or_else(|| {
        // crates/check -> workspace root.
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
    });

    if dot || update {
        let report = match lock_graph::analyze(&root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("streamrel-lint: cannot scan {}: {e}", root.display());
                return ExitCode::FAILURE;
            }
        };
        let cyclic = report
            .violations
            .iter()
            .any(|v| v.rule == "lock-cycle" || v.rule == "lock-graph-inversion");
        // Staleness is what --update-lock-graph fixes (and --lock-graph
        // doesn't check); only cycle/inversion violations are printed.
        for v in report
            .violations
            .iter()
            .filter(|v| v.rule != "lock-graph-stale")
        {
            eprintln!("{v}");
        }
        if dot {
            print!("{}", report.to_dot());
            return if cyclic {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            };
        }
        if cyclic {
            eprintln!("streamrel-lint: refusing to regenerate while the graph is cyclic");
            return ExitCode::FAILURE;
        }
        let path = root.join(lock_graph::GEN_PATH);
        if let Err(e) = std::fs::write(&path, report.to_gen_source()) {
            eprintln!("streamrel-lint: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "streamrel-lint: wrote {} ({} lock(s), {} edge(s))",
            lock_graph::GEN_PATH,
            report.order.len(),
            report.graph.edges.len()
        );
        return ExitCode::SUCCESS;
    }

    let report = match lint::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("streamrel-lint: cannot scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    for v in &report.violations {
        println!("{v}");
    }
    for s in &report.stale {
        println!("lint.allow: stale entry `{s}` matches nothing — remove it");
    }
    println!(
        "streamrel-lint: {} file(s) scanned, {} violation(s), {} allowed, {} stale",
        report.files_scanned,
        report.violations.len(),
        report.allowed,
        report.stale.len()
    );
    if report.failed() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
