//! `streamrel-lint` — run the Level-2 engine-invariant source lint.
//!
//! Usage: `cargo run -p streamrel-check --bin streamrel-lint [-- <root>]`
//!
//! Scans `crates/`, `shims/` and `src/` under the workspace root (default:
//! the workspace containing this crate), applies the rules documented in
//! DESIGN.md §8, honors the `lint.allow` burndown file, and exits non-zero
//! on any violation or stale allowlist entry — CI wires this into the
//! `lint` job.

#![deny(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;
use streamrel_check::lint;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            // crates/check -> workspace root.
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
        });
    let report = match lint::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("streamrel-lint: cannot scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    for v in &report.violations {
        println!("{v}");
    }
    for s in &report.stale {
        println!("lint.allow: stale entry `{s}` matches nothing — remove it");
    }
    println!(
        "streamrel-lint: {} file(s) scanned, {} violation(s), {} allowed, {} stale",
        report.files_scanned,
        report.violations.len(),
        report.allowed,
        report.stale.len()
    );
    if report.failed() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
