//! Level 2: the self-hosted engine-invariant source lint.
//!
//! A deliberately simple token/line-level scanner over the workspace's own
//! Rust sources — no external parser, no network, no build artifacts — so
//! it runs identically offline and in CI. It enforces invariants the
//! compiler cannot see:
//!
//! * **`no-unwrap`** — no `.unwrap()` / `.expect(` in non-test code of the
//!   I/O crates (`crates/storage`, `crates/net`, `crates/core`). A panic
//!   in a storage or wire path takes down every standing CQ at once.
//! * **`lock-order`** — files declare their mutex acquisition order in a
//!   `// lock-order: a < b < c` comment; every function's `.lock()` sites
//!   are checked against the declaration. Out-of-order acquisition is the
//!   only deadlock source the engine has.
//! * **`undeclared-lock-order`** — a non-test function that acquires two
//!   or more distinct locks in a file with *no* `// lock-order:`
//!   declaration. Nested acquisition with no declared order is how the
//!   shard/pool locks would silently grow deadlock potential.
//! * **`relaxed-ordering`** — `Ordering::Relaxed` is allowed only in
//!   `crates/obs` (metrics counters, where staleness is acceptable), and
//!   even there only for *counter-style* atomics: a receiver that pairs a
//!   Relaxed `.store(` with a Relaxed `.load(` and never goes through a
//!   `fetch_*` RMW is a cross-thread handoff, which Relaxed cannot
//!   synchronize — flagged everywhere. Allowlist entries for this rule
//!   must carry a `-- justification` suffix.
//! * **`condvar-wait-loop`** — `Condvar::wait`/`wait_for`/`wait_while`
//!   sites in `crates/` must sit inside a `while`/`loop`/`for` guard (a
//!   condvar wake is a hint, not a proof — spurious wakeups and stolen
//!   wakes require re-checking the predicate), or carry a
//!   `// lint: wait-ok(reason)` justification.
//! * **`reserved-prefix`** — the reserved `streamrel_` catalog prefix may
//!   be hardcoded only at its definition/enforcement sites; everything
//!   else must go through `streamrel_obs::RESERVED_PREFIX`.
//! * **`deny-unsafe`** — every crate root carries `#![deny(unsafe_code)]`
//!   or a documented `lint: allow-unsafe(reason)` exception comment.
//!
//! On top of the per-file rules, [`run`] also executes the
//! whole-workspace lock-graph analysis (see [`crate::lock_graph`]):
//! rules `lock-cycle`, `lock-graph-inversion`, and `lock-graph-stale`.
//!
//! Violations can be burned down via the `lint.allow` file at the repo
//! root (`<rule-id> <path> [-- justification]` per line). Entries that no
//! longer match anything **fail the lint** — the allowlist can only
//! shrink — and `relaxed-ordering` entries without a justification are
//! rejected.

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crate subtrees where `.unwrap()` / `.expect(` are forbidden outside
/// tests.
const NO_UNWRAP_SCOPES: &[&str] = &[
    "crates/storage/src/",
    "crates/net/src/",
    "crates/core/src/",
    "crates/ivm/src/",
];

/// Files allowed to hardcode the reserved catalog prefix: its definition
/// (`crates/obs`), the enforcement site, and this lint's own rule table.
const RESERVED_PREFIX_SITES: &[&str] = &["crates/core/src/provider.rs", "crates/check/src/lint.rs"];

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable rule identifier.
    pub rule: &'static str,
    /// Repo-relative path (unix separators).
    pub path: String,
    /// 1-based line number (0 for whole-file rules).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Result of a full lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Violations not covered by the allowlist.
    pub violations: Vec<Violation>,
    /// Violations suppressed by allowlist entries.
    pub allowed: usize,
    /// Allowlist entries that matched nothing (these fail the run).
    pub stale: Vec<String>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// True when CI should fail.
    pub fn failed(&self) -> bool {
        !self.violations.is_empty() || !self.stale.is_empty()
    }
}

/// Run the lint over a workspace root.
pub fn run(root: &Path) -> io::Result<LintReport> {
    let allow = parse_allowlist(&fs::read_to_string(root.join("lint.allow")).unwrap_or_default());
    let mut files = Vec::new();
    for top in ["crates", "shims", "src"] {
        collect_rs(&root.join(top), &mut files)?;
    }
    files.sort();
    let mut report = LintReport::default();
    let mut used: BTreeSet<usize> = BTreeSet::new();
    let mut found: Vec<Violation> = Vec::new();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let content = fs::read_to_string(file)?;
        report.files_scanned += 1;
        found.extend(lint_file(&rel, &content));
    }
    // Whole-workspace lock-graph pass (cycles, inversions, staleness).
    found.extend(crate::lock_graph::analyze(root)?.violations);
    for v in found {
        match allow
            .iter()
            .position(|e| e.rule == v.rule && e.path == v.path && e.usable())
        {
            Some(i) => {
                used.insert(i);
                report.allowed += 1;
            }
            None => report.violations.push(v),
        }
    }
    for (i, e) in allow.iter().enumerate() {
        if !e.usable() {
            report.stale.push(format!(
                "{} {} (entries for this rule need a `-- justification` suffix)",
                e.rule, e.path
            ));
        } else if !used.contains(&i) {
            report.stale.push(format!("{} {}", e.rule, e.path));
        }
    }
    Ok(report)
}

pub(crate) fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().map(|n| n.to_string_lossy().to_string());
        let name = name.as_deref().unwrap_or("");
        if path.is_dir() {
            if name != "target" && !name.starts_with('.') {
                collect_rs(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// One parsed `lint.allow` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct AllowEntry {
    pub rule: String,
    pub path: String,
    /// Text after a `--` separator, if any.
    pub justification: Option<String>,
}

/// Rules whose allowlist entries must carry a `-- justification`.
const JUSTIFIED_RULES: &[&str] = &["relaxed-ordering"];

impl AllowEntry {
    /// False when the entry is rejected for missing its justification.
    fn usable(&self) -> bool {
        self.justification.is_some() || !JUSTIFIED_RULES.contains(&self.rule.as_str())
    }
}

/// Parse `lint.allow` text: `#` comments, blank lines, and
/// `<rule> <path> [-- justification]` entries.
fn parse_allowlist(text: &str) -> Vec<AllowEntry> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (entry, justification) = match l.split_once("--") {
                Some((e, j)) => (e.trim(), Some(j.trim().to_string())),
                None => (l, None),
            };
            let (rule, path) = entry.split_once(char::is_whitespace)?;
            Some(AllowEntry {
                rule: rule.to_string(),
                path: path.trim().to_string(),
                justification: justification.filter(|j| !j.is_empty()),
            })
        })
        .collect()
}

/// Split one source line into (code with string contents blanked,
/// concatenated string-literal contents).
pub(crate) fn split_strings(line: &str) -> (String, String) {
    let mut code = String::with_capacity(line.len());
    let mut strings = String::new();
    let mut in_str = false;
    let mut escaped = false;
    let mut prev = '\0';
    for c in line.chars() {
        if !in_str && c == '/' && prev == '/' {
            code.pop(); // drop the first slash of the trailing comment
            break;
        }
        prev = c;
        if in_str {
            if escaped {
                escaped = false;
                strings.push(c);
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
                code.push('"');
            } else {
                strings.push(c);
            }
        } else if c == '"' {
            in_str = true;
            code.push('"');
            strings.push(' ');
        } else {
            code.push(c);
        }
    }
    (code, strings)
}

/// True for lines that are only a comment (the scanner skips them).
pub(crate) fn is_comment(line: &str) -> bool {
    let t = line.trim_start();
    t.starts_with("//") || t.starts_with("/*") || t.starts_with('*')
}

/// Index of the first line starting the `#[cfg(test)]` region, if any.
/// Everything at or after it is test code. This matches the repo-wide
/// convention of one trailing inline test module per file.
pub(crate) fn test_region_start(lines: &[&str]) -> usize {
    lines
        .iter()
        .position(|l| l.trim() == "#[cfg(test)]")
        .unwrap_or(lines.len())
}

/// Whether a path is a crate root (lib or binary) for the `deny-unsafe`
/// rule. Each `src/bin/*.rs` file is its own crate root under cargo, so
/// a `deny` in the sibling `lib.rs` does not cover it.
fn is_crate_root(rel: &str) -> bool {
    rel == "src/lib.rs"
        || rel.ends_with("/src/lib.rs")
        || rel.contains("/src/bin/")
        || rel.starts_with("src/bin/")
}

/// Extract receiver identifiers before each occurrence of `pat`: the
/// last dot-separated path segment (`self.inner.lock()` with pat
/// `.lock()` → `inner`, `g.lock()` → `g`).
fn receivers_of(code: &str, pat: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = code;
    while let Some(i) = rest.find(pat) {
        let head = &rest[..i];
        let seg: String = head
            .chars()
            .rev()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        let seg: String = seg.chars().rev().collect();
        if !seg.is_empty() {
            out.push(seg);
        }
        rest = &rest[i + pat.len()..];
    }
    out
}

/// Receivers of `.lock()` calls on one line of blanked code.
fn lock_receivers(code: &str) -> Vec<String> {
    receivers_of(code, ".lock()")
}

/// Lint a single file's content. `rel` is the repo-relative unix path.
pub fn lint_file(rel: &str, content: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let lines: Vec<&str> = content.lines().collect();
    let test_start = test_region_start(&lines);

    let in_crates = rel.starts_with("crates/");
    let no_unwrap = NO_UNWRAP_SCOPES.iter().any(|s| rel.starts_with(s));
    let relaxed_ok = rel.starts_with("crates/obs/");
    let prefix_ok =
        !in_crates || rel.starts_with("crates/obs/") || RESERVED_PREFIX_SITES.contains(&rel);

    // Collect this file's declared lock order first. Only a line that is
    // exactly the annotation comment counts — prose mentions don't.
    let mut order: Vec<String> = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if let Some(rest) = line.trim_start().strip_prefix("// lock-order:") {
            let names: Vec<String> = rest
                .split('<')
                .map(|n| n.trim().to_string())
                .filter(|n| !n.is_empty())
                .collect();
            if order.is_empty() {
                order = names;
            } else if order != names {
                out.push(Violation {
                    rule: "lock-order",
                    path: rel.to_string(),
                    line: idx + 1,
                    message: "conflicting lock-order declarations in one file".to_string(),
                });
            }
        }
    }

    // Pre-pass for the relaxed-ordering handoff extension: a receiver
    // with a Relaxed `.store(` AND a Relaxed `.load(` that never goes
    // through a `fetch_*` RMW is a cross-thread handoff pair, not a
    // counter — Relaxed gives it no happens-before edge.
    let mut relaxed_stores: BTreeSet<String> = BTreeSet::new();
    let mut relaxed_loads: BTreeSet<String> = BTreeSet::new();
    let mut rmw_receivers: BTreeSet<String> = BTreeSet::new();
    if in_crates {
        for line in lines.iter().take(test_start) {
            if is_comment(line) {
                continue;
            }
            let (code, _) = split_strings(line);
            rmw_receivers.extend(receivers_of(&code, ".fetch_"));
            if code.contains("Ordering::Relaxed") {
                relaxed_stores.extend(receivers_of(&code, ".store("));
                relaxed_loads.extend(receivers_of(&code, ".load("));
            }
        }
    }
    let handoff = |code: &str| -> Option<String> {
        receivers_of(code, ".store(")
            .into_iter()
            .chain(receivers_of(code, ".load("))
            .find(|r| {
                relaxed_stores.contains(r)
                    && relaxed_loads.contains(r)
                    && !rmw_receivers.contains(r)
            })
    };

    // Per-function furthest lock position seen so far.
    let mut max_pos: Option<usize> = None;
    // Per-function distinct lock receivers (for files with no declared
    // order), and whether this function was already reported.
    let mut fn_locks: Vec<String> = Vec::new();
    let mut fn_reported = false;
    // Loop-nesting stack for `condvar-wait-loop`: one bool per open
    // brace, true when the brace belongs to a `while`/`loop`/`for`.
    let mut loop_stack: Vec<bool> = Vec::new();

    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let in_test = idx >= test_start;
        if is_comment(line) {
            continue;
        }
        let (code, strings) = split_strings(line);

        if !in_test {
            if no_unwrap && (code.contains(".unwrap()") || code.contains(".expect(")) {
                out.push(Violation {
                    rule: "no-unwrap",
                    path: rel.to_string(),
                    line: lineno,
                    message: "`.unwrap()`/`.expect()` in I/O crate non-test \
                              code; return a typed error instead"
                        .to_string(),
                });
            }
            if in_crates && code.contains("Ordering::Relaxed") {
                if !relaxed_ok {
                    out.push(Violation {
                        rule: "relaxed-ordering",
                        path: rel.to_string(),
                        line: lineno,
                        message: "`Ordering::Relaxed` outside crates/obs; use \
                                  SeqCst or justify in crates/obs"
                            .to_string(),
                    });
                } else if let Some(recv) = handoff(&code) {
                    out.push(Violation {
                        rule: "relaxed-ordering",
                        path: rel.to_string(),
                        line: lineno,
                        message: format!(
                            "`{recv}` is a Relaxed store/load handoff pair \
                             (no fetch_* RMW); Relaxed provides no \
                             happens-before — use Acquire/Release"
                        ),
                    });
                }
            }
            if !prefix_ok && strings.contains("streamrel_") {
                out.push(Violation {
                    rule: "reserved-prefix",
                    path: rel.to_string(),
                    line: lineno,
                    message: "hardcoded reserved prefix; use \
                              streamrel_obs::RESERVED_PREFIX"
                        .to_string(),
                });
            }
            let t = code.trim_start();
            if t.starts_with("fn ") || code.contains(" fn ") {
                max_pos = None;
                fn_locks.clear();
                fn_reported = false;
                loop_stack.clear();
            }
            // `condvar-wait-loop`: a wait outside any loop construct. The
            // line carrying the loop keyword counts as inside it.
            let loopish = code.contains("while ")
                || code.contains("for ")
                || t.starts_with("loop")
                || code.contains(" loop ");
            if in_crates
                && [".wait(", ".wait_for(", ".wait_while("]
                    .iter()
                    .any(|p| code.contains(p))
                && !loopish
                && !loop_stack.iter().any(|&b| b)
                && !line.contains("lint: wait-ok")
            {
                out.push(Violation {
                    rule: "condvar-wait-loop",
                    path: rel.to_string(),
                    line: lineno,
                    message: "condvar wait outside a `while`/`loop` guard; \
                              spurious wakeups require re-checking the \
                              predicate (or add `// lint: wait-ok(reason)`)"
                        .to_string(),
                });
            }
            for c in code.chars() {
                match c {
                    '{' => loop_stack.push(loopish),
                    '}' => {
                        loop_stack.pop();
                    }
                    _ => {}
                }
            }
            if order.is_empty() && in_crates {
                for recv in lock_receivers(&code) {
                    if !fn_locks.contains(&recv) {
                        fn_locks.push(recv);
                    }
                    if fn_locks.len() >= 2 && !fn_reported && !line.contains("lint: lock-order-ok")
                    {
                        fn_reported = true;
                        out.push(Violation {
                            rule: "undeclared-lock-order",
                            path: rel.to_string(),
                            line: lineno,
                            message: format!(
                                "function acquires `{}` with no `// lock-order:` \
                                 declaration in this file",
                                fn_locks.join("` and `")
                            ),
                        });
                    }
                }
            }
            if !order.is_empty() {
                for recv in lock_receivers(&code) {
                    if let Some(pos) = order.iter().position(|n| *n == recv) {
                        if let Some(prev) = max_pos {
                            if pos < prev && !line.contains("lint: lock-order-ok") {
                                out.push(Violation {
                                    rule: "lock-order",
                                    path: rel.to_string(),
                                    line: lineno,
                                    message: format!(
                                        "`{recv}` acquired after `{}`, against \
                                         the declared order `{}`",
                                        order[prev],
                                        order.join(" < ")
                                    ),
                                });
                            }
                        }
                        max_pos = Some(max_pos.map_or(pos, |p| p.max(pos)));
                    }
                }
            }
        }
    }

    if is_crate_root(rel)
        && !content.contains("#![deny(unsafe_code)]")
        && !content.contains("lint: allow-unsafe(")
    {
        out.push(Violation {
            rule: "deny-unsafe",
            path: rel.to_string(),
            line: 0,
            message: "crate root lacks `#![deny(unsafe_code)]` (or a \
                      documented `lint: allow-unsafe(reason)` exception)"
                .to_string(),
        });
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(rel: &str, src: &str) -> Vec<&'static str> {
        lint_file(rel, src).into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn unwrap_flagged_in_io_crates_only() {
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(
            rules_of("crates/storage/src/wal.rs", src),
            vec!["no-unwrap"]
        );
        assert_eq!(rules_of("crates/net/src/server.rs", src), vec!["no-unwrap"]);
        assert!(rules_of("crates/exec/src/expr.rs", src).is_empty());
    }

    #[test]
    fn expect_flagged() {
        let src = "fn f() { x.expect(\"boom\"); }\n";
        assert_eq!(rules_of("crates/core/src/db.rs", src), vec!["no-unwrap"]);
    }

    #[test]
    fn unwrap_in_test_region_allowed() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n fn g() { x.unwrap(); }\n}\n";
        assert!(rules_of("crates/storage/src/wal.rs", src).is_empty());
    }

    #[test]
    fn unwrap_inside_string_or_comment_ignored() {
        let src = "fn f() { let s = \".unwrap()\"; } // .unwrap()\n// x.unwrap()\n";
        assert!(rules_of("crates/storage/src/wal.rs", src).is_empty());
    }

    #[test]
    fn relaxed_ordering_scoped_to_obs() {
        let src = "fn f() { c.fetch_add(1, Ordering::Relaxed); }\n";
        assert_eq!(
            rules_of("crates/net/src/server.rs", src),
            vec!["relaxed-ordering"]
        );
        assert!(rules_of("crates/obs/src/metrics.rs", src).is_empty());
        assert!(rules_of("shims/crossbeam/src/channel.rs", src).is_empty());
    }

    #[test]
    fn reserved_prefix_flagged_outside_definition_sites() {
        let src = "fn f() { let n = \"streamrel_sneaky\"; }\n";
        assert_eq!(
            rules_of("crates/core/src/db.rs", src),
            vec!["reserved-prefix"]
        );
        assert!(rules_of("crates/core/src/provider.rs", src).is_empty());
        assert!(rules_of("crates/obs/src/metrics.rs", src).is_empty());
        // In code position (an identifier, e.g. a crate name) it is fine.
        let code = "use streamrel_obs::RESERVED_PREFIX;\n";
        assert!(rules_of("crates/core/src/db.rs", code).is_empty());
    }

    #[test]
    fn lock_order_violation_detected() {
        let src = "// lock-order: inner < g\n\
                   fn ok(&self) { let a = self.inner.lock(); let b = g.lock(); }\n\
                   fn bad(&self) { let b = g.lock(); let a = self.inner.lock(); }\n";
        assert_eq!(rules_of("crates/core/src/db.rs", src), vec!["lock-order"]);
    }

    #[test]
    fn lock_order_resets_per_function() {
        let src = "// lock-order: a < b\n\
                   fn f() { b.lock(); }\n\
                   fn g() { a.lock(); b.lock(); }\n";
        assert!(rules_of("crates/core/src/db.rs", src).is_empty());
    }

    #[test]
    fn undeclared_multi_lock_function_flagged() {
        // Two distinct locks in one function, no declaration: violation.
        let src = "fn f(&self) { self.a.lock(); self.b.lock(); }\n";
        assert_eq!(
            rules_of("crates/cq/src/pool.rs", src),
            vec!["undeclared-lock-order"]
        );
        // One lock per function is fine without a declaration.
        let src = "fn f(&self) { self.a.lock(); }\nfn g(&self) { self.b.lock(); }\n";
        assert!(rules_of("crates/cq/src/pool.rs", src).is_empty());
        // A declaration satisfies the rule (and takes over checking).
        let src = "// lock-order: a < b\n\
                   fn f(&self) { self.a.lock(); self.b.lock(); }\n";
        assert!(rules_of("crates/cq/src/pool.rs", src).is_empty());
        // Repeatedly taking the same lock is not a multi-lock function.
        let src = "fn f(&self) { self.a.lock(); self.a.lock(); }\n";
        assert!(rules_of("crates/cq/src/pool.rs", src).is_empty());
    }

    #[test]
    fn conflicting_lock_order_declarations_flagged() {
        let src = "// lock-order: a < b\n// lock-order: b < a\nfn f() {}\n";
        assert_eq!(rules_of("crates/core/src/db.rs", src), vec!["lock-order"]);
    }

    #[test]
    fn deny_unsafe_required_in_crate_roots() {
        assert_eq!(
            rules_of("crates/exec/src/lib.rs", "pub fn f() {}\n"),
            vec!["deny-unsafe"]
        );
        assert!(rules_of(
            "crates/exec/src/lib.rs",
            "#![deny(unsafe_code)]\npub fn f() {}\n"
        )
        .is_empty());
        // Documented exception accepted.
        assert!(rules_of(
            "shims/parking_lot/src/lib.rs",
            "// lint: allow-unsafe(guard hand-off needs raw ptr)\npub fn f() {}\n"
        )
        .is_empty());
        // Non-roots don't need it.
        assert!(rules_of("crates/exec/src/expr.rs", "pub fn f() {}\n").is_empty());
    }

    #[test]
    fn allowlist_parses_and_ignores_comments() {
        let allow = parse_allowlist("# comment\n\nno-unwrap crates/storage/src/wal.rs\n");
        assert_eq!(
            allow,
            vec![AllowEntry {
                rule: "no-unwrap".to_string(),
                path: "crates/storage/src/wal.rs".to_string(),
                justification: None,
            }]
        );
    }

    #[test]
    fn allowlist_justification_suffix_parses() {
        let allow = parse_allowlist(
            "relaxed-ordering crates/x/src/a.rs -- seqlock readers tolerate tears\n",
        );
        assert_eq!(allow.len(), 1);
        assert_eq!(allow[0].rule, "relaxed-ordering");
        assert_eq!(allow[0].path, "crates/x/src/a.rs");
        assert_eq!(
            allow[0].justification.as_deref(),
            Some("seqlock readers tolerate tears")
        );
        assert!(allow[0].usable());
        // relaxed-ordering without a justification is rejected; other
        // rules don't need one.
        let bare = parse_allowlist("relaxed-ordering crates/x/src/a.rs\n");
        assert!(!bare[0].usable());
        let other = parse_allowlist("no-unwrap crates/x/src/a.rs\n");
        assert!(other[0].usable());
    }

    #[test]
    fn condvar_wait_outside_loop_flagged() {
        // Bare wait in straight-line code: violation.
        let src = "fn f(&self) {\n    let mut g = self.m.lock();\n    self.cv.wait(&mut g);\n}\n";
        assert_eq!(
            rules_of("crates/cq/src/pool.rs", src),
            vec!["condvar-wait-loop"]
        );
        // Inside a `while` guard: fine.
        let src = "fn f(&self) {\n    let mut g = self.m.lock();\n    while !*g {\n        self.cv.wait(&mut g);\n    }\n}\n";
        assert!(rules_of("crates/cq/src/pool.rs", src).is_empty());
        // Inside a `loop`: fine.
        let src = "fn f(&self) {\n    let mut g = self.m.lock();\n    loop {\n        if *g { break; }\n        self.cv.wait_for(&mut g, t);\n    }\n}\n";
        assert!(rules_of("crates/cq/src/pool.rs", src).is_empty());
        // Justified single wait: fine.
        let src = "fn f(&self) {\n    let mut g = self.m.lock();\n    // lint: wait-ok(caller re-checks generation)\n    self.cv.wait(&mut g); // lint: wait-ok(caller re-checks generation)\n}\n";
        assert!(rules_of("crates/cq/src/pool.rs", src).is_empty());
        // Shims (the Condvar implementation itself) are out of scope.
        let src = "fn f(&self) { self.0.wait(g); }\n";
        assert!(rules_of("shims/parking_lot/src/lib.rs", src)
            .iter()
            .all(|r| *r != "condvar-wait-loop"));
    }

    #[test]
    fn relaxed_handoff_pair_flagged_even_in_obs() {
        // store+load pair with no RMW: a handoff — flagged in obs too.
        let src = "fn set(&self) { self.flag.store(1, Ordering::Relaxed); }\n\
                   fn get(&self) -> u64 { self.flag.load(Ordering::Relaxed) }\n";
        let rules = rules_of("crates/obs/src/metrics.rs", src);
        assert_eq!(rules, vec!["relaxed-ordering", "relaxed-ordering"]);
        // A counter (fetch_add + load) stays allowed in obs.
        let src = "fn inc(&self) { self.v.fetch_add(1, Ordering::Relaxed); }\n\
                   fn get(&self) -> u64 { self.v.load(Ordering::Relaxed) }\n";
        assert!(rules_of("crates/obs/src/metrics.rs", src).is_empty());
        // A gauge that also goes through fetch_sub keeps its store/load.
        let src = "fn set(&self) { self.v.store(1, Ordering::Relaxed); }\n\
                   fn dec(&self) { self.v.fetch_sub(1, Ordering::Relaxed); }\n\
                   fn get(&self) -> u64 { self.v.load(Ordering::Relaxed) }\n";
        assert!(rules_of("crates/obs/src/metrics.rs", src).is_empty());
    }
}
