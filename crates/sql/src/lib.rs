//! TruSQL-style SQL front-end.
//!
//! Implements the paper's language design (§3): standard SQL with *minimal
//! extensions* — streams as ordered unbounded relations, window clauses on
//! stream references, `CREATE STREAM`, `CREATE STREAM ... AS` (derived
//! streams), `CREATE CHANNEL ... INTO ... APPEND|REPLACE`, and the
//! `cq_close(*)` window-close function. Queries over tables alone are
//! snapshot queries (SQ); any query touching a stream is a continuous query
//! (CQ), per §3.1.
//!
//! Pipeline: [`lexer`] → [`parser`] (AST in [`ast`]) → [`analyzer`]
//! (name/type binding, view inlining) → [`plan`] (logical plan consumed by
//! `streamrel-exec` and `streamrel-cq`).

#![deny(unsafe_code)]

pub mod analyzer;
pub mod ast;
pub mod lexer;
pub mod optimizer;
pub mod parser;
pub mod plan;

pub use analyzer::{AnalyzedQuery, Analyzer, RelKind, SchemaProvider};
pub use ast::{ChannelMode, Statement, WindowSpec};
pub use parser::{parse_statement, parse_statements};
pub use plan::{AggFunc, AggSpec, BinaryOp, BoundExpr, LogicalPlan, ScalarFunc, UnaryOp};
