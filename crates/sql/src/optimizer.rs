//! Logical-plan rewrites.
//!
//! A deliberately small rule set — the ones the paper's workloads actually
//! need:
//!
//! 1. **Filter-into-join**: `Filter(Join_{inner/cross})` merges the filter
//!    into the join's ON clause so equi-conditions written in WHERE
//!    (comma-join style, as in the paper's Example 5) reach the hash /
//!    index join paths.
//! 2. **Predicate pushdown**: conjuncts referencing only one join side
//!    move below the join (left side of LEFT joins included; pushing into
//!    the null-padded right of a LEFT join would change semantics and is
//!    not done).

use crate::plan::{BinaryOp, BoundExpr, JoinKind, LogicalPlan};
use streamrel_types::DataType;

/// Apply all rewrite rules bottom-up until stable.
pub fn optimize(plan: LogicalPlan) -> LogicalPlan {
    let mut plan = rewrite(plan);
    // One extra pass: merging a filter can expose new pushdown chances.
    for _ in 0..2 {
        plan = rewrite(plan);
    }
    plan
}

fn rewrite(plan: LogicalPlan) -> LogicalPlan {
    // Recurse first (bottom-up).
    let plan = match plan {
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(rewrite(*input)),
            predicate,
        },
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => LogicalPlan::Project {
            input: Box::new(rewrite(*input)),
            exprs,
            schema,
        },
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            aggs,
            schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(rewrite(*input)),
            group_exprs,
            aggs,
            schema,
        },
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            schema,
        } => LogicalPlan::Join {
            left: Box::new(rewrite(*left)),
            right: Box::new(rewrite(*right)),
            kind,
            on,
            schema,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(rewrite(*input)),
            keys,
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(rewrite(*input)),
            n,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(rewrite(*input)),
        },
        leaf => leaf,
    };

    // Rule 1: Filter over an inner/cross join → merge into ON.
    let plan = match plan {
        LogicalPlan::Filter { input, predicate } => match *input {
            LogicalPlan::Join {
                left,
                right,
                kind: kind @ (JoinKind::Inner | JoinKind::Cross),
                on,
                schema,
            } => {
                let merged = match on {
                    Some(existing) => and(existing, predicate),
                    None => predicate,
                };
                let _ = kind;
                LogicalPlan::Join {
                    left,
                    right,
                    kind: JoinKind::Inner,
                    on: Some(merged),
                    schema,
                }
            }
            other => LogicalPlan::Filter {
                input: Box::new(other),
                predicate,
            },
        },
        other => other,
    };

    // Rule 2: push single-side ON conjuncts below the join.
    match plan {
        LogicalPlan::Join {
            left,
            right,
            kind,
            on: Some(on),
            schema,
        } => {
            let left_width = left.schema().len();
            let mut conjuncts = Vec::new();
            flatten_and(&on, &mut conjuncts);
            let mut keep = Vec::new();
            let mut push_left = Vec::new();
            let mut push_right = Vec::new();
            for c in conjuncts {
                let mut cols = Vec::new();
                c.referenced_columns(&mut cols);
                let all_left = !cols.is_empty() && cols.iter().all(|&i| i < left_width);
                let all_right = !cols.is_empty() && cols.iter().all(|&i| i >= left_width);
                if all_left && kind != JoinKind::Left {
                    // (For LEFT joins, an ON condition on the left side is
                    // match-qualification, not a filter; keep it in ON.)
                    push_left.push(c);
                } else if all_left && kind == JoinKind::Left {
                    keep.push(c);
                } else if all_right && kind != JoinKind::Left {
                    push_right.push(c);
                } else {
                    keep.push(c);
                }
            }
            let left = wrap_filter(*left, push_left, 0);
            let right = wrap_filter(*right, push_right, left_width);
            let on = keep.into_iter().reduce(and);
            LogicalPlan::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                on,
                schema,
            }
        }
        other => other,
    }
}

fn and(a: BoundExpr, b: BoundExpr) -> BoundExpr {
    BoundExpr::Binary {
        op: BinaryOp::And,
        left: Box::new(a),
        right: Box::new(b),
        ty: DataType::Bool,
    }
}

fn flatten_and(e: &BoundExpr, out: &mut Vec<BoundExpr>) {
    if let BoundExpr::Binary {
        op: BinaryOp::And,
        left,
        right,
        ..
    } = e
    {
        flatten_and(left, out);
        flatten_and(right, out);
    } else {
        out.push(e.clone());
    }
}

fn wrap_filter(plan: LogicalPlan, mut preds: Vec<BoundExpr>, shift: usize) -> LogicalPlan {
    if preds.is_empty() {
        return plan;
    }
    if shift > 0 {
        for p in &mut preds {
            shift_columns_down(p, shift);
        }
    }
    let predicate = preds.into_iter().reduce(and).expect("non-empty");
    LogicalPlan::Filter {
        input: Box::new(plan),
        predicate,
    }
}

fn shift_columns_down(e: &mut BoundExpr, shift: usize) {
    match e {
        BoundExpr::Column { index, .. } => *index -= shift,
        BoundExpr::Literal(_) | BoundExpr::CqClose => {}
        BoundExpr::Unary { expr, .. }
        | BoundExpr::Cast { expr, .. }
        | BoundExpr::IsNull { expr, .. } => shift_columns_down(expr, shift),
        BoundExpr::Binary { left, right, .. } => {
            shift_columns_down(left, shift);
            shift_columns_down(right, shift);
        }
        BoundExpr::Like { expr, pattern, .. } => {
            shift_columns_down(expr, shift);
            shift_columns_down(pattern, shift);
        }
        BoundExpr::InList { expr, list, .. } => {
            shift_columns_down(expr, shift);
            for i in list {
                shift_columns_down(i, shift);
            }
        }
        BoundExpr::Case {
            operand,
            whens,
            else_expr,
            ..
        } => {
            if let Some(o) = operand {
                shift_columns_down(o, shift);
            }
            for (c, r) in whens {
                shift_columns_down(c, shift);
                shift_columns_down(r, shift);
            }
            if let Some(el) = else_expr {
                shift_columns_down(el, shift);
            }
        }
        BoundExpr::ScalarFunc { args, .. } => {
            for a in args {
                shift_columns_down(a, shift);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SortKey;
    use std::sync::Arc;
    use streamrel_types::{Column, Schema, Value};

    fn scan(name: &str, cols: &[&str]) -> LogicalPlan {
        LogicalPlan::TableScan {
            table: name.into(),
            schema: Arc::new(Schema::new_unchecked(
                cols.iter()
                    .map(|c| Column::new(*c, DataType::Int))
                    .collect(),
            )),
        }
    }

    fn col(i: usize) -> BoundExpr {
        BoundExpr::Column {
            index: i,
            ty: DataType::Int,
        }
    }

    fn eq(l: BoundExpr, r: BoundExpr) -> BoundExpr {
        BoundExpr::Binary {
            op: BinaryOp::Eq,
            left: Box::new(l),
            right: Box::new(r),
            ty: DataType::Bool,
        }
    }

    fn cross(l: LogicalPlan, r: LogicalPlan) -> LogicalPlan {
        let schema = Arc::new(l.schema().join(&r.schema()));
        LogicalPlan::Join {
            left: Box::new(l),
            right: Box::new(r),
            kind: JoinKind::Cross,
            on: None,
            schema,
        }
    }

    #[test]
    fn where_equi_predicate_becomes_join_on() {
        // Filter(a.x = b.y over CrossJoin) → InnerJoin with ON.
        let plan = LogicalPlan::Filter {
            input: Box::new(cross(scan("a", &["x"]), scan("b", &["y"]))),
            predicate: eq(col(0), col(1)),
        };
        let opt = optimize(plan);
        match opt {
            LogicalPlan::Join { kind, on, .. } => {
                assert_eq!(kind, JoinKind::Inner);
                assert!(on.is_some());
            }
            other => panic!("expected join, got {}", other.node_name()),
        }
    }

    #[test]
    fn single_side_conjuncts_push_below() {
        // WHERE a.x = b.y AND a.x = 5 AND b.y = 7
        let pred = and(
            and(
                eq(col(0), col(1)),
                eq(col(0), BoundExpr::Literal(Value::Int(5))),
            ),
            eq(col(1), BoundExpr::Literal(Value::Int(7))),
        );
        let plan = LogicalPlan::Filter {
            input: Box::new(cross(scan("a", &["x"]), scan("b", &["y"]))),
            predicate: pred,
        };
        let opt = optimize(plan);
        let LogicalPlan::Join {
            left, right, on, ..
        } = opt
        else {
            panic!()
        };
        assert!(matches!(*left, LogicalPlan::Filter { .. }), "left pushed");
        assert!(matches!(*right, LogicalPlan::Filter { .. }), "right pushed");
        // Right-side filter's column index was rebased to 0.
        if let LogicalPlan::Filter { predicate, .. } = *right {
            let mut cols = Vec::new();
            predicate.referenced_columns(&mut cols);
            assert_eq!(cols, vec![0]);
        }
        // The equi-condition stays in ON.
        let mut conjuncts = Vec::new();
        flatten_and(&on.unwrap(), &mut conjuncts);
        assert_eq!(conjuncts.len(), 1);
    }

    #[test]
    fn left_join_where_not_merged() {
        let l = scan("a", &["x"]);
        let r = scan("b", &["y"]);
        let schema = Arc::new(l.schema().join(&r.schema()));
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Join {
                left: Box::new(l),
                right: Box::new(r),
                kind: JoinKind::Left,
                on: Some(eq(col(0), col(1))),
                schema,
            }),
            predicate: eq(col(0), BoundExpr::Literal(Value::Int(5))),
        };
        let opt = optimize(plan);
        assert!(
            matches!(opt, LogicalPlan::Filter { .. }),
            "WHERE above a LEFT join must stay above it"
        );
    }

    #[test]
    fn non_join_plans_unchanged() {
        let plan = LogicalPlan::Sort {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(scan("a", &["x"])),
                predicate: eq(col(0), BoundExpr::Literal(Value::Int(1))),
            }),
            keys: vec![SortKey {
                expr: col(0),
                asc: true,
            }],
        };
        let opt = optimize(plan.clone());
        assert_eq!(opt, plan);
    }
}
