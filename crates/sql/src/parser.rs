//! Recursive-descent parser for TruSQL.
//!
//! Standard SQL plus the paper's extensions: the only syntax the paper adds
//! to SELECT is the window clause on stream references (§3.1), plus the
//! stream/channel DDL forms. The grammar and operator precedence follow
//! PostgreSQL conventions.

use streamrel_types::{parse_interval, parse_timestamp, DataType, Error, Result, Value};

use crate::ast::*;
use crate::lexer::{lex, SpannedToken, Sym, Token};

/// Parse exactly one statement (trailing semicolon optional).
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let mut stmts = parse_statements(sql)?;
    match stmts.len() {
        1 => Ok(stmts.pop().unwrap()),
        0 => Err(Error::parse("empty statement")),
        n => Err(Error::parse(format!("expected one statement, found {n}"))),
    }
}

/// Parse a semicolon-separated script.
pub fn parse_statements(sql: &str) -> Result<Vec<Statement>> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut out = Vec::new();
    loop {
        while p.eat_sym(Sym::Semicolon) {}
        if p.at_end() {
            break;
        }
        out.push(p.statement()?);
        if !p.at_end() && !p.eat_sym(Sym::Semicolon) {
            return Err(p.err_here("expected `;` or end of input"));
        }
    }
    Ok(out)
}

/// Words that terminate an implicit alias.
const RESERVED: &[&str] = &[
    "from", "where", "group", "having", "order", "limit", "on", "join", "inner", "left", "right",
    "full", "cross", "and", "or", "not", "as", "union", "select", "when", "then", "else", "end",
    "asc", "desc", "between", "in", "like", "is", "into", "values", "set",
];

struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn peek_at(&self, n: usize) -> Option<&Token> {
        self.tokens.get(self.pos + n).map(|t| &t.token)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|t| t.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, msg: &str) -> Error {
        match self.tokens.get(self.pos) {
            Some(t) => Error::parse(format!(
                "{msg} (at offset {}, near {:?})",
                t.offset, t.token
            )),
            None => Error::parse(format!("{msg} (at end of input)")),
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(t) if t.is_kw(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err_here(&format!("expected `{}`", kw.to_uppercase())))
        }
    }

    fn peek_sym(&self, sym: Sym) -> bool {
        matches!(self.peek(), Some(Token::Symbol(s)) if *s == sym)
    }

    fn eat_sym(&mut self, sym: Sym) -> bool {
        if self.peek_sym(sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: Sym) -> Result<()> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(self.err_here(&format!("expected `{sym:?}`")))
        }
    }

    /// Consume an identifier (quoted or not). Unquoted names are
    /// lower-cased per SQL convention.
    fn ident(&mut self) -> Result<String> {
        match self.advance() {
            Some(Token::Ident(s)) => Ok(s.to_ascii_lowercase()),
            Some(Token::QuotedIdent(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err_here("expected identifier"))
            }
        }
    }

    fn int_lit(&mut self) -> Result<i64> {
        match self.advance() {
            Some(Token::IntLit(v)) => Ok(v),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err_here("expected integer literal"))
            }
        }
    }

    fn string_lit(&mut self) -> Result<String> {
        match self.advance() {
            Some(Token::StringLit(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err_here("expected string literal"))
            }
        }
    }

    // ---- statements -------------------------------------------------------

    fn statement(&mut self) -> Result<Statement> {
        if self.peek_kw("create") {
            self.create()
        } else if self.peek_kw("drop") {
            self.drop_stmt()
        } else if self.peek_kw("insert") {
            self.insert()
        } else if self.peek_kw("delete") {
            self.delete()
        } else if self.peek_kw("truncate") {
            self.pos += 1;
            self.eat_kw("table");
            Ok(Statement::Truncate {
                table: self.ident()?,
            })
        } else if self.peek_kw("select") {
            Ok(Statement::Select(self.query()?))
        } else if self.eat_kw("explain") {
            if self.eat_kw("check") {
                Ok(Statement::ExplainCheck(self.query()?))
            } else {
                Ok(Statement::Explain(self.query()?))
            }
        } else if self.eat_kw("show") {
            let kind = if self.eat_kw("tables") {
                ShowKind::Tables
            } else if self.eat_kw("streams") {
                ShowKind::Streams
            } else if self.eat_kw("views") {
                ShowKind::Views
            } else if self.eat_kw("channels") {
                ShowKind::Channels
            } else if self.eat_kw("metrics") {
                ShowKind::Metrics
            } else if self.eat_kw("trace") {
                ShowKind::Trace
            } else {
                return Err(
                    self.err_here("expected TABLES, STREAMS, VIEWS, CHANNELS, METRICS or TRACE")
                );
            };
            Ok(Statement::Show(kind))
        } else if self.eat_kw("checkpoint") {
            Ok(Statement::Checkpoint)
        } else if self.eat_kw("vacuum") {
            Ok(Statement::Vacuum)
        } else {
            Err(self.err_here("expected a statement"))
        }
    }

    fn create(&mut self) -> Result<Statement> {
        self.expect_kw("create")?;
        if self.eat_kw("table") {
            let if_not_exists = self.if_not_exists()?;
            let name = self.ident()?;
            if self.eat_kw("as") {
                let query = self.query()?;
                return Ok(Statement::CreateTableAs { name, query });
            }
            let columns = self.column_defs()?;
            Ok(Statement::CreateTable {
                name,
                columns,
                if_not_exists,
            })
        } else if self.eat_kw("stream") {
            let if_not_exists = self.if_not_exists()?;
            let name = self.ident()?;
            if self.eat_kw("as") {
                let query = self.query()?;
                Ok(Statement::CreateDerivedStream { name, query })
            } else {
                let columns = self.column_defs()?;
                Ok(Statement::CreateStream {
                    name,
                    columns,
                    if_not_exists,
                })
            }
        } else if self.eat_kw("view") {
            let name = self.ident()?;
            self.expect_kw("as")?;
            let query = self.query()?;
            Ok(Statement::CreateView { name, query })
        } else if self.eat_kw("channel") {
            let name = self.ident()?;
            self.expect_kw("from")?;
            let from_stream = self.ident()?;
            self.expect_kw("into")?;
            let into_table = self.ident()?;
            let mode = if self.eat_kw("append") {
                ChannelMode::Append
            } else if self.eat_kw("replace") {
                ChannelMode::Replace
            } else {
                return Err(self.err_here("expected APPEND or REPLACE"));
            };
            Ok(Statement::CreateChannel {
                name,
                from_stream,
                into_table,
                mode,
            })
        } else if self.eat_kw("index") {
            let name = self.ident()?;
            self.expect_kw("on")?;
            let table = self.ident()?;
            self.expect_sym(Sym::LParen)?;
            let mut columns = vec![self.ident()?];
            while self.eat_sym(Sym::Comma) {
                columns.push(self.ident()?);
            }
            self.expect_sym(Sym::RParen)?;
            Ok(Statement::CreateIndex {
                name,
                table,
                columns,
            })
        } else {
            Err(self.err_here("expected TABLE, STREAM, VIEW, CHANNEL or INDEX"))
        }
    }

    fn if_not_exists(&mut self) -> Result<bool> {
        if self.eat_kw("if") {
            self.expect_kw("not")?;
            self.expect_kw("exists")?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn column_defs(&mut self) -> Result<Vec<ColumnDef>> {
        self.expect_sym(Sym::LParen)?;
        let mut cols = Vec::new();
        loop {
            let name = self.ident()?;
            let ty = self.type_name()?;
            let mut not_null = false;
            let mut cqtime_user = false;
            loop {
                if self.eat_kw("not") {
                    self.expect_kw("null")?;
                    not_null = true;
                } else if self.eat_kw("cqtime") {
                    // `CQTIME USER`: data-carried time; `CQTIME SYSTEM`
                    // would be arrival time (we accept the keyword and
                    // treat the column as system-assigned).
                    if !self.eat_kw("user") && !self.eat_kw("system") {
                        return Err(self.err_here("expected USER or SYSTEM after CQTIME"));
                    }
                    cqtime_user = true;
                    not_null = true;
                } else if self.eat_kw("primary") {
                    // Accept and ignore PRIMARY KEY (no constraint engine).
                    self.expect_kw("key")?;
                } else {
                    break;
                }
            }
            cols.push(ColumnDef {
                name,
                ty,
                not_null,
                cqtime_user,
            });
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        self.expect_sym(Sym::RParen)?;
        Ok(cols)
    }

    fn type_name(&mut self) -> Result<DataType> {
        let name = self.ident()?;
        // Two-word forms: DOUBLE PRECISION.
        let name = if name == "double" && self.eat_kw("precision") {
            "double".to_string()
        } else {
            name
        };
        let ty = DataType::from_sql_name(&name)
            .ok_or_else(|| Error::parse(format!("unknown type `{name}`")))?;
        // Optional length/precision parameter, ignored: varchar(1024).
        if self.eat_sym(Sym::LParen) {
            self.int_lit()?;
            if self.eat_sym(Sym::Comma) {
                self.int_lit()?;
            }
            self.expect_sym(Sym::RParen)?;
        }
        Ok(ty)
    }

    fn drop_stmt(&mut self) -> Result<Statement> {
        self.expect_kw("drop")?;
        let kind = if self.eat_kw("table") {
            ObjectKind::Table
        } else if self.eat_kw("stream") {
            ObjectKind::Stream
        } else if self.eat_kw("view") {
            ObjectKind::View
        } else if self.eat_kw("channel") {
            ObjectKind::Channel
        } else if self.eat_kw("index") {
            ObjectKind::Index
        } else {
            return Err(self.err_here("expected object kind after DROP"));
        };
        let if_exists = if self.eat_kw("if") {
            self.expect_kw("exists")?;
            true
        } else {
            false
        };
        let name = self.ident()?;
        Ok(Statement::Drop {
            kind,
            name,
            if_exists,
        })
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("insert")?;
        self.expect_kw("into")?;
        let table = self.ident()?;
        let columns = if self.peek_sym(Sym::LParen) {
            self.expect_sym(Sym::LParen)?;
            let mut cols = vec![self.ident()?];
            while self.eat_sym(Sym::Comma) {
                cols.push(self.ident()?);
            }
            self.expect_sym(Sym::RParen)?;
            Some(cols)
        } else {
            None
        };
        self.expect_kw("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect_sym(Sym::LParen)?;
            let mut row = vec![self.expr()?];
            while self.eat_sym(Sym::Comma) {
                row.push(self.expr()?);
            }
            self.expect_sym(Sym::RParen)?;
            rows.push(row);
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        Ok(Statement::Insert {
            table,
            columns,
            rows,
        })
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_kw("delete")?;
        self.expect_kw("from")?;
        let table = self.ident()?;
        let filter = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, filter })
    }

    // ---- queries ------------------------------------------------------------

    fn query(&mut self) -> Result<Query> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        let mut projection = vec![self.select_item()?];
        while self.eat_sym(Sym::Comma) {
            projection.push(self.select_item()?);
        }
        let from = if self.eat_kw("from") {
            Some(self.parse_from_clause()?)
        } else {
            None
        };
        let filter = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            group_by.push(self.expr()?);
            while self.eat_sym(Sym::Comma) {
                group_by.push(self.expr()?);
            }
        }
        let having = if self.eat_kw("having") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.expr()?;
                let asc = if self.eat_kw("desc") {
                    false
                } else {
                    self.eat_kw("asc");
                    true
                };
                order_by.push(OrderItem { expr, asc });
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            Some(self.int_lit()? as u64)
        } else {
            None
        };
        Ok(Query {
            projection,
            from,
            filter,
            group_by,
            having,
            order_by,
            limit,
            distinct,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat_sym(Sym::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // alias.* form
        if let (
            Some(Token::Ident(_)),
            Some(Token::Symbol(Sym::Dot)),
            Some(Token::Symbol(Sym::Star)),
        ) = (self.peek(), self.peek_at(1), self.peek_at(2))
        {
            let q = self.ident()?;
            self.expect_sym(Sym::Dot)?;
            self.expect_sym(Sym::Star)?;
            return Ok(SelectItem::QualifiedWildcard(q));
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw("as") {
            Some(self.ident()?)
        } else {
            self.implicit_alias()
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    /// An identifier used as an alias without AS, unless it is reserved.
    fn implicit_alias(&mut self) -> Option<String> {
        match self.peek() {
            Some(Token::Ident(s)) if !RESERVED.contains(&s.to_ascii_lowercase().as_str()) => {
                let s = s.to_ascii_lowercase();
                self.pos += 1;
                Some(s)
            }
            Some(Token::QuotedIdent(s)) => {
                let s = s.clone();
                self.pos += 1;
                Some(s)
            }
            _ => None,
        }
    }

    fn parse_from_clause(&mut self) -> Result<TableRef> {
        let mut left = self.join_chain()?;
        while self.eat_sym(Sym::Comma) {
            let right = self.join_chain()?;
            left = TableRef::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind: JoinKind::Cross,
                on: None,
            };
        }
        Ok(left)
    }

    fn join_chain(&mut self) -> Result<TableRef> {
        let mut left = self.table_primary()?;
        loop {
            let kind = if self.eat_kw("join") {
                JoinKind::Inner
            } else if self.peek_kw("inner")
                && self.peek_at(1).map(|t| t.is_kw("join")) == Some(true)
            {
                self.pos += 2;
                JoinKind::Inner
            } else if self.peek_kw("left") {
                self.pos += 1;
                self.eat_kw("outer");
                self.expect_kw("join")?;
                JoinKind::Left
            } else if self.peek_kw("cross")
                && self.peek_at(1).map(|t| t.is_kw("join")) == Some(true)
            {
                self.pos += 2;
                let right = self.table_primary()?;
                left = TableRef::Join {
                    left: Box::new(left),
                    right: Box::new(right),
                    kind: JoinKind::Cross,
                    on: None,
                };
                continue;
            } else {
                break;
            };
            let right = self.table_primary()?;
            self.expect_kw("on")?;
            let on = self.expr()?;
            left = TableRef::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                on: Some(on),
            };
        }
        Ok(left)
    }

    fn table_primary(&mut self) -> Result<TableRef> {
        if self.eat_sym(Sym::LParen) {
            let query = self.query()?;
            self.expect_sym(Sym::RParen)?;
            let alias = if self.eat_kw("as") {
                self.ident()?
            } else {
                self.implicit_alias()
                    .ok_or_else(|| self.err_here("subquery in FROM requires an alias"))?
            };
            let window = self.maybe_window()?;
            return Ok(TableRef::Subquery {
                query: Box::new(query),
                alias,
                window,
            });
        }
        let name = self.ident()?;
        // Window may come before or after the alias; the paper writes
        // `FROM url_stream <VISIBLE ...>` (no alias) and
        // `FROM urls_now <slices 1 windows>` inside an aliased subquery.
        let mut window = self.maybe_window()?;
        let alias = if self.eat_kw("as") {
            Some(self.ident()?)
        } else {
            self.implicit_alias()
        };
        if window.is_none() {
            window = self.maybe_window()?;
        }
        Ok(TableRef::Named {
            name,
            alias,
            window,
        })
    }

    fn maybe_window(&mut self) -> Result<Option<WindowSpec>> {
        if !self.peek_sym(Sym::Lt) {
            return Ok(None);
        }
        self.expect_sym(Sym::Lt)?;
        let spec = if self.eat_kw("visible") {
            match self.peek() {
                Some(Token::StringLit(_)) => {
                    let visible = parse_interval(&self.string_lit()?)?;
                    self.expect_kw("advance")?;
                    let advance = parse_interval(&self.string_lit()?)?;
                    if visible <= 0 || advance <= 0 {
                        return Err(Error::parse("window intervals must be positive"));
                    }
                    WindowSpec::Time { visible, advance }
                }
                Some(Token::IntLit(_)) => {
                    let visible = self.int_lit()? as u64;
                    self.expect_kw("rows")?;
                    self.expect_kw("advance")?;
                    let advance = self.int_lit()? as u64;
                    self.expect_kw("rows")?;
                    if visible == 0 || advance == 0 {
                        return Err(Error::parse("row windows must be positive"));
                    }
                    WindowSpec::Rows { visible, advance }
                }
                _ => return Err(self.err_here("expected interval string or row count")),
            }
        } else if self.eat_kw("tumbling") {
            let iv = parse_interval(&self.string_lit()?)?;
            if iv <= 0 {
                return Err(Error::parse("window intervals must be positive"));
            }
            WindowSpec::tumbling(iv)
        } else if self.eat_kw("slices") {
            let count = self.int_lit()? as u64;
            self.expect_kw("windows")?;
            if count == 0 {
                return Err(Error::parse("slices count must be positive"));
            }
            WindowSpec::Slices { count }
        } else {
            return Err(self.err_here("expected VISIBLE, TUMBLING or SLICES"));
        };
        self.expect_sym(Sym::Gt)?;
        Ok(Some(spec))
    }

    // ---- expressions (Pratt) ----------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("or") {
            let right = self.and_expr()?;
            left = Expr::binary(BinaryOp::Or, left, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("and") {
            let right = self.not_expr()?;
            left = Expr::binary(BinaryOp::And, left, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("not") {
            let e = self.not_expr()?;
            Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(e),
            })
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // [NOT] BETWEEN / IN / LIKE
        let negated = if self.peek_kw("not")
            && matches!(self.peek_at(1), Some(t) if t.is_kw("between") || t.is_kw("in") || t.is_kw("like"))
        {
            self.pos += 1;
            true
        } else {
            false
        };
        if self.eat_kw("between") {
            let low = self.additive()?;
            self.expect_kw("and")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("in") {
            self.expect_sym(Sym::LParen)?;
            let mut list = vec![self.expr()?];
            while self.eat_sym(Sym::Comma) {
                list.push(self.expr()?);
            }
            self.expect_sym(Sym::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_kw("like") {
            let pattern = self.additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if negated {
            return Err(self.err_here("expected BETWEEN, IN or LIKE after NOT"));
        }
        let op = match self.peek() {
            Some(Token::Symbol(Sym::Eq)) => Some(BinaryOp::Eq),
            Some(Token::Symbol(Sym::Neq)) => Some(BinaryOp::Neq),
            Some(Token::Symbol(Sym::Lt)) => Some(BinaryOp::Lt),
            Some(Token::Symbol(Sym::Le)) => Some(BinaryOp::Le),
            Some(Token::Symbol(Sym::Gt)) => Some(BinaryOp::Gt),
            Some(Token::Symbol(Sym::Ge)) => Some(BinaryOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            return Ok(Expr::binary(op, left, right));
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Sym::Plus)) => BinaryOp::Add,
                Some(Token::Symbol(Sym::Minus)) => BinaryOp::Sub,
                Some(Token::Symbol(Sym::Concat)) => BinaryOp::Concat,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Sym::Star)) => BinaryOp::Mul,
                Some(Token::Symbol(Sym::Slash)) => BinaryOp::Div,
                Some(Token::Symbol(Sym::Percent)) => BinaryOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat_sym(Sym::Minus) {
            let e = self.unary()?;
            // Fold negative literals immediately.
            if let Expr::Literal(Value::Int(i)) = e {
                return Ok(Expr::Literal(Value::Int(-i)));
            }
            if let Expr::Literal(Value::Float(f)) = e {
                return Ok(Expr::Literal(Value::Float(-f)));
            }
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(e),
            });
        }
        if self.eat_sym(Sym::Plus) {
            return self.unary();
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr> {
        let mut e = self.primary()?;
        while self.eat_sym(Sym::DoubleColon) {
            let ty = self.type_name()?;
            e = Expr::Cast {
                expr: Box::new(e),
                ty,
            };
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().cloned() {
            Some(Token::IntLit(v)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Int(v)))
            }
            Some(Token::FloatLit(v)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Float(v)))
            }
            Some(Token::StringLit(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::text(s)))
            }
            Some(Token::Symbol(Sym::LParen)) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect_sym(Sym::RParen)?;
                Ok(e)
            }
            Some(Token::Symbol(Sym::Star)) => {
                Err(self.err_here("`*` is only valid in SELECT list or count(*)"))
            }
            Some(Token::Ident(_)) | Some(Token::QuotedIdent(_)) => self.ident_expr(),
            _ => Err(self.err_here("expected expression")),
        }
    }

    fn ident_expr(&mut self) -> Result<Expr> {
        // Keyword literals and prefixed typed literals.
        if self.eat_kw("null") {
            return Ok(Expr::Literal(Value::Null));
        }
        if self.eat_kw("true") {
            return Ok(Expr::Literal(Value::Bool(true)));
        }
        if self.eat_kw("false") {
            return Ok(Expr::Literal(Value::Bool(false)));
        }
        if self.peek_kw("interval") && matches!(self.peek_at(1), Some(Token::StringLit(_))) {
            self.pos += 1;
            let s = self.string_lit()?;
            return Ok(Expr::Literal(Value::Interval(parse_interval(&s)?)));
        }
        if self.peek_kw("timestamp") && matches!(self.peek_at(1), Some(Token::StringLit(_))) {
            self.pos += 1;
            let s = self.string_lit()?;
            return Ok(Expr::Literal(Value::Timestamp(parse_timestamp(&s)?)));
        }
        if self.peek_kw("case") {
            return self.case_expr();
        }
        if self.peek_kw("cast") && self.peek_at(1) == Some(&Token::Symbol(Sym::LParen)) {
            self.pos += 2;
            let e = self.expr()?;
            self.expect_kw("as")?;
            let ty = self.type_name()?;
            self.expect_sym(Sym::RParen)?;
            return Ok(Expr::Cast {
                expr: Box::new(e),
                ty,
            });
        }
        if let Some(Token::Ident(s)) = self.peek() {
            if RESERVED.contains(&s.to_ascii_lowercase().as_str()) {
                return Err(self.err_here("expected expression"));
            }
        }
        let name = self.ident()?;
        // Function call?
        if self.peek_sym(Sym::LParen) {
            self.pos += 1;
            if self.eat_sym(Sym::Star) {
                self.expect_sym(Sym::RParen)?;
                return Ok(Expr::Function {
                    name,
                    args: vec![],
                    star: true,
                    distinct: false,
                });
            }
            let distinct = self.eat_kw("distinct");
            let mut args = Vec::new();
            if !self.peek_sym(Sym::RParen) {
                args.push(self.expr()?);
                while self.eat_sym(Sym::Comma) {
                    args.push(self.expr()?);
                }
            }
            self.expect_sym(Sym::RParen)?;
            return Ok(Expr::Function {
                name,
                args,
                star: false,
                distinct,
            });
        }
        // Qualified column?
        if self.eat_sym(Sym::Dot) {
            let col = self.ident()?;
            return Ok(Expr::Column {
                qualifier: Some(name),
                name: col,
            });
        }
        Ok(Expr::Column {
            qualifier: None,
            name,
        })
    }

    fn case_expr(&mut self) -> Result<Expr> {
        self.expect_kw("case")?;
        let operand = if !self.peek_kw("when") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        let mut whens = Vec::new();
        while self.eat_kw("when") {
            let cond = self.expr()?;
            self.expect_kw("then")?;
            let result = self.expr()?;
            whens.push((cond, result));
        }
        if whens.is_empty() {
            return Err(self.err_here("CASE requires at least one WHEN"));
        }
        let else_expr = if self.eat_kw("else") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_kw("end")?;
        Ok(Expr::Case {
            operand,
            whens,
            else_expr,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamrel_types::time::{MINUTES, WEEKS};

    #[test]
    fn parses_paper_example_1_create_stream() {
        let s = parse_statement(
            "CREATE STREAM url_stream ( url varchar(1024), \
             atime timestamp CQTIME USER, client_ip varchar(50) )",
        )
        .unwrap();
        match s {
            Statement::CreateStream { name, columns, .. } => {
                assert_eq!(name, "url_stream");
                assert_eq!(columns.len(), 3);
                assert_eq!(columns[0].ty, DataType::Text);
                assert!(columns[1].cqtime_user);
                assert_eq!(columns[1].ty, DataType::Timestamp);
            }
            other => panic!("wrong statement {other:?}"),
        }
    }

    #[test]
    fn parses_paper_example_2_cq() {
        let s = parse_statement(
            "SELECT url, count(*) url_count \
             FROM url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'> \
             GROUP by url ORDER by url_count desc LIMIT 10",
        )
        .unwrap();
        let Statement::Select(q) = s else { panic!() };
        assert_eq!(q.projection.len(), 2);
        match &q.projection[1] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("url_count")),
            _ => panic!(),
        }
        match q.from.unwrap() {
            TableRef::Named { name, window, .. } => {
                assert_eq!(name, "url_stream");
                assert_eq!(
                    window,
                    Some(WindowSpec::Time {
                        visible: 5 * MINUTES,
                        advance: MINUTES
                    })
                );
            }
            _ => panic!(),
        }
        assert_eq!(q.order_by.len(), 1);
        assert!(!q.order_by[0].asc);
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn parses_paper_example_3_derived_stream() {
        let s = parse_statement(
            "CREATE STREAM urls_now as SELECT url, count(*) as scnt, cq_close(*) \
             FROM url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'> GROUP by url",
        )
        .unwrap();
        match s {
            Statement::CreateDerivedStream { name, query } => {
                assert_eq!(name, "urls_now");
                assert_eq!(query.projection.len(), 3);
                match &query.projection[2] {
                    SelectItem::Expr {
                        expr: Expr::Function { name, star, .. },
                        ..
                    } => {
                        assert_eq!(name, "cq_close");
                        assert!(star);
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_paper_example_4_channel() {
        let s =
            parse_statement("CREATE CHANNEL urls_channel FROM urls_now INTO urls_archive APPEND")
                .unwrap();
        assert_eq!(
            s,
            Statement::CreateChannel {
                name: "urls_channel".into(),
                from_stream: "urls_now".into(),
                into_table: "urls_archive".into(),
                mode: ChannelMode::Append,
            }
        );
    }

    #[test]
    fn parses_paper_example_5_historical_join() {
        let s = parse_statement(
            "select c.scnt, h.scnt, c.stime from \
             (select sum(scnt) as scnt, cq_close(*) as stime \
              from urls_now <slices 1 windows>) c, urls_archive h \
             where c.stime - '1 week'::interval = h.stime",
        )
        .unwrap();
        let Statement::Select(q) = s else { panic!() };
        // FROM is a cross join of a windowed subquery and a table.
        match q.from.as_ref().unwrap() {
            TableRef::Join {
                left, right, kind, ..
            } => {
                assert_eq!(*kind, JoinKind::Cross);
                match left.as_ref() {
                    TableRef::Subquery { alias, query, .. } => {
                        assert_eq!(alias, "c");
                        match query.from.as_ref().unwrap() {
                            TableRef::Named { name, window, .. } => {
                                assert_eq!(name, "urls_now");
                                assert_eq!(window, &Some(WindowSpec::Slices { count: 1 }));
                            }
                            _ => panic!(),
                        }
                    }
                    _ => panic!("left must be subquery"),
                }
                match right.as_ref() {
                    TableRef::Named { name, alias, .. } => {
                        assert_eq!(name, "urls_archive");
                        assert_eq!(alias.as_deref(), Some("h"));
                    }
                    _ => panic!(),
                }
            }
            other => panic!("{other:?}"),
        }
        // WHERE contains the interval cast.
        let w = q.filter.unwrap();
        let found_cast = format!("{w:?}").contains(&format!("Interval({WEEKS})"))
            || format!("{w:?}").contains("Cast");
        assert!(found_cast, "{w:?}");
    }

    #[test]
    fn window_before_or_after_alias() {
        for sql in [
            "select * from s <tumbling '1 minute'> x",
            "select * from s x <tumbling '1 minute'>",
            "select * from s as x <tumbling '1 minute'>",
        ] {
            let Statement::Select(q) = parse_statement(sql).unwrap() else {
                panic!()
            };
            match q.from.unwrap() {
                TableRef::Named { alias, window, .. } => {
                    assert_eq!(alias.as_deref(), Some("x"), "{sql}");
                    assert!(window.is_some(), "{sql}");
                }
                _ => panic!(),
            }
        }
    }

    #[test]
    fn row_window() {
        let Statement::Select(q) =
            parse_statement("select * from s <visible 100 rows advance 10 rows>").unwrap()
        else {
            panic!()
        };
        match q.from.unwrap() {
            TableRef::Named { window, .. } => {
                assert_eq!(
                    window,
                    Some(WindowSpec::Rows {
                        visible: 100,
                        advance: 10
                    })
                );
            }
            _ => panic!(),
        }
    }

    #[test]
    fn join_syntax() {
        let Statement::Select(q) =
            parse_statement("select * from a join b on a.x = b.y left join c on b.z = c.z")
                .unwrap()
        else {
            panic!()
        };
        match q.from.unwrap() {
            TableRef::Join { kind, left, .. } => {
                assert_eq!(kind, JoinKind::Left);
                match *left {
                    TableRef::Join { kind, .. } => assert_eq!(kind, JoinKind::Inner),
                    _ => panic!(),
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn insert_and_delete() {
        let s = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        match s {
            Statement::Insert {
                table,
                columns,
                rows,
            } => {
                assert_eq!(table, "t");
                assert_eq!(columns.unwrap(), vec!["a", "b"]);
                assert_eq!(rows.len(), 2);
            }
            _ => panic!(),
        }
        let s = parse_statement("DELETE FROM t WHERE a > 5").unwrap();
        assert!(matches!(
            s,
            Statement::Delete {
                filter: Some(_),
                ..
            }
        ));
    }

    #[test]
    fn expressions_precedence() {
        let Statement::Select(q) = parse_statement("select 1 + 2 * 3 = 7 and not false").unwrap()
        else {
            panic!()
        };
        let SelectItem::Expr { expr, .. } = &q.projection[0] else {
            panic!()
        };
        // Outermost must be AND.
        assert!(matches!(
            expr,
            Expr::Binary {
                op: BinaryOp::And,
                ..
            }
        ));
    }

    #[test]
    fn case_between_in_like_isnull() {
        let sql = "select case when a > 1 then 'big' else 'small' end, \
                   b between 1 and 10, c in (1,2,3), d like 'x%', e is not null from t";
        let Statement::Select(q) = parse_statement(sql).unwrap() else {
            panic!()
        };
        assert_eq!(q.projection.len(), 5);
    }

    #[test]
    fn typed_literals() {
        let Statement::Select(q) =
            parse_statement("select interval '5 minutes', timestamp '2009-01-04'").unwrap()
        else {
            panic!()
        };
        match &q.projection[0] {
            SelectItem::Expr {
                expr: Expr::Literal(Value::Interval(iv)),
                ..
            } => assert_eq!(*iv, 5 * MINUTES),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cast_forms() {
        let a = parse_statement("select '1 week'::interval").unwrap();
        let b = parse_statement("select cast('1 week' as interval)").unwrap();
        // Both are casts of the same literal.
        let get = |s: &Statement| -> Expr {
            let Statement::Select(q) = s else { panic!() };
            let SelectItem::Expr { expr, .. } = &q.projection[0] else {
                panic!()
            };
            expr.clone()
        };
        assert_eq!(get(&a), get(&b));
    }

    #[test]
    fn multiple_statements() {
        let stmts =
            parse_statements("create table t (a int); insert into t values (1); select * from t;")
                .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn error_messages_have_context() {
        let e = parse_statement("select from").unwrap_err();
        assert!(matches!(e, Error::Parse(_)));
        let e = parse_statement("create channel c from s into t").unwrap_err();
        assert!(e.to_string().contains("APPEND or REPLACE"), "{e}");
    }

    #[test]
    fn negative_window_rejected() {
        assert!(
            parse_statement("select * from s <visible '0 minutes' advance '1 minute'>").is_err()
        );
        assert!(parse_statement("select * from s <slices 0 windows>").is_err());
    }

    #[test]
    fn truncate_and_drop() {
        assert_eq!(
            parse_statement("truncate table t").unwrap(),
            Statement::Truncate { table: "t".into() }
        );
        assert_eq!(
            parse_statement("drop stream if exists s").unwrap(),
            Statement::Drop {
                kind: ObjectKind::Stream,
                name: "s".into(),
                if_exists: true
            }
        );
    }

    #[test]
    fn distinct_and_qualified_wildcard() {
        let Statement::Select(q) =
            parse_statement("select distinct t.*, count(distinct x) from t").unwrap()
        else {
            panic!()
        };
        assert!(q.distinct);
        assert!(matches!(&q.projection[0], SelectItem::QualifiedWildcard(a) if a == "t"));
        match &q.projection[1] {
            SelectItem::Expr {
                expr: Expr::Function { distinct, .. },
                ..
            } => assert!(distinct),
            _ => panic!(),
        }
    }
}
