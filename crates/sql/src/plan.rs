//! Bound expressions and logical plans.
//!
//! The analyzer lowers the AST into these fully-resolved structures:
//! column references become positional indexes, types are checked, views
//! are inlined and aggregates are split into an explicit
//! [`LogicalPlan::Aggregate`] node. `streamrel-exec` executes a plan over
//! one relation (snapshot query or one window); `streamrel-cq` drives the
//! same plan once per window — the paper's reuse of "standard, well
//! understood, iterator-style relational query operators" for CQs (§4).

pub use crate::ast::{BinaryOp, JoinKind, UnaryOp, WindowSpec};
use std::sync::Arc;
use streamrel_types::schema::Schema;
use streamrel_types::{DataType, Value};

/// Shared schema handle.
pub type SchemaRef = Arc<Schema>;

/// Scalar (non-aggregate) builtin functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarFunc {
    Abs,
    Lower,
    Upper,
    Length,
    Round,
    Floor,
    Ceil,
    Coalesce,
    NullIf,
    Greatest,
    Least,
    Substr,
}

impl ScalarFunc {
    /// Look up by SQL name.
    pub fn from_name(name: &str) -> Option<ScalarFunc> {
        Some(match name.to_ascii_lowercase().as_str() {
            "abs" => ScalarFunc::Abs,
            "lower" => ScalarFunc::Lower,
            "upper" => ScalarFunc::Upper,
            "length" | "char_length" => ScalarFunc::Length,
            "round" => ScalarFunc::Round,
            "floor" => ScalarFunc::Floor,
            "ceil" | "ceiling" => ScalarFunc::Ceil,
            "coalesce" => ScalarFunc::Coalesce,
            "nullif" => ScalarFunc::NullIf,
            "greatest" => ScalarFunc::Greatest,
            "least" => ScalarFunc::Least,
            "substr" | "substring" => ScalarFunc::Substr,
            _ => return None,
        })
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
    /// Sample variance (n-1 denominator). SQL `variance` / `var_samp`.
    Variance,
    /// Sample standard deviation. SQL `stddev` / `stddev_samp`.
    Stddev,
}

impl AggFunc {
    /// Look up by SQL name.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        Some(match name.to_ascii_lowercase().as_str() {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "avg" => AggFunc::Avg,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            "variance" | "var_samp" => AggFunc::Variance,
            "stddev" | "stddev_samp" => AggFunc::Stddev,
            _ => return None,
        })
    }

    /// Result type given the argument type.
    pub fn result_type(self, arg: Option<DataType>) -> DataType {
        match self {
            AggFunc::Count => DataType::Int,
            AggFunc::Avg | AggFunc::Variance | AggFunc::Stddev => DataType::Float,
            AggFunc::Sum => match arg {
                Some(DataType::Float) => DataType::Float,
                Some(DataType::Interval) => DataType::Interval,
                _ => DataType::Int,
            },
            AggFunc::Min | AggFunc::Max => arg.unwrap_or(DataType::Int),
        }
    }
}

/// One aggregate computation in an Aggregate node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// The function.
    pub func: AggFunc,
    /// Argument expression over the input row; `None` for `count(*)`.
    pub arg: Option<BoundExpr>,
    /// DISTINCT aggregation.
    pub distinct: bool,
    /// Output column name.
    pub name: String,
    /// Output type.
    pub ty: DataType,
}

/// A fully bound scalar expression (columns are positional).
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    /// Constant.
    Literal(Value),
    /// Input column by position.
    Column { index: usize, ty: DataType },
    /// `cq_close(*)`: the close timestamp of the current window, supplied
    /// by the CQ runtime per window (paper Example 3).
    CqClose,
    /// Unary op.
    Unary { op: UnaryOp, expr: Box<BoundExpr> },
    /// Binary op.
    Binary {
        op: BinaryOp,
        left: Box<BoundExpr>,
        right: Box<BoundExpr>,
        ty: DataType,
    },
    /// Cast.
    Cast { expr: Box<BoundExpr>, ty: DataType },
    /// `IS [NOT] NULL`.
    IsNull { expr: Box<BoundExpr>, negated: bool },
    /// `LIKE`.
    Like {
        expr: Box<BoundExpr>,
        pattern: Box<BoundExpr>,
        negated: bool,
    },
    /// `IN (list)`.
    InList {
        expr: Box<BoundExpr>,
        list: Vec<BoundExpr>,
        negated: bool,
    },
    /// `CASE`.
    Case {
        operand: Option<Box<BoundExpr>>,
        whens: Vec<(BoundExpr, BoundExpr)>,
        else_expr: Option<Box<BoundExpr>>,
        ty: DataType,
    },
    /// Builtin scalar function.
    ScalarFunc {
        func: ScalarFunc,
        args: Vec<BoundExpr>,
        ty: DataType,
    },
}

impl BoundExpr {
    /// Static result type of the expression.
    pub fn ty(&self) -> DataType {
        match self {
            BoundExpr::Literal(v) => v.data_type().unwrap_or(DataType::Text),
            BoundExpr::Column { ty, .. } => *ty,
            BoundExpr::CqClose => DataType::Timestamp,
            BoundExpr::Unary { op, expr } => match op {
                UnaryOp::Not => DataType::Bool,
                UnaryOp::Neg => expr.ty(),
            },
            BoundExpr::Binary { ty, .. } => *ty,
            BoundExpr::Cast { ty, .. } => *ty,
            BoundExpr::IsNull { .. } => DataType::Bool,
            BoundExpr::Like { .. } => DataType::Bool,
            BoundExpr::InList { .. } => DataType::Bool,
            BoundExpr::Case { ty, .. } => *ty,
            BoundExpr::ScalarFunc { ty, .. } => *ty,
        }
    }

    /// True if the tree contains a `cq_close(*)`.
    pub fn uses_cq_close(&self) -> bool {
        match self {
            BoundExpr::CqClose => true,
            BoundExpr::Literal(_) | BoundExpr::Column { .. } => false,
            BoundExpr::Unary { expr, .. }
            | BoundExpr::Cast { expr, .. }
            | BoundExpr::IsNull { expr, .. } => expr.uses_cq_close(),
            BoundExpr::Binary { left, right, .. } => left.uses_cq_close() || right.uses_cq_close(),
            BoundExpr::Like { expr, pattern, .. } => {
                expr.uses_cq_close() || pattern.uses_cq_close()
            }
            BoundExpr::InList { expr, list, .. } => {
                expr.uses_cq_close() || list.iter().any(|e| e.uses_cq_close())
            }
            BoundExpr::Case {
                operand,
                whens,
                else_expr,
                ..
            } => {
                operand.as_ref().is_some_and(|e| e.uses_cq_close())
                    || whens
                        .iter()
                        .any(|(c, r)| c.uses_cq_close() || r.uses_cq_close())
                    || else_expr.as_ref().is_some_and(|e| e.uses_cq_close())
            }
            BoundExpr::ScalarFunc { args, .. } => args.iter().any(|e| e.uses_cq_close()),
        }
    }

    /// Column positions referenced by this expression.
    pub fn referenced_columns(&self, out: &mut Vec<usize>) {
        match self {
            BoundExpr::Column { index, .. } => out.push(*index),
            BoundExpr::Literal(_) | BoundExpr::CqClose => {}
            BoundExpr::Unary { expr, .. }
            | BoundExpr::Cast { expr, .. }
            | BoundExpr::IsNull { expr, .. } => expr.referenced_columns(out),
            BoundExpr::Binary { left, right, .. } => {
                left.referenced_columns(out);
                right.referenced_columns(out);
            }
            BoundExpr::Like { expr, pattern, .. } => {
                expr.referenced_columns(out);
                pattern.referenced_columns(out);
            }
            BoundExpr::InList { expr, list, .. } => {
                expr.referenced_columns(out);
                for e in list {
                    e.referenced_columns(out);
                }
            }
            BoundExpr::Case {
                operand,
                whens,
                else_expr,
                ..
            } => {
                if let Some(e) = operand {
                    e.referenced_columns(out);
                }
                for (c, r) in whens {
                    c.referenced_columns(out);
                    r.referenced_columns(out);
                }
                if let Some(e) = else_expr {
                    e.referenced_columns(out);
                }
            }
            BoundExpr::ScalarFunc { args, .. } => {
                for e in args {
                    e.referenced_columns(out);
                }
            }
        }
    }

    /// Shift every column index by `offset` (used when an expression bound
    /// against a join's right side is evaluated over the concatenated row).
    pub fn shift_columns(&mut self, offset: usize) {
        match self {
            BoundExpr::Column { index, .. } => *index += offset,
            BoundExpr::Literal(_) | BoundExpr::CqClose => {}
            BoundExpr::Unary { expr, .. }
            | BoundExpr::Cast { expr, .. }
            | BoundExpr::IsNull { expr, .. } => expr.shift_columns(offset),
            BoundExpr::Binary { left, right, .. } => {
                left.shift_columns(offset);
                right.shift_columns(offset);
            }
            BoundExpr::Like { expr, pattern, .. } => {
                expr.shift_columns(offset);
                pattern.shift_columns(offset);
            }
            BoundExpr::InList { expr, list, .. } => {
                expr.shift_columns(offset);
                for e in list {
                    e.shift_columns(offset);
                }
            }
            BoundExpr::Case {
                operand,
                whens,
                else_expr,
                ..
            } => {
                if let Some(e) = operand {
                    e.shift_columns(offset);
                }
                for (c, r) in whens {
                    c.shift_columns(offset);
                    r.shift_columns(offset);
                }
                if let Some(e) = else_expr {
                    e.shift_columns(offset);
                }
            }
            BoundExpr::ScalarFunc { args, .. } => {
                for e in args {
                    e.shift_columns(offset);
                }
            }
        }
    }
}

/// One sort key.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    /// Expression over the input row.
    pub expr: BoundExpr,
    /// Ascending?
    pub asc: bool,
}

/// The logical plan tree.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// A single empty row: the input of a FROM-less `SELECT 1+1`.
    OneRow,
    /// Scan a stored table.
    TableScan { table: String, schema: SchemaRef },
    /// Scan a stream (base or derived) through a window: the plan above
    /// this node runs once per window relation (RSTREAM, Figure 1).
    StreamScan {
        stream: String,
        schema: SchemaRef,
        window: WindowSpec,
        /// Position of the CQTIME column, if the stream orders on data time.
        cqtime: Option<usize>,
        /// True when the scanned relation is a derived stream. Its rows
        /// arrive as result batches stamped exactly at window closes, so
        /// time windows over it use the inclusive `(lo, close]` interval
        /// convention — fixed here at plan time, not discovered at runtime.
        derived: bool,
    },
    /// Row filter.
    Filter {
        input: Box<LogicalPlan>,
        predicate: BoundExpr,
    },
    /// Projection.
    Project {
        input: Box<LogicalPlan>,
        exprs: Vec<BoundExpr>,
        schema: SchemaRef,
    },
    /// Grouped / global aggregation. Output row layout:
    /// `[group_exprs..., aggs...]`.
    Aggregate {
        input: Box<LogicalPlan>,
        group_exprs: Vec<BoundExpr>,
        aggs: Vec<AggSpec>,
        schema: SchemaRef,
    },
    /// Join; `on` is evaluated over the concatenated `[left, right]` row.
    Join {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        kind: JoinKind,
        on: Option<BoundExpr>,
        schema: SchemaRef,
    },
    /// Sort.
    Sort {
        input: Box<LogicalPlan>,
        keys: Vec<SortKey>,
    },
    /// Row-count limit.
    Limit { input: Box<LogicalPlan>, n: u64 },
    /// Duplicate elimination over entire rows.
    Distinct { input: Box<LogicalPlan> },
}

impl LogicalPlan {
    /// Output schema of this node.
    pub fn schema(&self) -> SchemaRef {
        match self {
            LogicalPlan::OneRow => Arc::new(Schema::empty()),
            LogicalPlan::TableScan { schema, .. }
            | LogicalPlan::StreamScan { schema, .. }
            | LogicalPlan::Project { schema, .. }
            | LogicalPlan::Aggregate { schema, .. }
            | LogicalPlan::Join { schema, .. } => schema.clone(),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Distinct { input } => input.schema(),
        }
    }

    /// Collect the stream scans in this plan (name, window, schema).
    pub fn stream_scans(&self) -> Vec<(&str, WindowSpec)> {
        let mut out = Vec::new();
        self.visit(&mut |p| {
            if let LogicalPlan::StreamScan { stream, window, .. } = p {
                out.push((stream.as_str(), *window));
            }
        });
        out
    }

    /// True if any stream participates: the query is a continuous query.
    pub fn is_continuous(&self) -> bool {
        !self.stream_scans().is_empty()
    }

    /// Pre-order traversal.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a LogicalPlan)) {
        f(self);
        match self {
            LogicalPlan::OneRow
            | LogicalPlan::TableScan { .. }
            | LogicalPlan::StreamScan { .. } => {}
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Distinct { input } => input.visit(f),
            LogicalPlan::Join { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
        }
    }

    /// Short single-line description (used in EXPLAIN-style output).
    pub fn node_name(&self) -> String {
        match self {
            LogicalPlan::OneRow => "OneRow".into(),
            LogicalPlan::TableScan { table, .. } => format!("TableScan({table})"),
            LogicalPlan::StreamScan { stream, window, .. } => {
                format!("StreamScan({stream}, {window:?})")
            }
            LogicalPlan::Filter { .. } => "Filter".into(),
            LogicalPlan::Project { .. } => "Project".into(),
            LogicalPlan::Aggregate {
                group_exprs, aggs, ..
            } => {
                format!(
                    "Aggregate(groups={}, aggs={})",
                    group_exprs.len(),
                    aggs.len()
                )
            }
            LogicalPlan::Join { kind, .. } => format!("Join({kind:?})"),
            LogicalPlan::Sort { .. } => "Sort".into(),
            LogicalPlan::Limit { n, .. } => format!("Limit({n})"),
            LogicalPlan::Distinct { .. } => "Distinct".into(),
        }
    }

    /// Multi-line indented plan rendering.
    pub fn explain(&self) -> String {
        fn go(p: &LogicalPlan, depth: usize, out: &mut String) {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&p.node_name());
            out.push('\n');
            match p {
                LogicalPlan::OneRow
                | LogicalPlan::TableScan { .. }
                | LogicalPlan::StreamScan { .. } => {}
                LogicalPlan::Filter { input, .. }
                | LogicalPlan::Project { input, .. }
                | LogicalPlan::Aggregate { input, .. }
                | LogicalPlan::Sort { input, .. }
                | LogicalPlan::Limit { input, .. }
                | LogicalPlan::Distinct { input } => go(input, depth + 1, out),
                LogicalPlan::Join { left, right, .. } => {
                    go(left, depth + 1, out);
                    go(right, depth + 1, out);
                }
            }
        }
        let mut s = String::new();
        go(self, 0, &mut s);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamrel_types::{Column, Schema};

    fn scan() -> LogicalPlan {
        LogicalPlan::TableScan {
            table: "t".into(),
            schema: Arc::new(Schema::new(vec![Column::new("a", DataType::Int)]).unwrap()),
        }
    }

    #[test]
    fn schema_propagates_through_wrappers() {
        let plan = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(scan()),
                predicate: BoundExpr::Literal(Value::Bool(true)),
            }),
            n: 5,
        };
        assert_eq!(plan.schema().columns()[0].name, "a");
    }

    #[test]
    fn stream_detection() {
        assert!(!scan().is_continuous());
        let s = LogicalPlan::StreamScan {
            stream: "s".into(),
            schema: scan().schema(),
            window: WindowSpec::tumbling(60),
            cqtime: Some(0),
            derived: false,
        };
        assert!(s.is_continuous());
        assert_eq!(s.stream_scans().len(), 1);
    }

    #[test]
    fn cq_close_detection_and_shift() {
        let mut e = BoundExpr::Binary {
            op: BinaryOp::Sub,
            left: Box::new(BoundExpr::CqClose),
            right: Box::new(BoundExpr::Column {
                index: 2,
                ty: DataType::Timestamp,
            }),
            ty: DataType::Interval,
        };
        assert!(e.uses_cq_close());
        e.shift_columns(3);
        let mut cols = Vec::new();
        e.referenced_columns(&mut cols);
        assert_eq!(cols, vec![5]);
    }

    #[test]
    fn agg_result_types() {
        assert_eq!(AggFunc::Count.result_type(None), DataType::Int);
        assert_eq!(
            AggFunc::Avg.result_type(Some(DataType::Int)),
            DataType::Float
        );
        assert_eq!(
            AggFunc::Sum.result_type(Some(DataType::Float)),
            DataType::Float
        );
        assert_eq!(AggFunc::Sum.result_type(Some(DataType::Int)), DataType::Int);
        assert_eq!(
            AggFunc::Min.result_type(Some(DataType::Text)),
            DataType::Text
        );
    }

    #[test]
    fn explain_renders_tree() {
        let plan = LogicalPlan::Limit {
            input: Box::new(scan()),
            n: 5,
        };
        let text = plan.explain();
        assert!(text.contains("Limit(5)"));
        assert!(text.contains("  TableScan(t)"));
    }
}
