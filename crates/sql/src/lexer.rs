//! SQL lexer.
//!
//! Produces a token stream with source offsets for error reporting.
//! Keywords are recognized case-insensitively but identifiers preserve their
//! original text (the analyzer lower-cases unquoted names, SQL-style).

use streamrel_types::{Error, Result};

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Unquoted identifier or keyword (case preserved).
    Ident(String),
    /// Double-quoted identifier (case significant, quotes stripped).
    QuotedIdent(String),
    /// Single-quoted string literal (escapes processed).
    StringLit(String),
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// Punctuation / operator.
    Symbol(Sym),
}

/// Operator and punctuation tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sym {
    LParen,
    RParen,
    Comma,
    Semicolon,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    Dot,
    DoubleColon,
    Concat,
}

/// A token with its byte offset in the source (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// Byte offset where it starts.
    pub offset: usize,
}

impl Token {
    /// True if this is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize a SQL string.
pub fn lex(input: &str) -> Result<Vec<SpannedToken>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                // block comment
                let mut depth = 1;
                i += 2;
                while i + 1 < bytes.len() && depth > 0 {
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else if bytes[i] == b'/' && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                if depth > 0 {
                    return Err(Error::parse("unterminated block comment"));
                }
            }
            '\'' => {
                let (s, next) = lex_string(input, i)?;
                tokens.push(SpannedToken {
                    token: Token::StringLit(s),
                    offset: start,
                });
                i = next;
            }
            '"' => {
                let end = input[i + 1..]
                    .find('"')
                    .ok_or_else(|| Error::parse("unterminated quoted identifier"))?;
                tokens.push(SpannedToken {
                    token: Token::QuotedIdent(input[i + 1..i + 1 + end].to_string()),
                    offset: start,
                });
                i = i + 1 + end + 1;
            }
            '0'..='9' => {
                let (tok, next) = lex_number(input, i)?;
                tokens.push(SpannedToken {
                    token: tok,
                    offset: start,
                });
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i + 1;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                tokens.push(SpannedToken {
                    token: Token::Ident(input[i..j].to_string()),
                    offset: start,
                });
                i = j;
            }
            _ => {
                let (sym, width) = match (c, bytes.get(i + 1).map(|&b| b as char)) {
                    ('(', _) => (Sym::LParen, 1),
                    (')', _) => (Sym::RParen, 1),
                    (',', _) => (Sym::Comma, 1),
                    (';', _) => (Sym::Semicolon, 1),
                    ('*', _) => (Sym::Star, 1),
                    ('+', _) => (Sym::Plus, 1),
                    ('-', _) => (Sym::Minus, 1),
                    ('/', _) => (Sym::Slash, 1),
                    ('%', _) => (Sym::Percent, 1),
                    ('.', _) => (Sym::Dot, 1),
                    ('=', _) => (Sym::Eq, 1),
                    ('!', Some('=')) => (Sym::Neq, 2),
                    ('<', Some('>')) => (Sym::Neq, 2),
                    ('<', Some('=')) => (Sym::Le, 2),
                    ('<', _) => (Sym::Lt, 1),
                    ('>', Some('=')) => (Sym::Ge, 2),
                    ('>', _) => (Sym::Gt, 1),
                    (':', Some(':')) => (Sym::DoubleColon, 2),
                    ('|', Some('|')) => (Sym::Concat, 2),
                    _ => {
                        return Err(Error::parse(format!(
                            "unexpected character `{c}` at offset {i}"
                        )))
                    }
                };
                tokens.push(SpannedToken {
                    token: Token::Symbol(sym),
                    offset: start,
                });
                i += width;
            }
        }
    }
    Ok(tokens)
}

fn lex_string(input: &str, start: usize) -> Result<(String, usize)> {
    let bytes = input.as_bytes();
    let mut s = String::new();
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\'' => {
                // '' escapes a quote
                if bytes.get(i + 1) == Some(&b'\'') {
                    s.push('\'');
                    i += 2;
                } else {
                    return Ok((s, i + 1));
                }
            }
            _ => {
                // Advance by whole UTF-8 characters.
                let ch_len = utf8_len(bytes[i]);
                s.push_str(&input[i..i + ch_len]);
                i += ch_len;
            }
        }
    }
    Err(Error::parse("unterminated string literal"))
}

fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn lex_number(input: &str, start: usize) -> Result<(Token, usize)> {
    let bytes = input.as_bytes();
    let mut i = start;
    let mut is_float = false;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    // Fractional part — but not `1..2` or method-like `1.x`.
    if i < bytes.len() && bytes[i] == b'.' && i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit() {
        is_float = true;
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
    }
    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
        let mut j = i + 1;
        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        if j < bytes.len() && bytes[j].is_ascii_digit() {
            is_float = true;
            i = j;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
        }
    }
    let text = &input[start..i];
    let tok = if is_float {
        Token::FloatLit(
            text.parse()
                .map_err(|_| Error::parse(format!("bad float literal `{text}`")))?,
        )
    } else {
        Token::IntLit(
            text.parse()
                .map_err(|_| Error::parse(format!("integer literal `{text}` out of range")))?,
        )
    };
    Ok((tok, i))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        lex(s).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn lexes_paper_example_2() {
        let sql = "SELECT url, count(*) url_count \
                   FROM url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'> \
                   GROUP by url ORDER by url_count desc LIMIT 10";
        let t = toks(sql);
        assert!(t.contains(&Token::Ident("url_stream".into())));
        assert!(t.contains(&Token::Symbol(Sym::Lt)));
        assert!(t.contains(&Token::StringLit("5 minutes".into())));
        assert!(t.contains(&Token::Symbol(Sym::Gt)));
        assert!(t.contains(&Token::IntLit(10)));
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(toks("'it''s'"), vec![Token::StringLit("it's".into())]);
        assert_eq!(toks("'héllo'"), vec![Token::StringLit("héllo".into())]);
        assert!(lex("'unterminated").is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42"), vec![Token::IntLit(42)]);
        assert_eq!(toks("3.5"), vec![Token::FloatLit(3.5)]);
        assert_eq!(toks("1e3"), vec![Token::FloatLit(1000.0)]);
        assert_eq!(toks("2.5e-1"), vec![Token::FloatLit(0.25)]);
        // Digits then dot then ident char: number, dot, ident (qualified use).
        assert_eq!(
            toks("1.x"),
            vec![
                Token::IntLit(1),
                Token::Symbol(Sym::Dot),
                Token::Ident("x".into())
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("a -- comment\n b /* block /* nested */ */ c"),
            vec![
                Token::Ident("a".into()),
                Token::Ident("b".into()),
                Token::Ident("c".into())
            ]
        );
        assert!(lex("/* unterminated").is_err());
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("a <= b <> c >= d != e :: f || g"),
            vec![
                Token::Ident("a".into()),
                Token::Symbol(Sym::Le),
                Token::Ident("b".into()),
                Token::Symbol(Sym::Neq),
                Token::Ident("c".into()),
                Token::Symbol(Sym::Ge),
                Token::Ident("d".into()),
                Token::Symbol(Sym::Neq),
                Token::Ident("e".into()),
                Token::Symbol(Sym::DoubleColon),
                Token::Ident("f".into()),
                Token::Symbol(Sym::Concat),
                Token::Ident("g".into()),
            ]
        );
    }

    #[test]
    fn quoted_identifiers() {
        assert_eq!(
            toks(r#""Mixed Case""#),
            vec![Token::QuotedIdent("Mixed Case".into())]
        );
        assert!(lex(r#""unterminated"#).is_err());
    }

    #[test]
    fn offsets_recorded() {
        let spanned = lex("ab  cd").unwrap();
        assert_eq!(spanned[0].offset, 0);
        assert_eq!(spanned[1].offset, 4);
    }

    #[test]
    fn rejects_stray_characters() {
        assert!(lex("select @x").is_err());
    }
}
