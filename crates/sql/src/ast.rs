//! Abstract syntax tree for TruSQL.

use streamrel_types::{DataType, Interval, Value};

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col type [NOT NULL], ...)`
    CreateTable {
        name: String,
        columns: Vec<ColumnDef>,
        if_not_exists: bool,
    },
    /// `CREATE STREAM name (col type [CQTIME USER], ...)` — paper Example 1.
    CreateStream {
        name: String,
        columns: Vec<ColumnDef>,
        if_not_exists: bool,
    },
    /// `CREATE STREAM name AS <query>` — a Derived Stream (paper Example 3):
    /// runs always-on until dropped.
    CreateDerivedStream { name: String, query: Query },
    /// `CREATE VIEW name AS <query>` — over tables it is a classic view;
    /// over streams it is a Streaming View, instantiated on use (§3.2).
    CreateView { name: String, query: Query },
    /// `CREATE CHANNEL name FROM stream INTO table APPEND|REPLACE` — paper
    /// Example 4: archives a derived stream into an Active Table.
    CreateChannel {
        name: String,
        from_stream: String,
        into_table: String,
        mode: ChannelMode,
    },
    /// `CREATE INDEX name ON table (col, ...)`
    CreateIndex {
        name: String,
        table: String,
        columns: Vec<String>,
    },
    /// `DROP TABLE|STREAM|VIEW|CHANNEL|INDEX name`
    Drop {
        kind: ObjectKind,
        name: String,
        if_exists: bool,
    },
    /// `INSERT INTO table [(cols)] VALUES (...), (...)`
    Insert {
        table: String,
        columns: Option<Vec<String>>,
        rows: Vec<Vec<Expr>>,
    },
    /// `DELETE FROM table [WHERE expr]`
    Delete { table: String, filter: Option<Expr> },
    /// `TRUNCATE table`
    Truncate { table: String },
    /// A SELECT: snapshot query over tables, continuous query if any stream
    /// participates.
    Select(Query),
    /// `CREATE TABLE name AS <snapshot query>` — materialize a result.
    CreateTableAs { name: String, query: Query },
    /// `EXPLAIN <select>` — render the bound logical plan.
    Explain(Query),
    /// `EXPLAIN CHECK <select>` — run the static plan-safety analysis
    /// (`streamrel-check`) and render the admission verdict, every
    /// finding with its fix hint, and the conservative state-size bound.
    ExplainCheck(Query),
    /// `SHOW TABLES|STREAMS|VIEWS|CHANNELS|METRICS|TRACE` — catalog and
    /// engine introspection.
    Show(ShowKind),
    /// `CHECKPOINT` — compact the WAL into a checkpoint file.
    Checkpoint,
    /// `VACUUM` — reclaim dead MVCC tuple versions.
    Vacuum,
}

/// What `SHOW` lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShowKind {
    Tables,
    Streams,
    Views,
    Channels,
    /// The engine metrics registry (`streamrel_metrics`).
    Metrics,
    /// The engine trace ring (`streamrel_trace`).
    Trace,
}

/// Object kinds for DROP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectKind {
    Table,
    Stream,
    View,
    Channel,
    Index,
}

/// How a channel writes window results into its Active Table (§3.3):
/// `APPEND` adds rows, `REPLACE` overwrites the previous window's result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelMode {
    Append,
    Replace,
}

/// One column in CREATE TABLE / CREATE STREAM.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub ty: DataType,
    pub not_null: bool,
    /// `CQTIME USER` marker: this column carries the stream's logical time
    /// and the stream is ordered on it (paper Example 1).
    pub cqtime_user: bool,
}

/// A window clause attached to a stream reference in FROM (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowSpec {
    /// `<VISIBLE 'v' ADVANCE 'a'>` — time-based sliding window: every `a`,
    /// emit the query over the last `v` of data. `v == a` is tumbling.
    Time {
        visible: Interval,
        advance: Interval,
    },
    /// `<VISIBLE n ROWS ADVANCE m ROWS>` — row-count window.
    Rows { visible: u64, advance: u64 },
    /// `<SLICES n WINDOWS>` — over a derived stream: each window is `n`
    /// consecutive result batches of the upstream CQ (paper Example 5 uses
    /// `<slices 1 windows>`).
    Slices { count: u64 },
    /// A stream referenced with no window clause at all. The analyzer
    /// binds this instead of erroring so `streamrel-check` can classify
    /// the resulting unbounded-state operator (join, aggregate, bare
    /// scan) and reject it at registration with a targeted hint. It
    /// never survives admission: the CQ runtime refuses to build a
    /// window buffer for it.
    Unbounded,
}

impl WindowSpec {
    /// Tumbling time window shorthand.
    pub fn tumbling(interval: Interval) -> WindowSpec {
        WindowSpec::Time {
            visible: interval,
            advance: interval,
        }
    }
}

/// A SELECT query.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Query {
    pub projection: Vec<SelectItem>,
    pub from: Option<TableRef>,
    pub filter: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<u64>,
    pub distinct: bool,
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// `expr [AS alias]`
    Expr { expr: Expr, alias: Option<String> },
}

/// ORDER BY item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: Expr,
    pub asc: bool,
}

/// A FROM-clause relation.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// Base table, stream, view or derived stream; streams may carry a
    /// window clause.
    Named {
        name: String,
        alias: Option<String>,
        window: Option<WindowSpec>,
    },
    /// Parenthesized subquery with alias (paper Example 5's FROM-subquery).
    Subquery {
        query: Box<Query>,
        alias: String,
        /// A window applied to a subquery result is allowed when the
        /// subquery is itself continuous (e.g. `(select ...) c <slices 1
        /// windows>`); rarely used, kept for completeness.
        window: Option<WindowSpec>,
    },
    /// `left JOIN right ON expr` (INNER/LEFT), or comma-join (`kind =
    /// Cross`, predicate in WHERE).
    Join {
        left: Box<TableRef>,
        right: Box<TableRef>,
        kind: JoinKind,
        on: Option<Expr>,
    },
}

/// Join kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    Left,
    Cross,
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal constant.
    Literal(Value),
    /// Possibly-qualified column reference.
    Column {
        qualifier: Option<String>,
        name: String,
    },
    /// Unary operator.
    Unary { op: UnaryOp, expr: Box<Expr> },
    /// Binary operator.
    Binary {
        op: BinaryOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// Function call: scalar functions, aggregates, `count(*)`,
    /// `cq_close(*)`.
    Function {
        name: String,
        args: Vec<Expr>,
        star: bool,
        distinct: bool,
    },
    /// `expr::type` or `CAST(expr AS type)`.
    Cast { expr: Box<Expr>, ty: DataType },
    /// `expr IS [NOT] NULL`
    IsNull { expr: Box<Expr>, negated: bool },
    /// `expr [NOT] LIKE pattern`
    Like {
        expr: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    /// `expr [NOT] IN (v1, v2, ...)`
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    /// `CASE [operand] WHEN .. THEN .. [ELSE ..] END`
    Case {
        operand: Option<Box<Expr>>,
        whens: Vec<(Expr, Expr)>,
        else_expr: Option<Box<Expr>>,
    },
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Neg,
    Not,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Concat,
}

impl Expr {
    /// Convenience: column reference without qualifier.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.into(),
        }
    }

    /// Convenience: integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Literal(Value::Int(v))
    }

    /// Convenience: string literal.
    pub fn str(v: &str) -> Expr {
        Expr::Literal(Value::text(v))
    }

    /// Convenience: binary expression.
    pub fn binary(op: BinaryOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_tumbling_shorthand() {
        let w = WindowSpec::tumbling(60_000_000);
        assert_eq!(
            w,
            WindowSpec::Time {
                visible: 60_000_000,
                advance: 60_000_000
            }
        );
    }

    #[test]
    fn expr_builders() {
        let e = Expr::binary(BinaryOp::Eq, Expr::col("a"), Expr::int(1));
        match e {
            Expr::Binary { op, .. } => assert_eq!(op, BinaryOp::Eq),
            _ => panic!(),
        }
    }
}
