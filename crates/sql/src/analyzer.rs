//! Semantic analysis: name resolution, type checking, view inlining,
//! aggregate extraction, and classification of queries as snapshot (SQ) or
//! continuous (CQ) per §3.1 of the paper.

use std::sync::Arc;

use streamrel_types::{Column, DataType, Error, Result, Schema, Value};

use crate::ast::{Expr, JoinKind, OrderItem, Query, SelectItem, TableRef, UnaryOp, WindowSpec};
use crate::parser::parse_statement;
use crate::plan::{
    AggFunc, AggSpec, BinaryOp, BoundExpr, LogicalPlan, ScalarFunc, SchemaRef, SortKey,
};

/// What kind of relation a name denotes.
#[derive(Debug, Clone, PartialEq)]
pub enum RelKind {
    /// A stored table (snapshot semantics; Active Tables are these too).
    Table,
    /// A base stream; `cqtime` is the position of the ordering column.
    Stream { cqtime: Option<usize> },
    /// A derived stream (`CREATE STREAM ... AS`): windowable with
    /// `<SLICES n WINDOWS>` or time windows over its output.
    DerivedStream { cqtime: Option<usize> },
    /// A view; the stored SELECT text is inlined at use (§3.2: streaming
    /// views are "only instantiated when the view is itself used").
    View { sql: String },
}

/// Supplies relation metadata to the analyzer (implemented by the engine's
/// catalog; tests use in-memory maps).
pub trait SchemaProvider {
    /// Resolve a relation name to its schema and kind.
    fn relation(&self, name: &str) -> Option<(SchemaRef, RelKind)>;
}

/// Result of analyzing a SELECT.
#[derive(Debug, Clone)]
pub struct AnalyzedQuery {
    /// The bound logical plan.
    pub plan: LogicalPlan,
    /// True if any stream participates: this is a continuous query.
    pub is_continuous: bool,
}

/// One visible column during binding.
#[derive(Debug, Clone)]
struct ScopeEntry {
    qualifier: Option<String>,
    name: String,
    ty: DataType,
    nullable: bool,
}

/// The set of columns visible to expressions, positionally matching the
/// current intermediate row.
#[derive(Debug, Clone, Default)]
struct Scope {
    entries: Vec<ScopeEntry>,
}

impl Scope {
    fn from_schema(schema: &Schema, qualifier: Option<&str>) -> Scope {
        Scope {
            entries: schema
                .columns()
                .iter()
                .map(|c| ScopeEntry {
                    qualifier: qualifier.map(str::to_string),
                    name: c.name.clone(),
                    ty: c.ty,
                    nullable: c.nullable,
                })
                .collect(),
        }
    }

    fn concat(mut self, other: Scope) -> Scope {
        self.entries.extend(other.entries);
        self
    }

    fn mark_nullable(&mut self, from: usize) {
        for e in &mut self.entries[from..] {
            e.nullable = true;
        }
    }

    fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<(usize, &ScopeEntry)> {
        let mut found = None;
        for (i, e) in self.entries.iter().enumerate() {
            let q_match = match qualifier {
                None => true,
                Some(q) => e
                    .qualifier
                    .as_deref()
                    .is_some_and(|eq| eq.eq_ignore_ascii_case(q)),
            };
            if q_match && e.name.eq_ignore_ascii_case(name) {
                if found.is_some() {
                    return Err(Error::analysis(format!("ambiguous column `{name}`")));
                }
                found = Some((i, e));
            }
        }
        found.ok_or_else(|| {
            let full = match qualifier {
                Some(q) => format!("{q}.{name}"),
                None => name.to_string(),
            };
            Error::analysis(format!("unknown column `{full}`"))
        })
    }

    fn to_schema(&self) -> Schema {
        Schema::new_unchecked(
            self.entries
                .iter()
                .map(|e| Column {
                    name: e.name.clone(),
                    ty: e.ty,
                    nullable: e.nullable,
                })
                .collect(),
        )
    }
}

const MAX_VIEW_DEPTH: usize = 16;

/// Context needed to bind late (ORDER BY) expressions in an aggregated
/// query: the collected aggregate calls and the Aggregate node's schema.
struct AggBindCtx {
    agg_calls: Vec<Expr>,
    agg_schema: SchemaRef,
}

/// The analyzer. Cheap to construct; holds only the provider reference.
pub struct Analyzer<'a> {
    provider: &'a dyn SchemaProvider,
}

impl<'a> Analyzer<'a> {
    /// New analyzer over a schema provider.
    pub fn new(provider: &'a dyn SchemaProvider) -> Analyzer<'a> {
        Analyzer { provider }
    }

    /// Analyze a SELECT query into a logical plan.
    pub fn analyze(&self, query: &Query) -> Result<AnalyzedQuery> {
        let (plan, _) = self.analyze_query(query, 0)?;
        let streams = plan.stream_scans();
        if streams.len() > 1 {
            return Err(Error::unsupported(
                "continuous queries may reference at most one stream \
                 (join streams by deriving one first)",
            ));
        }
        let is_continuous = !streams.is_empty();
        if !is_continuous && plan_uses_cq_close(&plan) {
            return Err(Error::analysis(
                "cq_close(*) is only valid in continuous queries",
            ));
        }
        let plan = crate::optimizer::optimize(plan);
        Ok(AnalyzedQuery {
            plan,
            is_continuous,
        })
    }

    /// Bind an expression against a bare schema (used for DELETE filters
    /// and INSERT value expressions by the engine layer).
    pub fn bind_over_schema(&self, expr: &Expr, schema: &Schema) -> Result<BoundExpr> {
        let scope = Scope::from_schema(schema, None);
        self.bind_expr(expr, &scope)
    }

    /// Bind a constant expression (no columns in scope).
    pub fn bind_constant(&self, expr: &Expr) -> Result<BoundExpr> {
        self.bind_expr(expr, &Scope::default())
    }

    fn analyze_query(&self, query: &Query, depth: usize) -> Result<(LogicalPlan, Scope)> {
        if depth > MAX_VIEW_DEPTH {
            return Err(Error::analysis(
                "view nesting too deep (cycle in view definitions?)",
            ));
        }
        // FROM
        let (mut plan, scope) = match &query.from {
            Some(tr) => self.analyze_table_ref(tr, depth)?,
            None => (LogicalPlan::OneRow, Scope::default()),
        };

        // WHERE
        if let Some(filter) = &query.filter {
            let predicate = self.bind_expr(filter, &scope)?;
            require_boolish(&predicate, "WHERE")?;
            plan = LogicalPlan::Filter {
                input: Box::new(plan),
                predicate,
            };
        }

        // Aggregation?
        let has_aggs =
            query.projection.iter().any(
                |item| matches!(item, SelectItem::Expr { expr, .. } if contains_aggregate(expr)),
            ) || query.having.as_ref().is_some_and(contains_aggregate)
                || !query.group_by.is_empty();

        let (mut plan, mut out_exprs, mut out_names, agg_ctx): (
            LogicalPlan,
            Vec<BoundExpr>,
            Vec<String>,
            Option<AggBindCtx>,
        ) = if has_aggs {
            let (p, e, n, a) = self.plan_aggregate(query, plan, &scope)?;
            (p, e, n, Some(a))
        } else {
            if query.having.is_some() {
                return Err(Error::analysis("HAVING requires GROUP BY or aggregates"));
            }
            let (exprs, names) = self.bind_projection(&query.projection, &scope)?;
            (plan, exprs, names, None)
        };

        // Resolve ORDER BY before building the projection node so sort keys
        // not present in the output can ride along as hidden columns.
        let visible_n = out_exprs.len();
        let mut sort_keys: Vec<SortKey> = Vec::new();
        if !query.order_by.is_empty() {
            let out_schema_probe = Schema::new_unchecked(
                out_exprs
                    .iter()
                    .zip(&out_names)
                    .map(|(e, n)| Column::new(n.clone(), e.ty()))
                    .collect(),
            );
            let out_scope = Scope::from_schema(&out_schema_probe, None);
            for OrderItem { expr, asc } in &query.order_by {
                let bound = match expr {
                    Expr::Literal(Value::Int(n)) => {
                        let idx = *n as usize;
                        if idx == 0 || idx > visible_n {
                            return Err(Error::analysis(format!(
                                "ORDER BY position {n} is out of range"
                            )));
                        }
                        BoundExpr::Column {
                            index: idx - 1,
                            ty: out_schema_probe.column(idx - 1).ty,
                        }
                    }
                    e => match self.bind_expr(e, &out_scope) {
                        Ok(b) => b,
                        Err(out_err) => {
                            // Hidden sort column: bind against the input
                            // (or post-aggregate) scope and append it to
                            // the projection, stripped after the sort.
                            let fallback = match &agg_ctx {
                                Some(a) => self.bind_post_agg(
                                    e,
                                    &query.group_by,
                                    &a.agg_calls,
                                    query.group_by.len(),
                                    &a.agg_schema,
                                    &scope,
                                ),
                                None => self.bind_expr(e, &scope),
                            };
                            let b = fallback.map_err(|_| out_err)?;
                            if query.distinct {
                                return Err(Error::analysis(
                                    "for SELECT DISTINCT, ORDER BY expressions must \
                                     appear in the select list",
                                ));
                            }
                            out_exprs.push(b);
                            out_names.push(format!("__sort{}", out_exprs.len()));
                            BoundExpr::Column {
                                index: out_exprs.len() - 1,
                                ty: out_exprs.last().unwrap().ty(),
                            }
                        }
                    },
                };
                sort_keys.push(SortKey {
                    expr: bound,
                    asc: *asc,
                });
            }
        }

        // Projection node (including any hidden sort columns). A plain
        // column reference keeps its source nullability — `SELECT *` must
        // reproduce the input schema exactly (the wire/embedded
        // equivalence of `streamrel_metrics` depends on it). Computed and
        // post-aggregate outputs stay conservatively nullable.
        let full_schema = Arc::new(Schema::new_unchecked(
            out_exprs
                .iter()
                .zip(&out_names)
                .map(|(e, n)| {
                    let nullable = match (e, &agg_ctx) {
                        (BoundExpr::Column { index, .. }, None) => scope.entries[*index].nullable,
                        _ => true,
                    };
                    Column {
                        name: n.clone(),
                        ty: e.ty(),
                        nullable,
                    }
                })
                .collect(),
        ));
        let visible_schema = Arc::new(Schema::new_unchecked(
            full_schema.columns()[..visible_n].to_vec(),
        ));
        plan = LogicalPlan::Project {
            input: Box::new(plan),
            exprs: out_exprs,
            schema: full_schema.clone(),
        };

        if query.distinct {
            plan = LogicalPlan::Distinct {
                input: Box::new(plan),
            };
        }

        if !sort_keys.is_empty() {
            plan = LogicalPlan::Sort {
                input: Box::new(plan),
                keys: sort_keys,
            };
        }

        // Strip hidden sort columns.
        if full_schema.len() != visible_n {
            plan = LogicalPlan::Project {
                input: Box::new(plan),
                exprs: (0..visible_n)
                    .map(|i| BoundExpr::Column {
                        index: i,
                        ty: visible_schema.column(i).ty,
                    })
                    .collect(),
                schema: visible_schema.clone(),
            };
        }

        if let Some(n) = query.limit {
            plan = LogicalPlan::Limit {
                input: Box::new(plan),
                n,
            };
        }

        let out_scope = Scope::from_schema(&visible_schema, None);
        Ok((plan, out_scope))
    }

    fn analyze_table_ref(&self, tr: &TableRef, depth: usize) -> Result<(LogicalPlan, Scope)> {
        match tr {
            TableRef::Named {
                name,
                alias,
                window,
            } => {
                let (schema, kind) = self
                    .provider
                    .relation(name)
                    .ok_or_else(|| Error::catalog(format!("relation `{name}` does not exist")))?;
                let qualifier = alias.as_deref().unwrap_or(name);
                match kind {
                    RelKind::Table => {
                        if window.is_some() {
                            return Err(Error::analysis(format!(
                                "window clause is not allowed on table `{name}`"
                            )));
                        }
                        let scope = Scope::from_schema(&schema, Some(qualifier));
                        Ok((
                            LogicalPlan::TableScan {
                                table: name.clone(),
                                schema,
                            },
                            scope,
                        ))
                    }
                    RelKind::Stream { cqtime } => {
                        // A missing window clause binds as
                        // `WindowSpec::Unbounded` rather than erroring:
                        // `streamrel-check` classifies the unbounded
                        // operator (bare scan, join, aggregate) at
                        // registration and rejects with a targeted hint.
                        let window = window.unwrap_or(WindowSpec::Unbounded);
                        if matches!(window, WindowSpec::Slices { .. }) {
                            return Err(Error::analysis(
                                "<SLICES n WINDOWS> applies to derived streams only",
                            ));
                        }
                        if matches!(window, WindowSpec::Time { .. }) && cqtime.is_none() {
                            return Err(Error::analysis(format!(
                                "time window on stream `{name}` requires a CQTIME column"
                            )));
                        }
                        let scope = Scope::from_schema(&schema, Some(qualifier));
                        Ok((
                            LogicalPlan::StreamScan {
                                stream: name.clone(),
                                schema,
                                window,
                                cqtime,
                                derived: false,
                            },
                            scope,
                        ))
                    }
                    RelKind::DerivedStream { cqtime } => {
                        // As for base streams: bind the missing window as
                        // Unbounded and let the admission check reject it.
                        let window = window.unwrap_or(WindowSpec::Unbounded);
                        if matches!(window, WindowSpec::Time { .. }) && cqtime.is_none() {
                            return Err(Error::analysis(format!(
                                "time window on derived stream `{name}` requires it to \
                                 expose a cq_close column"
                            )));
                        }
                        let scope = Scope::from_schema(&schema, Some(qualifier));
                        Ok((
                            LogicalPlan::StreamScan {
                                stream: name.clone(),
                                schema,
                                window,
                                cqtime,
                                derived: true,
                            },
                            scope,
                        ))
                    }
                    RelKind::View { sql } => {
                        if window.is_some() {
                            return Err(Error::analysis(
                                "apply the window inside the view definition, \
                                 not on the view reference",
                            ));
                        }
                        let stmt = parse_statement(&sql)?;
                        let inner = match stmt {
                            crate::ast::Statement::Select(q) => q,
                            crate::ast::Statement::CreateView { query, .. } => query,
                            _ => {
                                return Err(Error::catalog(format!(
                                    "stored view `{name}` is not a SELECT"
                                )))
                            }
                        };
                        let (plan, inner_scope) = self.analyze_query(&inner, depth + 1)?;
                        let schema = inner_scope.to_schema();
                        let scope = Scope::from_schema(&schema, Some(qualifier));
                        Ok((plan, scope))
                    }
                }
            }
            TableRef::Subquery {
                query,
                alias,
                window,
            } => {
                if window.is_some() {
                    return Err(Error::unsupported(
                        "window clause on a FROM subquery; window the stream inside it",
                    ));
                }
                let (plan, inner_scope) = self.analyze_query(query, depth + 1)?;
                let schema = inner_scope.to_schema();
                let scope = Scope::from_schema(&schema, Some(alias));
                Ok((plan, scope))
            }
            TableRef::Join {
                left,
                right,
                kind,
                on,
            } => {
                let (lp, ls) = self.analyze_table_ref(left, depth)?;
                let (rp, rs) = self.analyze_table_ref(right, depth)?;
                let left_width = ls.entries.len();
                let mut scope = ls.concat(rs);
                if *kind == JoinKind::Left {
                    scope.mark_nullable(left_width);
                }
                let on_bound = match on {
                    Some(e) => {
                        let b = self.bind_expr(e, &scope)?;
                        require_boolish(&b, "JOIN ON")?;
                        Some(b)
                    }
                    None => None,
                };
                let schema = Arc::new(scope.to_schema());
                Ok((
                    LogicalPlan::Join {
                        left: Box::new(lp),
                        right: Box::new(rp),
                        kind: *kind,
                        on: on_bound,
                        schema,
                    },
                    scope,
                ))
            }
        }
    }

    fn bind_projection(
        &self,
        items: &[SelectItem],
        scope: &Scope,
    ) -> Result<(Vec<BoundExpr>, Vec<String>)> {
        let mut exprs = Vec::new();
        let mut names = Vec::new();
        for item in items {
            match item {
                SelectItem::Wildcard => {
                    for (i, e) in scope.entries.iter().enumerate() {
                        exprs.push(BoundExpr::Column { index: i, ty: e.ty });
                        names.push(e.name.clone());
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    let mut matched = false;
                    for (i, e) in scope.entries.iter().enumerate() {
                        if e.qualifier
                            .as_deref()
                            .is_some_and(|eq| eq.eq_ignore_ascii_case(q))
                        {
                            exprs.push(BoundExpr::Column { index: i, ty: e.ty });
                            names.push(e.name.clone());
                            matched = true;
                        }
                    }
                    if !matched {
                        return Err(Error::analysis(format!(
                            "unknown relation `{q}` in `{q}.*`"
                        )));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let bound = self.bind_expr(expr, scope)?;
                    names.push(output_name(expr, alias.as_deref()));
                    exprs.push(bound);
                }
            }
        }
        Ok((exprs, names))
    }

    /// Build the Aggregate node and rewrite the projection / HAVING to
    /// reference its output.
    fn plan_aggregate(
        &self,
        query: &Query,
        input: LogicalPlan,
        scope: &Scope,
    ) -> Result<(LogicalPlan, Vec<BoundExpr>, Vec<String>, AggBindCtx)> {
        // Bind group-by expressions over the input scope.
        let mut group_exprs = Vec::new();
        let mut group_names = Vec::new();
        for g in &query.group_by {
            let bound = self.bind_expr(g, scope)?;
            group_names.push(output_name(g, None));
            group_exprs.push(bound);
        }

        // Collect aggregate calls from projection, HAVING and ORDER BY
        // (`ORDER BY sum(x)` computes the aggregate even when unprojected).
        let mut agg_calls: Vec<Expr> = Vec::new();
        for item in &query.projection {
            if let SelectItem::Expr { expr, .. } = item {
                collect_aggregates(expr, &mut agg_calls);
            }
        }
        if let Some(h) = &query.having {
            collect_aggregates(h, &mut agg_calls);
        }
        for o in &query.order_by {
            collect_aggregates(&o.expr, &mut agg_calls);
        }
        // Deduplicate identical aggregate expressions so `count(*)` used
        // twice is computed once (the Jellybean principle in miniature).
        agg_calls.dedup_by(|a, b| a == b);
        let mut uniq: Vec<Expr> = Vec::new();
        for c in agg_calls {
            if !uniq.contains(&c) {
                uniq.push(c);
            }
        }

        let mut specs = Vec::with_capacity(uniq.len());
        for call in &uniq {
            let Expr::Function {
                name,
                args,
                star,
                distinct,
            } = call
            else {
                unreachable!("collect_aggregates only returns Function nodes");
            };
            let func = AggFunc::from_name(name).expect("checked by collect_aggregates");
            let (arg, arg_ty) = if *star {
                if func != AggFunc::Count {
                    return Err(Error::analysis(format!("{name}(*) is not valid")));
                }
                (None, None)
            } else {
                if args.len() != 1 {
                    return Err(Error::analysis(format!(
                        "aggregate {name} takes exactly one argument"
                    )));
                }
                let bound = self.bind_expr(&args[0], scope)?;
                let ty = bound.ty();
                if matches!(
                    func,
                    AggFunc::Sum | AggFunc::Avg | AggFunc::Variance | AggFunc::Stddev
                ) && !(ty.is_numeric() || ty == DataType::Interval)
                {
                    return Err(Error::type_err(format!("{name}() over non-numeric {ty}")));
                }
                (Some(bound), Some(ty))
            };
            specs.push(AggSpec {
                func,
                arg,
                distinct: *distinct,
                name: name.to_ascii_lowercase(),
                ty: func.result_type(arg_ty),
            });
        }

        // Aggregate output schema: [groups..., aggs...].
        let mut agg_schema_cols: Vec<Column> = group_exprs
            .iter()
            .zip(&group_names)
            .map(|(e, n)| Column::new(n.clone(), e.ty()))
            .collect();
        for s in &specs {
            agg_schema_cols.push(Column::new(s.name.clone(), s.ty));
        }
        let agg_schema = Arc::new(Schema::new_unchecked(agg_schema_cols));
        let agg_plan = LogicalPlan::Aggregate {
            input: Box::new(input),
            group_exprs: group_exprs.clone(),
            aggs: specs,
            schema: agg_schema.clone(),
        };

        // Rewrite projection and HAVING over the aggregate output: each
        // group expression or aggregate call maps to a positional column.
        let n_groups = query.group_by.len();
        let rewrite = |expr: &Expr| -> Result<BoundExpr> {
            self.bind_post_agg(expr, &query.group_by, &uniq, n_groups, &agg_schema, scope)
        };

        let mut plan = agg_plan;
        if let Some(h) = &query.having {
            let predicate = rewrite(h)?;
            require_boolish(&predicate, "HAVING")?;
            plan = LogicalPlan::Filter {
                input: Box::new(plan),
                predicate,
            };
        }

        let mut out_exprs = Vec::new();
        let mut out_names = Vec::new();
        for item in &query.projection {
            match item {
                SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => {
                    return Err(Error::analysis(
                        "`*` cannot be used with GROUP BY / aggregates",
                    ))
                }
                SelectItem::Expr { expr, alias } => {
                    out_exprs.push(rewrite(expr)?);
                    out_names.push(output_name(expr, alias.as_deref()));
                }
            }
        }
        Ok((
            plan,
            out_exprs,
            out_names,
            AggBindCtx {
                agg_calls: uniq,
                agg_schema,
            },
        ))
    }

    /// Bind an expression in the post-aggregation scope: occurrences of
    /// group-by expressions or collected aggregate calls become columns of
    /// the Aggregate output; anything else must resolve *through* them.
    #[allow(clippy::too_many_arguments)]
    fn bind_post_agg(
        &self,
        expr: &Expr,
        groups: &[Expr],
        aggs: &[Expr],
        n_groups: usize,
        agg_schema: &Schema,
        pre_scope: &Scope,
    ) -> Result<BoundExpr> {
        // Exact match with a group-by expression?
        if let Some(i) = groups.iter().position(|g| g == expr) {
            return Ok(BoundExpr::Column {
                index: i,
                ty: agg_schema.column(i).ty,
            });
        }
        // Exact match with an aggregate call?
        if let Some(i) = aggs.iter().position(|a| a == expr) {
            let idx = n_groups + i;
            return Ok(BoundExpr::Column {
                index: idx,
                ty: agg_schema.column(idx).ty,
            });
        }
        match expr {
            Expr::Literal(v) => Ok(BoundExpr::Literal(v.clone())),
            Expr::Column { qualifier, name } => {
                // A bare column that is not a group key: classic SQL error.
                // (It resolved in the pre-agg scope, so give the right hint.)
                if pre_scope.resolve(qualifier.as_deref(), name).is_ok() {
                    Err(Error::analysis(format!(
                        "column `{name}` must appear in GROUP BY or be used in an aggregate"
                    )))
                } else {
                    Err(Error::analysis(format!("unknown column `{name}`")))
                }
            }
            Expr::Function { name, star, .. } => {
                if *star && name.eq_ignore_ascii_case("cq_close") {
                    return Ok(BoundExpr::CqClose);
                }
                if AggFunc::from_name(name).is_some() {
                    // An aggregate call not in `aggs` can only mean nested
                    // aggregation.
                    return Err(Error::analysis(format!(
                        "aggregate `{name}` cannot be nested inside another aggregate"
                    )));
                }
                // Scalar function: recurse on arguments.
                self.bind_composite_post_agg(expr, groups, aggs, n_groups, agg_schema, pre_scope)
            }
            _ => self.bind_composite_post_agg(expr, groups, aggs, n_groups, agg_schema, pre_scope),
        }
    }

    /// Recurse into a composite expression in post-agg binding.
    #[allow(clippy::too_many_arguments)]
    fn bind_composite_post_agg(
        &self,
        expr: &Expr,
        groups: &[Expr],
        aggs: &[Expr],
        n_groups: usize,
        agg_schema: &Schema,
        pre_scope: &Scope,
    ) -> Result<BoundExpr> {
        let rec = |e: &Expr| self.bind_post_agg(e, groups, aggs, n_groups, agg_schema, pre_scope);
        match expr {
            Expr::Unary { op, expr } => {
                let inner = rec(expr)?;
                check_unary(*op, &inner)?;
                Ok(BoundExpr::Unary {
                    op: *op,
                    expr: Box::new(inner),
                })
            }
            Expr::Binary { op, left, right } => {
                let l = rec(left)?;
                let r = rec(right)?;
                let ty = binary_result_type(*op, &l, &r)?;
                Ok(BoundExpr::Binary {
                    op: *op,
                    left: Box::new(l),
                    right: Box::new(r),
                    ty,
                })
            }
            Expr::Cast { expr, ty } => Ok(BoundExpr::Cast {
                expr: Box::new(rec(expr)?),
                ty: *ty,
            }),
            Expr::IsNull { expr, negated } => Ok(BoundExpr::IsNull {
                expr: Box::new(rec(expr)?),
                negated: *negated,
            }),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Ok(BoundExpr::Like {
                expr: Box::new(rec(expr)?),
                pattern: Box::new(rec(pattern)?),
                negated: *negated,
            }),
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => desugar_between(rec(expr)?, rec(low)?, rec(high)?, *negated),
            Expr::InList {
                expr,
                list,
                negated,
            } => Ok(BoundExpr::InList {
                expr: Box::new(rec(expr)?),
                list: list.iter().map(rec).collect::<Result<_>>()?,
                negated: *negated,
            }),
            Expr::Case {
                operand,
                whens,
                else_expr,
            } => {
                let operand = operand.as_ref().map(|e| rec(e)).transpose()?;
                let whens = whens
                    .iter()
                    .map(|(c, r)| Ok((rec(c)?, rec(r)?)))
                    .collect::<Result<Vec<_>>>()?;
                let else_expr = else_expr.as_ref().map(|e| rec(e)).transpose()?;
                let ty = case_result_type(&whens, &else_expr);
                Ok(BoundExpr::Case {
                    operand: operand.map(Box::new),
                    whens,
                    else_expr: else_expr.map(Box::new),
                    ty,
                })
            }
            Expr::Function { name, args, .. } => {
                let func = ScalarFunc::from_name(name)
                    .ok_or_else(|| Error::analysis(format!("unknown function `{name}`")))?;
                let bound: Vec<BoundExpr> = args.iter().map(rec).collect::<Result<_>>()?;
                let ty = scalar_result_type(func, &bound)?;
                Ok(BoundExpr::ScalarFunc {
                    func,
                    args: bound,
                    ty,
                })
            }
            // Literal / Column handled by bind_post_agg before recursion.
            _ => unreachable!("handled in bind_post_agg"),
        }
    }

    /// Bind an expression in a plain (pre-aggregation) scope.
    fn bind_expr(&self, expr: &Expr, scope: &Scope) -> Result<BoundExpr> {
        match expr {
            Expr::Literal(v) => Ok(BoundExpr::Literal(v.clone())),
            Expr::Column { qualifier, name } => {
                let (index, entry) = scope.resolve(qualifier.as_deref(), name)?;
                Ok(BoundExpr::Column {
                    index,
                    ty: entry.ty,
                })
            }
            Expr::Unary { op, expr } => {
                let inner = self.bind_expr(expr, scope)?;
                check_unary(*op, &inner)?;
                Ok(BoundExpr::Unary {
                    op: *op,
                    expr: Box::new(inner),
                })
            }
            Expr::Binary { op, left, right } => {
                let l = self.bind_expr(left, scope)?;
                let r = self.bind_expr(right, scope)?;
                let ty = binary_result_type(*op, &l, &r)?;
                Ok(BoundExpr::Binary {
                    op: *op,
                    left: Box::new(l),
                    right: Box::new(r),
                    ty,
                })
            }
            Expr::Cast { expr, ty } => Ok(BoundExpr::Cast {
                expr: Box::new(self.bind_expr(expr, scope)?),
                ty: *ty,
            }),
            Expr::IsNull { expr, negated } => Ok(BoundExpr::IsNull {
                expr: Box::new(self.bind_expr(expr, scope)?),
                negated: *negated,
            }),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Ok(BoundExpr::Like {
                expr: Box::new(self.bind_expr(expr, scope)?),
                pattern: Box::new(self.bind_expr(pattern, scope)?),
                negated: *negated,
            }),
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => desugar_between(
                self.bind_expr(expr, scope)?,
                self.bind_expr(low, scope)?,
                self.bind_expr(high, scope)?,
                *negated,
            ),
            Expr::InList {
                expr,
                list,
                negated,
            } => Ok(BoundExpr::InList {
                expr: Box::new(self.bind_expr(expr, scope)?),
                list: list
                    .iter()
                    .map(|e| self.bind_expr(e, scope))
                    .collect::<Result<_>>()?,
                negated: *negated,
            }),
            Expr::Case {
                operand,
                whens,
                else_expr,
            } => {
                let operand = operand
                    .as_ref()
                    .map(|e| self.bind_expr(e, scope))
                    .transpose()?;
                let whens = whens
                    .iter()
                    .map(|(c, r)| Ok((self.bind_expr(c, scope)?, self.bind_expr(r, scope)?)))
                    .collect::<Result<Vec<_>>>()?;
                let else_expr = else_expr
                    .as_ref()
                    .map(|e| self.bind_expr(e, scope))
                    .transpose()?;
                let ty = case_result_type(&whens, &else_expr);
                Ok(BoundExpr::Case {
                    operand: operand.map(Box::new),
                    whens,
                    else_expr: else_expr.map(Box::new),
                    ty,
                })
            }
            Expr::Function {
                name, args, star, ..
            } => {
                if *star && name.eq_ignore_ascii_case("cq_close") {
                    return Ok(BoundExpr::CqClose);
                }
                if AggFunc::from_name(name).is_some() {
                    return Err(Error::analysis(format!(
                        "aggregate `{name}` is not allowed here (only in SELECT or HAVING \
                         with GROUP BY)"
                    )));
                }
                let func = ScalarFunc::from_name(name)
                    .ok_or_else(|| Error::analysis(format!("unknown function `{name}`")))?;
                let bound: Vec<BoundExpr> = args
                    .iter()
                    .map(|e| self.bind_expr(e, scope))
                    .collect::<Result<_>>()?;
                let ty = scalar_result_type(func, &bound)?;
                Ok(BoundExpr::ScalarFunc {
                    func,
                    args: bound,
                    ty,
                })
            }
        }
    }
}

/// Output column name for a projection item.
fn output_name(expr: &Expr, alias: Option<&str>) -> String {
    if let Some(a) = alias {
        return a.to_string();
    }
    match expr {
        Expr::Column { name, .. } => name.clone(),
        Expr::Function { name, .. } => name.to_ascii_lowercase(),
        Expr::Cast { expr, .. } => output_name(expr, None),
        _ => "?column?".to_string(),
    }
}

fn contains_aggregate(expr: &Expr) -> bool {
    let mut found = false;
    walk_expr(expr, &mut |e| {
        if let Expr::Function { name, .. } = e {
            if AggFunc::from_name(name).is_some() {
                found = true;
            }
        }
    });
    found
}

fn collect_aggregates(expr: &Expr, out: &mut Vec<Expr>) {
    walk_expr(expr, &mut |e| {
        if let Expr::Function { name, .. } = e {
            if AggFunc::from_name(name).is_some() {
                out.push(e.clone());
            }
        }
    });
}

fn walk_expr(expr: &Expr, f: &mut impl FnMut(&Expr)) {
    f(expr);
    match expr {
        Expr::Literal(_) | Expr::Column { .. } => {}
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } | Expr::IsNull { expr, .. } => {
            walk_expr(expr, f)
        }
        Expr::Binary { left, right, .. } => {
            walk_expr(left, f);
            walk_expr(right, f);
        }
        Expr::Like { expr, pattern, .. } => {
            walk_expr(expr, f);
            walk_expr(pattern, f);
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            walk_expr(expr, f);
            walk_expr(low, f);
            walk_expr(high, f);
        }
        Expr::InList { expr, list, .. } => {
            walk_expr(expr, f);
            for e in list {
                walk_expr(e, f);
            }
        }
        Expr::Case {
            operand,
            whens,
            else_expr,
        } => {
            if let Some(e) = operand {
                walk_expr(e, f);
            }
            for (c, r) in whens {
                walk_expr(c, f);
                walk_expr(r, f);
            }
            if let Some(e) = else_expr {
                walk_expr(e, f);
            }
        }
        Expr::Function { args, .. } => {
            for a in args {
                walk_expr(a, f);
            }
        }
    }
}

fn plan_uses_cq_close(plan: &LogicalPlan) -> bool {
    let mut found = false;
    plan.visit(&mut |p| {
        let check = |e: &BoundExpr| e.uses_cq_close();
        match p {
            LogicalPlan::Filter { predicate, .. } => found |= check(predicate),
            LogicalPlan::Project { exprs, .. } => found |= exprs.iter().any(check),
            LogicalPlan::Aggregate {
                group_exprs, aggs, ..
            } => {
                found |= group_exprs.iter().any(check)
                    || aggs.iter().any(|a| a.arg.as_ref().is_some_and(check));
            }
            LogicalPlan::Join { on, .. } => {
                found |= on.as_ref().is_some_and(check);
            }
            LogicalPlan::Sort { keys, .. } => {
                found |= keys.iter().any(|k| check(&k.expr));
            }
            _ => {}
        }
    });
    found
}

fn require_boolish(expr: &BoundExpr, clause: &str) -> Result<()> {
    // Bool or NULL literal acceptable.
    match expr.ty() {
        DataType::Bool => Ok(()),
        _ if matches!(expr, BoundExpr::Literal(Value::Null)) => Ok(()),
        ty => Err(Error::type_err(format!(
            "{clause} predicate must be boolean, got {ty}"
        ))),
    }
}

fn check_unary(op: UnaryOp, inner: &BoundExpr) -> Result<()> {
    let ty = inner.ty();
    match op {
        UnaryOp::Not if ty == DataType::Bool => Ok(()),
        UnaryOp::Not => Err(Error::type_err(format!("NOT requires boolean, got {ty}"))),
        UnaryOp::Neg if ty.is_numeric() || ty == DataType::Interval => Ok(()),
        UnaryOp::Neg => Err(Error::type_err(format!(
            "unary minus requires numeric, got {ty}"
        ))),
    }
}

fn is_null_literal(e: &BoundExpr) -> bool {
    matches!(e, BoundExpr::Literal(Value::Null))
}

/// Type-check a binary expression and compute its result type. Implements
/// the asymmetric temporal arithmetic rules (timestamp - timestamp =
/// interval, timestamp ± interval = timestamp) that Example 5's
/// `c.stime - '1 week'::interval` depends on.
fn binary_result_type(op: BinaryOp, l: &BoundExpr, r: &BoundExpr) -> Result<DataType> {
    use BinaryOp::*;
    use DataType::*;
    let lt = l.ty();
    let rt = r.ty();
    let err = || {
        Err(Error::type_err(format!(
            "operator {op:?} cannot be applied to {lt} and {rt}"
        )))
    };
    match op {
        And | Or => {
            if (lt == Bool || is_null_literal(l)) && (rt == Bool || is_null_literal(r)) {
                Ok(Bool)
            } else {
                err()
            }
        }
        Eq | Neq | Lt | Le | Gt | Ge => {
            if is_null_literal(l) || is_null_literal(r) {
                return Ok(Bool);
            }
            // Temporal values are raw microsecond integers; allow
            // comparing them with integer literals/columns directly.
            let int_temporal = (lt == Int && rt.is_temporal()) || (rt == Int && lt.is_temporal());
            if lt == rt || lt.common_type(rt).is_some() || int_temporal {
                Ok(Bool)
            } else {
                err()
            }
        }
        Concat => Ok(Text),
        Add | Sub => match (lt, rt) {
            _ if lt.is_numeric() && rt.is_numeric() => Ok(lt.common_type(rt).unwrap()),
            (Timestamp, Interval) => Ok(Timestamp),
            (Interval, Timestamp) if op == Add => Ok(Timestamp),
            (Timestamp, Timestamp) if op == Sub => Ok(Interval),
            (Interval, Interval) => Ok(Interval),
            _ => err(),
        },
        Mul => match (lt, rt) {
            _ if lt.is_numeric() && rt.is_numeric() => Ok(lt.common_type(rt).unwrap()),
            (Interval, Int) | (Int, Interval) => Ok(Interval),
            (Interval, Float) | (Float, Interval) => Ok(Interval),
            _ => err(),
        },
        Div => match (lt, rt) {
            _ if lt.is_numeric() && rt.is_numeric() => Ok(lt.common_type(rt).unwrap()),
            (Interval, Int) | (Interval, Float) => Ok(Interval),
            _ => err(),
        },
        Mod => {
            if lt == Int && rt == Int {
                Ok(Int)
            } else {
                err()
            }
        }
    }
}

fn case_result_type(whens: &[(BoundExpr, BoundExpr)], else_expr: &Option<BoundExpr>) -> DataType {
    let mut ty: Option<DataType> = None;
    let mut consider = |e: &BoundExpr| {
        if is_null_literal(e) {
            return;
        }
        let t = e.ty();
        ty = Some(match ty {
            None => t,
            Some(prev) => prev.common_type(t).unwrap_or(prev),
        });
    };
    for (_, r) in whens {
        consider(r);
    }
    if let Some(e) = else_expr {
        consider(e);
    }
    ty.unwrap_or(DataType::Text)
}

fn scalar_result_type(func: ScalarFunc, args: &[BoundExpr]) -> Result<DataType> {
    use ScalarFunc::*;
    let arity_err = |want: &str| {
        Err(Error::analysis(format!(
            "{func:?} expects {want} argument(s), got {}",
            args.len()
        )))
    };
    match func {
        Abs => {
            if args.len() != 1 {
                return arity_err("1");
            }
            let t = args[0].ty();
            if t.is_numeric() || t == DataType::Interval {
                Ok(t)
            } else {
                Err(Error::type_err(format!("abs() over {t}")))
            }
        }
        Lower | Upper => {
            if args.len() != 1 {
                return arity_err("1");
            }
            Ok(DataType::Text)
        }
        Length => {
            if args.len() != 1 {
                return arity_err("1");
            }
            Ok(DataType::Int)
        }
        Round | Floor | Ceil => {
            if args.len() != 1 {
                return arity_err("1");
            }
            let t = args[0].ty();
            if t.is_numeric() {
                Ok(t)
            } else {
                Err(Error::type_err(format!("{func:?} over {t}")))
            }
        }
        Coalesce | Greatest | Least => {
            if args.is_empty() {
                return arity_err("at least 1");
            }
            let ty = args
                .iter()
                .filter(|a| !is_null_literal(a))
                .map(|a| a.ty())
                .next()
                .unwrap_or(DataType::Text);
            Ok(ty)
        }
        NullIf => {
            if args.len() != 2 {
                return arity_err("2");
            }
            Ok(args[0].ty())
        }
        Substr => {
            if args.len() != 2 && args.len() != 3 {
                return arity_err("2 or 3");
            }
            Ok(DataType::Text)
        }
    }
}

fn desugar_between(
    expr: BoundExpr,
    low: BoundExpr,
    high: BoundExpr,
    negated: bool,
) -> Result<BoundExpr> {
    let ge = BoundExpr::Binary {
        op: BinaryOp::Ge,
        left: Box::new(expr.clone()),
        right: Box::new(low),
        ty: DataType::Bool,
    };
    let le = BoundExpr::Binary {
        op: BinaryOp::Le,
        left: Box::new(expr),
        right: Box::new(high),
        ty: DataType::Bool,
    };
    let and = BoundExpr::Binary {
        op: BinaryOp::And,
        left: Box::new(ge),
        right: Box::new(le),
        ty: DataType::Bool,
    };
    Ok(if negated {
        BoundExpr::Unary {
            op: UnaryOp::Not,
            expr: Box::new(and),
        }
    } else {
        and
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Statement;
    use std::collections::HashMap;
    use streamrel_types::time::MINUTES;

    struct FakeProvider {
        rels: HashMap<String, (SchemaRef, RelKind)>,
    }

    impl SchemaProvider for FakeProvider {
        fn relation(&self, name: &str) -> Option<(SchemaRef, RelKind)> {
            self.rels.get(&name.to_ascii_lowercase()).cloned()
        }
    }

    fn provider() -> FakeProvider {
        let mut rels = HashMap::new();
        let url_stream = Arc::new(
            Schema::new(vec![
                Column::not_null("url", DataType::Text),
                Column::not_null("atime", DataType::Timestamp),
                Column::new("client_ip", DataType::Text),
            ])
            .unwrap(),
        );
        rels.insert(
            "url_stream".into(),
            (url_stream, RelKind::Stream { cqtime: Some(1) }),
        );
        let urls_archive = Arc::new(
            Schema::new(vec![
                Column::new("url", DataType::Text),
                Column::new("scnt", DataType::Int),
                Column::new("stime", DataType::Timestamp),
            ])
            .unwrap(),
        );
        rels.insert("urls_archive".into(), (urls_archive, RelKind::Table));
        let urls_now = Arc::new(
            Schema::new(vec![
                Column::new("url", DataType::Text),
                Column::new("scnt", DataType::Int),
                Column::new("cq_close", DataType::Timestamp),
            ])
            .unwrap(),
        );
        rels.insert(
            "urls_now".into(),
            (urls_now, RelKind::DerivedStream { cqtime: Some(2) }),
        );
        let dim = Arc::new(
            Schema::new(vec![
                Column::new("url", DataType::Text),
                Column::new("category", DataType::Text),
            ])
            .unwrap(),
        );
        rels.insert("url_dim".into(), (dim, RelKind::Table));
        rels.insert(
            "top_view".into(),
            (
                Arc::new(Schema::empty()),
                RelKind::View {
                    sql: "select url, count(*) c from url_stream \
                          <visible '5 minutes' advance '1 minute'> group by url"
                        .into(),
                },
            ),
        );
        FakeProvider { rels }
    }

    fn analyze(sql: &str) -> Result<AnalyzedQuery> {
        let p = provider();
        let stmt = parse_statement(sql)?;
        let Statement::Select(q) = stmt else {
            panic!("not a select")
        };
        Analyzer::new(&p).analyze(&q)
    }

    #[test]
    fn example_2_analyzes_as_cq() {
        let a = analyze(
            "SELECT url, count(*) url_count \
             FROM url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'> \
             GROUP by url ORDER by url_count desc LIMIT 10",
        )
        .unwrap();
        assert!(a.is_continuous);
        let schema = a.plan.schema();
        assert_eq!(schema.column(0).name, "url");
        assert_eq!(schema.column(1).name, "url_count");
        assert_eq!(schema.column(1).ty, DataType::Int);
        assert_eq!(
            a.plan.stream_scans()[0].1,
            WindowSpec::Time {
                visible: 5 * MINUTES,
                advance: MINUTES
            }
        );
    }

    #[test]
    fn snapshot_query_is_not_continuous() {
        let a = analyze("select url, scnt from urls_archive where scnt > 10").unwrap();
        assert!(!a.is_continuous);
    }

    #[test]
    fn stream_without_window_binds_as_unbounded() {
        // The analyzer no longer rejects a windowless stream reference —
        // it binds `WindowSpec::Unbounded` so the registration-time
        // safety check (`streamrel-check`) can classify the unbounded
        // operator and reject with a targeted hint.
        let a = analyze("select * from url_stream").unwrap();
        assert!(a.is_continuous);
        assert_eq!(a.plan.stream_scans()[0].1, WindowSpec::Unbounded);
    }

    #[test]
    fn window_on_table_rejected() {
        let e = analyze("select * from urls_archive <tumbling '1 minute'>").unwrap_err();
        assert!(e.to_string().contains("not allowed on table"), "{e}");
    }

    #[test]
    fn example_5_historical_join_analyzes() {
        let a = analyze(
            "select c.scnt, h.scnt, c.stime from \
             (select sum(scnt) as scnt, cq_close(*) as stime \
              from urls_now <slices 1 windows>) c, urls_archive h \
             where c.stime - '1 week'::interval = h.stime",
        )
        .unwrap();
        assert!(a.is_continuous);
        let schema = a.plan.schema();
        assert_eq!(schema.len(), 3);
        assert_eq!(schema.column(2).name, "stime");
        assert_eq!(schema.column(2).ty, DataType::Timestamp);
    }

    #[test]
    fn cq_close_in_snapshot_query_rejected() {
        let e = analyze("select cq_close(*) from urls_archive").unwrap_err();
        assert!(e.to_string().contains("cq_close"), "{e}");
    }

    #[test]
    fn two_streams_rejected() {
        let e = analyze(
            "select * from url_stream <tumbling '1 minute'> a, \
             url_stream <tumbling '1 minute'> b",
        )
        .unwrap_err();
        assert!(matches!(e, Error::Unsupported(_)), "{e}");
    }

    #[test]
    fn ungrouped_column_rejected() {
        let e = analyze(
            "select client_ip, count(*) from url_stream \
             <tumbling '1 minute'> group by url",
        )
        .unwrap_err();
        assert!(e.to_string().contains("GROUP BY"), "{e}");
    }

    #[test]
    fn view_inlines() {
        let a = analyze("select * from top_view where c > 5").unwrap();
        assert!(a.is_continuous, "view over a stream stays continuous");
        let schema = a.plan.schema();
        assert_eq!(schema.column(0).name, "url");
        assert_eq!(schema.column(1).name, "c");
    }

    #[test]
    fn stream_table_join_enrichment() {
        let a = analyze(
            "select s.url, d.category, count(*) c \
             from url_stream <visible '5 minutes' advance '1 minute'> s \
             join url_dim d on s.url = d.url \
             group by s.url, d.category",
        )
        .unwrap();
        assert!(a.is_continuous);
        assert_eq!(a.plan.schema().len(), 3);
    }

    #[test]
    fn left_join_marks_nullable() {
        let a = analyze(
            "select s.url, d.category from \
             url_stream <tumbling '1 minute'> s \
             left join url_dim d on s.url = d.url",
        )
        .unwrap();
        let schema = a.plan.schema();
        assert!(schema.column(1).nullable);
    }

    #[test]
    fn order_by_ordinal_and_alias() {
        analyze("select url, scnt from urls_archive order by 2 desc").unwrap();
        analyze("select url, scnt total from urls_archive order by total").unwrap();
        assert!(analyze("select url from urls_archive order by 5").is_err());
        assert!(analyze("select url from urls_archive order by nonexistent").is_err());
    }

    #[test]
    fn temporal_arithmetic_types() {
        let a =
            analyze("select stime - '1 week'::interval ago, stime - stime gap from urls_archive")
                .unwrap();
        let s = a.plan.schema();
        assert_eq!(s.column(0).ty, DataType::Timestamp);
        assert_eq!(s.column(1).ty, DataType::Interval);
    }

    #[test]
    fn type_errors_caught() {
        assert!(analyze("select url + 1 from urls_archive").is_err());
        assert!(analyze("select * from urls_archive where url").is_err());
        assert!(analyze("select sum(url) from urls_archive").is_err());
        assert!(analyze("select not scnt from urls_archive").is_err());
    }

    #[test]
    fn having_and_duplicate_aggs_share() {
        let a = analyze(
            "select url, count(*) c from urls_archive group by url \
             having count(*) > 5",
        )
        .unwrap();
        // The plan must contain exactly one aggregate spec (count(*) is
        // shared between SELECT and HAVING).
        let mut agg_count = None;
        a.plan.visit(&mut |p| {
            if let LogicalPlan::Aggregate { aggs, .. } = p {
                agg_count = Some(aggs.len());
            }
        });
        assert_eq!(agg_count, Some(1));
    }

    #[test]
    fn wildcard_expansion() {
        let a = analyze("select * from urls_archive").unwrap();
        assert_eq!(a.plan.schema().len(), 3);
        let a = analyze("select h.* from urls_archive h join url_dim d on h.url = d.url").unwrap();
        assert_eq!(a.plan.schema().len(), 3);
    }

    #[test]
    fn ambiguous_column_rejected() {
        let e =
            analyze("select url from urls_archive h join url_dim d on h.url = d.url").unwrap_err();
        assert!(e.to_string().contains("ambiguous"), "{e}");
    }

    #[test]
    fn select_without_from() {
        let a = analyze("select 1 + 2 three, 'x' || 'y'").unwrap();
        assert!(!a.is_continuous);
        assert_eq!(a.plan.schema().column(0).name, "three");
    }

    #[test]
    fn slices_on_base_stream_rejected() {
        let e = analyze("select * from url_stream <slices 1 windows>").unwrap_err();
        assert!(e.to_string().contains("derived"), "{e}");
    }

    #[test]
    fn group_by_expression_reused_in_projection() {
        let a = analyze("select upper(url) u, count(*) c from urls_archive group by upper(url)")
            .unwrap();
        assert_eq!(a.plan.schema().column(0).name, "u");
    }

    #[test]
    fn avg_returns_float() {
        let a = analyze("select avg(scnt) from urls_archive").unwrap();
        assert_eq!(a.plan.schema().column(0).ty, DataType::Float);
    }

    #[test]
    fn distinct_plan_has_distinct_node() {
        let a = analyze("select distinct url from urls_archive").unwrap();
        let mut has = false;
        a.plan.visit(&mut |p| {
            if matches!(p, LogicalPlan::Distinct { .. }) {
                has = true;
            }
        });
        assert!(has);
    }
}
