//! Property-based parser robustness: the front-end must never panic, on
//! any input — garbage returns `Err`, and everything it accepts must
//! re-parse consistently.

use proptest::prelude::*;
use streamrel_sql::parser::{parse_statement, parse_statements};

proptest! {
    /// Arbitrary byte soup never panics the lexer/parser.
    #[test]
    fn parser_never_panics_on_garbage(input in ".{0,200}") {
        let _ = parse_statements(&input);
    }

    /// SQL-flavored token soup never panics either (denser coverage of
    /// parser paths than pure noise).
    #[test]
    fn parser_never_panics_on_sqlish(
        words in prop::collection::vec(
            prop_oneof![
                Just("select"), Just("from"), Just("where"), Just("group"),
                Just("by"), Just("order"), Just("limit"), Just("create"),
                Just("stream"), Just("table"), Just("channel"), Just("as"),
                Just("visible"), Just("advance"), Just("slices"), Just("windows"),
                Just("count"), Just("sum"), Just("(*)"), Just("("), Just(")"),
                Just(","), Just("<"), Just(">"), Just("'5 minutes'"), Just("*"),
                Just("="), Just("+"), Just("t"), Just("x"), Just("1"), Just("'a'"),
                Just("::"), Just("interval"), Just("case"), Just("when"),
                Just("then"), Just("end"), Just("join"), Just("on"), Just(";"),
            ],
            0..30,
        )
    ) {
        let sql = words.join(" ");
        let _ = parse_statements(&sql);
    }

    /// Window clauses with arbitrary (positive) intervals parse and carry
    /// the right microsecond values.
    #[test]
    fn window_clause_roundtrip(vis in 1u64..10_000, adv in 1u64..10_000) {
        let sql = format!(
            "select * from s <visible '{vis} seconds' advance '{adv} seconds'>"
        );
        let stmt = parse_statement(&sql).unwrap();
        let streamrel_sql::ast::Statement::Select(q) = stmt else { panic!() };
        let Some(streamrel_sql::ast::TableRef::Named { window, .. }) = q.from else {
            panic!()
        };
        prop_assert_eq!(
            window,
            Some(streamrel_sql::WindowSpec::Time {
                visible: vis as i64 * 1_000_000,
                advance: adv as i64 * 1_000_000,
            })
        );
    }

    /// Any identifier-shaped name works for tables and columns.
    #[test]
    fn identifiers_roundtrip(name in "[a-z_][a-z0-9_]{0,20}") {
        // Skip names that collide with reserved words.
        prop_assume!(!["from","where","group","having","order","limit","on",
            "join","inner","left","right","full","cross","and","or","not",
            "as","union","select","when","then","else","end","asc","desc",
            "between","in","like","is","into","values","set","case","null",
            "true","false","interval","timestamp","cast"].contains(&name.as_str()));
        let sql = format!("select {name} from {name}");
        let stmt = parse_statement(&sql).unwrap();
        let streamrel_sql::ast::Statement::Select(q) = stmt else { panic!() };
        match &q.projection[0] {
            streamrel_sql::ast::SelectItem::Expr {
                expr: streamrel_sql::ast::Expr::Column { name: n, .. },
                ..
            } => prop_assert_eq!(n, &name),
            other => prop_assert!(false, "{:?}", other),
        }
    }

    /// Integer and float literals round-trip through the parser.
    #[test]
    fn numeric_literals_roundtrip(i in any::<i64>().prop_filter("nonneg", |v| *v >= 0)) {
        let sql = format!("select {i}");
        let stmt = parse_statement(&sql).unwrap();
        let streamrel_sql::ast::Statement::Select(q) = stmt else { panic!() };
        match &q.projection[0] {
            streamrel_sql::ast::SelectItem::Expr {
                expr: streamrel_sql::ast::Expr::Literal(streamrel_types::Value::Int(v)),
                ..
            } => prop_assert_eq!(*v, i),
            other => prop_assert!(false, "{:?}", other),
        }
    }

    /// String literals with embedded quotes round-trip via '' escaping.
    #[test]
    fn string_literals_roundtrip(s in "[a-zA-Z0-9' ]{0,30}") {
        let escaped = s.replace('\'', "''");
        let sql = format!("select '{escaped}'");
        let stmt = parse_statement(&sql).unwrap();
        let streamrel_sql::ast::Statement::Select(q) = stmt else { panic!() };
        match &q.projection[0] {
            streamrel_sql::ast::SelectItem::Expr {
                expr: streamrel_sql::ast::Expr::Literal(streamrel_types::Value::Text(t)),
                ..
            } => prop_assert_eq!(t.as_ref(), s.as_str()),
            other => prop_assert!(false, "{:?}", other),
        }
    }
}
