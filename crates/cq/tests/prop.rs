//! Property-based tests for window semantics and ordering.

use proptest::prelude::*;
use streamrel_cq::{ReorderBuffer, WindowBuffer};
use streamrel_sql::WindowSpec;
use streamrel_types::{Row, Value};

fn tup(ts: i64) -> Row {
    vec![Value::Timestamp(ts), Value::Int(ts)]
}

proptest! {
    /// RSTREAM coverage: with VISIBLE = k * ADVANCE, every tuple appears
    /// in exactly k consecutive windows once the stream has fully passed
    /// it (the defining invariant of Figure 1's sequence-of-tables).
    #[test]
    fn every_tuple_in_exactly_k_windows(
        k in 1i64..5,
        advance in 1_000i64..100_000,
        mut offsets in prop::collection::vec(0i64..1_000_000, 1..80),
    ) {
        offsets.sort_unstable();
        let visible = k * advance;
        let mut w = WindowBuffer::new(
            WindowSpec::Time { visible, advance },
            Some(0),
            false,
        ).unwrap();
        let mut appearances = std::collections::HashMap::new();
        let mut closes = Vec::new();
        for (i, off) in offsets.iter().enumerate() {
            // Make timestamps unique so counting is unambiguous.
            let ts = *off * 128 + i as i64;
            closes.extend(w.push(tup(ts)).unwrap());
            appearances.insert(ts, 0u32);
        }
        let max_ts = offsets.last().unwrap() * 128 + offsets.len() as i64;
        // Flush far enough that every tuple's k windows have closed.
        closes.extend(w.advance_to(max_ts + visible + advance));
        for cw in &closes {
            for row in &cw.rows {
                let ts = row[0].as_timestamp().unwrap();
                *appearances.get_mut(&ts).unwrap() += 1;
            }
        }
        for (ts, n) in appearances {
            prop_assert_eq!(n, k as u32, "tuple at {} seen in {} windows, want {}", ts, n, k);
        }
        // Window closes are strictly increasing by exactly `advance`.
        for pair in closes.windows(2) {
            prop_assert_eq!(pair[1].close - pair[0].close, advance);
        }
    }

    /// Tumbling windows partition the stream: every tuple in exactly one
    /// window, and window contents are disjoint and time-contiguous.
    #[test]
    fn tumbling_partitions(
        advance in 1_000i64..50_000,
        mut offsets in prop::collection::vec(0i64..500_000, 1..60),
    ) {
        offsets.sort_unstable();
        offsets.dedup();
        let mut w = WindowBuffer::new(WindowSpec::tumbling(advance), Some(0), false).unwrap();
        let mut closes = Vec::new();
        for off in &offsets {
            closes.extend(w.push(tup(*off)).unwrap());
        }
        closes.extend(w.advance_to(offsets.last().unwrap() + 2 * advance));
        let emitted: usize = closes.iter().map(|c| c.rows.len()).sum();
        prop_assert_eq!(emitted, offsets.len());
        for cw in &closes {
            for row in &cw.rows {
                let ts = row[0].as_timestamp().unwrap();
                prop_assert!(ts >= cw.close - advance && ts < cw.close);
            }
        }
    }

    /// Row windows emit every `advance` rows with at most `visible` rows.
    #[test]
    fn row_window_counts(
        visible in 1u64..20,
        advance in 1u64..20,
        n in 1usize..200,
    ) {
        let mut w = WindowBuffer::new(
            WindowSpec::Rows { visible, advance },
            Some(0),
            false,
        ).unwrap();
        let mut emitted = 0usize;
        for i in 0..n {
            let closes = w.push(tup(i as i64)).unwrap();
            for c in &closes {
                prop_assert!(c.rows.len() as u64 <= visible);
                emitted += 1;
            }
        }
        prop_assert_eq!(emitted, n / advance as usize);
    }

    /// ReorderBuffer: released output is time-sorted, and with slack ≥ max
    /// disorder, nothing is dropped.
    #[test]
    fn reorder_buffer_sorts_within_slack(
        base in prop::collection::vec(0i64..100_000, 1..60),
        jitter in prop::collection::vec(-500i64..500, 1..60),
    ) {
        let n = base.len().min(jitter.len());
        let mut ordered: Vec<i64> = base[..n].to_vec();
        ordered.sort_unstable();
        let jittered: Vec<i64> = ordered.iter().zip(&jitter[..n]).map(|(a, j)| a + j).collect();
        let mut buf = ReorderBuffer::new(0, 1_001); // slack > max disorder (2*500)
        let mut out = Vec::new();
        for ts in &jittered {
            out.extend(buf.push(tup(*ts)).unwrap());
        }
        out.extend(buf.flush());
        prop_assert_eq!(out.len(), n, "{} late drops", buf.late_drops());
        let released: Vec<i64> = out.iter().map(|r| r[0].as_timestamp().unwrap()).collect();
        let mut sorted = released.clone();
        sorted.sort_unstable();
        prop_assert_eq!(released, sorted);
    }
}
