//! Window consistency: continuous isolation semantics (§4, ref \[6]).
//!
//! When a CQ joins a stream against tables (dimension enrichment, Example
//! 5's historical comparison), the table side must be read under a stable
//! MVCC snapshot. The paper's rule — "updates to tables are visible only on
//! window boundaries" — is implemented by pinning one snapshot per window
//! at close time. The ablation mode [`ConsistencyMode::QueryStart`] pins a
//! single snapshot for the CQ's whole lifetime instead, which E8 uses to
//! show increasing staleness.

use std::sync::Arc;

use streamrel_storage::{Snapshot, StorageEngine};
use streamrel_types::{Relation, Result};

use streamrel_exec::RelationSource;

/// Which snapshot a CQ's table reads use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConsistencyMode {
    /// Pin a fresh snapshot at every window boundary (the paper's window
    /// consistency; the default).
    #[default]
    WindowBoundary,
    /// Pin once when the CQ starts and never refresh (ablation: tables
    /// appear frozen to the CQ).
    QueryStart,
}

/// A [`RelationSource`] over the storage engine under one pinned snapshot.
pub struct SnapshotSource {
    engine: Arc<StorageEngine>,
    snapshot: Snapshot,
}

impl SnapshotSource {
    /// Pin the engine's current state.
    pub fn pin(engine: Arc<StorageEngine>) -> SnapshotSource {
        let snapshot = engine.snapshot();
        SnapshotSource { engine, snapshot }
    }

    /// Wrap an existing snapshot.
    pub fn with_snapshot(engine: Arc<StorageEngine>, snapshot: Snapshot) -> SnapshotSource {
        SnapshotSource { engine, snapshot }
    }

    /// The pinned snapshot.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }
}

impl RelationSource for SnapshotSource {
    fn scan_table(&self, table: &str) -> Result<Relation> {
        // Virtual relations (`streamrel_metrics`, `streamrel_trace`) are
        // served straight from the engine's registry: every SELECT path —
        // embedded snapshot queries, per-window CQ plans, CREATE TABLE AS
        // — flows through this source, so observability is queryable
        // everywhere ordinary tables are ("everything is a table").
        // Metrics are live counters, deliberately outside MVCC.
        if let Some(rel) = streamrel_obs::virtual_relation(table, self.engine.metrics()) {
            return Ok(rel);
        }
        let meta = self.engine.table(table)?;
        let rows = self
            .engine
            .scan(meta.id, &self.snapshot)?
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        Ok(Relation::new(meta.schema.clone(), rows))
    }

    fn index_lookup(
        &self,
        table: &str,
        column: &str,
        key: &streamrel_types::Value,
    ) -> Result<Option<Vec<streamrel_types::Row>>> {
        let Some(named) = self.engine.index_on(table, column) else {
            return Ok(None);
        };
        // Single-column equality only (multi-column indexes still serve
        // lookups on their leading column when it is the whole key).
        if named.index.key_columns().len() != 1 {
            return Ok(None);
        }
        if key.is_null() {
            // NULL joins nothing; Some([]) also signals "index exists" to
            // the executor's existence probe.
            return Ok(Some(Vec::new()));
        }
        let rows = self
            .engine
            .index_lookup(
                table,
                &named,
                &streamrel_storage::index::IndexKey(vec![key.clone()]),
                &self.snapshot,
            )?
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        Ok(Some(rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamrel_types::{row, Column, DataType, Schema};

    fn engine_with_table() -> (Arc<StorageEngine>, u32) {
        let e = Arc::new(StorageEngine::in_memory());
        let t = e
            .create_table(
                "dim",
                Schema::new(vec![Column::new("k", DataType::Int)]).unwrap(),
            )
            .unwrap();
        (e, t)
    }

    #[test]
    fn pinned_snapshot_is_stable_across_updates() {
        let (e, t) = engine_with_table();
        e.with_txn(|x| e.insert(x, t, row![1i64])).unwrap();
        let src = SnapshotSource::pin(e.clone());
        // Concurrent update after the pin.
        e.with_txn(|x| e.insert(x, t, row![2i64])).unwrap();
        let rel = src.scan_table("dim").unwrap();
        assert_eq!(rel.len(), 1, "pinned source must not see the new row");
        // A fresh pin does see it.
        let src2 = SnapshotSource::pin(e);
        assert_eq!(src2.scan_table("dim").unwrap().len(), 2);
    }

    #[test]
    fn missing_table_errors() {
        let (e, _) = engine_with_table();
        let src = SnapshotSource::pin(e);
        assert!(src.scan_table("nope").is_err());
    }
}
