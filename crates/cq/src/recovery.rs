//! CQ runtime-state recovery from Active Tables (§4).
//!
//! The paper's recovery argument: instead of teaching every operator to
//! checkpoint itself, rebuild runtime state from what the channels already
//! persisted. A channel records, per emitted window, the window's
//! `cq_close`; after a crash the CQ resumes at the archive's high-water
//! mark. If the raw stream is itself archived (a raw channel), the tuples
//! past the watermark replay through the window buffer to rebuild the
//! in-flight partial window.

use std::sync::Arc;

use streamrel_storage::StorageEngine;
use streamrel_types::{Error, Result, Row, Timestamp, Value};

/// High-water mark of an archive table: the maximum value of its `ts_col`
/// column (the archived `cq_close`). `None` when the table is empty.
pub fn archive_watermark(
    engine: &Arc<StorageEngine>,
    table: &str,
    ts_col: &str,
) -> Result<Option<Timestamp>> {
    let meta = engine.table(table)?;
    let idx = meta.schema.index_of(ts_col)?;
    let snap = engine.snapshot();
    let mut max: Option<Timestamp> = None;
    engine.scan_visit(meta.id, &snap, |_, row| {
        if let Some(Value::Timestamp(t)) = row.get(idx) {
            max = Some(max.map_or(*t, |m| m.max(*t)));
        } else if let Some(Value::Int(t)) = row.get(idx) {
            max = Some(max.map_or(*t, |m| m.max(*t)));
        }
        true
    })?;
    Ok(max)
}

/// Rows of a raw-archive table with `ts_col > watermark`, time-ordered —
/// the replay set that rebuilds the in-flight window.
pub fn replay_rows_after(
    engine: &Arc<StorageEngine>,
    table: &str,
    ts_col: &str,
    watermark: Timestamp,
) -> Result<Vec<Row>> {
    let meta = engine.table(table)?;
    let idx = meta.schema.index_of(ts_col)?;
    let snap = engine.snapshot();
    let mut rows: Vec<(Timestamp, Row)> = Vec::new();
    engine.scan_visit(meta.id, &snap, |_, row| {
        let ts = match row.get(idx) {
            Some(Value::Timestamp(t)) | Some(Value::Int(t)) => *t,
            _ => return true,
        };
        if ts >= watermark {
            rows.push((ts, row.clone()));
        }
        true
    })?;
    rows.sort_by_key(|(t, _)| *t);
    Ok(rows.into_iter().map(|(_, r)| r).collect())
}

/// Count of rows a full-log replay would process (the baseline E7 compares
/// against): everything in the raw archive.
pub fn full_replay_count(engine: &Arc<StorageEngine>, table: &str) -> Result<u64> {
    let meta = engine.table(table)?;
    let snap = engine.snapshot();
    let mut n = 0u64;
    engine.scan_visit(meta.id, &snap, |_, _| {
        n += 1;
        true
    })?;
    Ok(n)
}

/// Catalog key used to persist a CQ's emitted watermark independently of
/// any archive table (covers CQs whose channel uses REPLACE mode, where
/// the table holds only the latest window).
pub fn watermark_key(cq_name: &str) -> String {
    format!("cq_watermark.{}", cq_name.to_ascii_lowercase())
}

/// Persist a CQ watermark in the engine catalog (WAL-logged, durable).
pub fn save_watermark(engine: &Arc<StorageEngine>, cq_name: &str, close: Timestamp) -> Result<()> {
    engine.catalog_put(&watermark_key(cq_name), &close.to_string())
}

/// Persist a CQ watermark atomically with transaction `xid`: on replay it
/// applies only if `xid` committed. Channels use this so the watermark and
/// the window's archived rows become durable together — a crash can never
/// leave a watermark pointing past an unarchived window (which would lose
/// it) or archived rows without the watermark (which would duplicate them).
pub fn save_watermark_txn(
    engine: &Arc<StorageEngine>,
    xid: streamrel_storage::TxnId,
    cq_name: &str,
    close: Timestamp,
) -> Result<()> {
    engine.catalog_put_txn(xid, &watermark_key(cq_name), &close.to_string())
}

/// Load a CQ watermark saved by [`save_watermark`].
pub fn load_watermark(engine: &Arc<StorageEngine>, cq_name: &str) -> Result<Option<Timestamp>> {
    match engine.catalog_get(&watermark_key(cq_name)) {
        None => Ok(None),
        Some(s) => s
            .parse::<i64>()
            .map(Some)
            .map_err(|_| Error::storage(format!("corrupt watermark for `{cq_name}`: {s}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamrel_types::{row, Column, DataType, Schema};

    fn engine() -> Arc<StorageEngine> {
        let e = Arc::new(StorageEngine::in_memory());
        e.create_table(
            "urls_archive",
            Schema::new(vec![
                Column::new("url", DataType::Text),
                Column::new("scnt", DataType::Int),
                Column::new("stime", DataType::Timestamp),
            ])
            .unwrap(),
        )
        .unwrap();
        e
    }

    #[test]
    fn watermark_of_empty_archive_is_none() {
        let e = engine();
        assert_eq!(
            archive_watermark(&e, "urls_archive", "stime").unwrap(),
            None
        );
    }

    #[test]
    fn watermark_is_max_close() {
        let e = engine();
        let t = e.table_id("urls_archive").unwrap();
        e.with_txn(|x| {
            e.insert(x, t, row!["/a", 1i64, Value::Timestamp(100)])?;
            e.insert(x, t, row!["/b", 2i64, Value::Timestamp(300)])?;
            e.insert(x, t, row!["/c", 3i64, Value::Timestamp(200)])
        })
        .unwrap();
        assert_eq!(
            archive_watermark(&e, "urls_archive", "stime").unwrap(),
            Some(300)
        );
    }

    #[test]
    fn replay_rows_are_filtered_and_ordered() {
        let e = engine();
        let t = e.table_id("urls_archive").unwrap();
        e.with_txn(|x| {
            e.insert(x, t, row!["/a", 1i64, Value::Timestamp(100)])?;
            e.insert(x, t, row!["/c", 3i64, Value::Timestamp(300)])?;
            e.insert(x, t, row!["/b", 2i64, Value::Timestamp(200)])
        })
        .unwrap();
        let rows = replay_rows_after(&e, "urls_archive", "stime", 150).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], Value::text("/b"));
        assert_eq!(rows[1][0], Value::text("/c"));
        assert_eq!(full_replay_count(&e, "urls_archive").unwrap(), 3);
    }

    #[test]
    fn kv_watermark_roundtrip() {
        let e = engine();
        assert_eq!(load_watermark(&e, "my_cq").unwrap(), None);
        save_watermark(&e, "my_cq", 12345).unwrap();
        assert_eq!(load_watermark(&e, "MY_CQ").unwrap(), Some(12345));
    }
}
